//! MAGE far memory — umbrella crate.
//!
//! A full, simulation-backed Rust reproduction of *"Scalable Far Memory:
//! Balancing Faults and Evictions"* (SOSP 2025). This crate re-exports
//! the whole stack; see the `README.md` for a tour and `DESIGN.md` for
//! the architecture and hardware-substitution rationale.
//!
//! - [`sim`] — deterministic virtual-time simulator (executor, locks,
//!   histograms),
//! - [`fabric`] — RDMA fabric and far-memory node,
//! - [`mmu`] — page tables, TLBs, IPIs, address spaces,
//! - [`palloc`] — buddy/per-CPU/multi-layer frame allocators, remote
//!   allocators,
//! - [`accounting`] — global/partitioned LRU and FIFO page accounting,
//! - [`engine`] — the far-memory engine (fault-in + eviction paths) and
//!   system presets (MAGE-Lib, MAGE-Lnx, Hermit, DiLOS, ideal),
//! - [`workloads`] — the paper's applications as access-pattern
//!   generators plus experiment runners.
//!
//! # Quick start
//!
//! ```
//! use mage_far_memory::prelude::*;
//!
//! // GapBS-like random access, 8 threads, 30% of memory offloaded.
//! let mut cfg = RunConfig::new(
//!     SystemConfig::mage_lib(),
//!     WorkloadKind::RandomGraph,
//!     8,
//!     16_384, // working set, pages
//!     0.7,    // local fraction
//! );
//! cfg.ops_per_thread = 2_000;
//! let report = run_batch(&cfg);
//! assert!(report.major_faults > 0);
//! println!("{}: {:.2} M ops/s", report.system, report.mops());
//! ```

pub use mage as engine;
pub use mage_accounting as accounting;
pub use mage_fabric as fabric;
pub use mage_mmu as mmu;
pub use mage_palloc as palloc;
pub use mage_sim as sim;
pub use mage_workloads as workloads;

/// The most common imports for running experiments.
pub mod prelude {
    pub use mage::{
        Access, AgingClock, ApproxLru, BackendKind, CostModel, DisaggTier, EvictionPolicy,
        EvictionPolicyKind, FarBackend, FarMemory, FaultError, Fifo, IdealModel, MachineParams,
        MetricsRegistry, MetricsSnapshot, MetricsWindow, OsProfile, PrefetchPolicy, RdmaBackend,
        ReplicaState, ReplicatedBackend, ReplicationConfig, ReplicationStats, RetryPolicy, S3Fifo,
        SecondChance, SystemConfig, TransferOp,
    };
    pub use mage_fabric::{FaultPlan, TransferError};
    pub use mage_mmu::{CoreId, Topology};
    pub use mage_sim::trace::{validate_json, TraceEvent, Tracer};
    pub use mage_sim::{SimHandle, Simulation};
    pub use mage_workloads::memcached::{run_memcached, MemcachedConfig, MemcachedReport};
    pub use mage_workloads::runner::{
        run_batch, run_open_loop_faults, run_raw_rdma, OpenLoopReport, RunConfig, RunReport,
    };
    pub use mage_workloads::{Op, Stream, WorkloadKind, Zipf};
}
