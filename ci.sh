#!/bin/sh
# CI gate: build, test, determinism lint, clippy. Fails on the first error.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> chaos suite (fault-injection sweep, DESIGN.md §8)"
cargo test -q --test chaos

echo "==> mage-check smoke (schedule exploration + oracle, DESIGN.md §9)"
cargo test -q --test check_explore

echo "==> simsan suite (race detector end-to-end, DESIGN.md §10)"
cargo test -q --test simsan

echo "==> chaos + seams under the race detector (MAGE_SIMSAN=1)"
MAGE_SIMSAN=1 cargo test -q --test chaos --test seams

echo "==> replication chaos (node-kill sweep + replica fuzz + failover determinism, DESIGN.md §13)"
cargo test -q --test chaos node_kill_sweep_loses_nothing_with_replication
cargo test -q -p mage --test replica_fuzz
MAGE_SIMSAN=1 cargo test -q --test determinism replicated_sweep

echo "==> replication oracle self-check (the planted bug must trip mage-check)"
# Mirrors the simlint fixture pattern: the skipped-backup-repair bug
# (break_rereplication) must be caught by the replica-coverage invariant
# and shrunk to a one-line repro; the test fails if the oracle misses it.
cargo test -q --test check_explore broken_rereplication_is_caught_and_shrunk

echo "==> cargo build --examples"
cargo build --examples

echo "==> quickstart trace export (validates + writes Chrome trace_event JSON)"
rm -f target/quickstart_trace.json
# The example validates the export with mage_sim::trace::validate_json
# before writing; a missing or empty file means export or validation broke.
cargo run -q --release --example quickstart >/dev/null
test -s target/quickstart_trace.json || {
    echo "error: quickstart did not produce target/quickstart_trace.json" >&2
    exit 1
}

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> simlint (determinism rules, DESIGN.md §5)"
cargo run -p simlint

echo "==> simlint self-check (fixtures must fail)"
if cargo run -q -p simlint -- crates/simlint/fixtures/violations.rs >/dev/null 2>&1; then
    echo "error: simlint accepted the seeded violation fixture" >&2
    exit 1
fi
if cargo run -q -p simlint -- crates/simlint/fixtures/stats_missing.rs >/dev/null 2>&1; then
    echo "error: simlint accepted the unregistered-stat fixture" >&2
    exit 1
fi
if cargo run -q -p simlint -- crates/simlint/fixtures/hotpath/executor.rs >/dev/null 2>&1; then
    echo "error: simlint accepted the hot-path ordered-map fixture" >&2
    exit 1
fi
cargo run -q -p simlint -- crates/simlint/fixtures/hotpath_ok >/dev/null 2>&1 || {
    echo "error: simlint rejected the justified hot-path allow fixture" >&2
    exit 1
}

echo "==> bench smoke (hot-loop harness, quick mode; validates BENCH_hotloop.json schema)"
# Writes the quick-mode report to target/ — the committed BENCH_hotloop.json
# at the repo root comes from a full run (see README "Benchmarking").
cargo run -q --release -p mage-bench --bin hotloop -- --quick --out target/bench_hotloop_smoke.json >/dev/null
test -s target/bench_hotloop_smoke.json || {
    echo "error: bench smoke did not produce target/bench_hotloop_smoke.json" >&2
    exit 1
}

echo "==> policy-ablation smoke (eviction-policy zoo, quick mode; validates BENCH_policies.json schema)"
# Quick-mode sweep of the fig17-style policy × workload × local-fraction
# cube. The committed BENCH_policies.json comes from a full run (see
# EXPERIMENTS.md "Eviction-policy ablation").
cargo run -q --release -p mage-bench --bin policies -- --quick --out target/bench_policies_smoke.json >/dev/null
test -s target/bench_policies_smoke.json || {
    echo "error: policy ablation smoke did not produce target/bench_policies_smoke.json" >&2
    exit 1
}

echo "==> scale smoke (terabyte-scale sparse-metadata harness, quick mode; validates BENCH_scale.json schema)"
# Quick mode shrinks the per-point work but keeps the nominal capacities
# at full scale (256 vcores, 2^26-page keyspace, 1M connections,
# 2^40-page space), so any dense O(capacity) metadata regression fails
# here. The committed BENCH_scale.json comes from a full run (see
# EXPERIMENTS.md "Scale sweep"). The sparse regression test drives the
# same property end to end through the engine and the batch runner.
cargo test -q --release --test scale_sparse >/dev/null
cargo run -q --release -p mage-bench --bin scale -- --quick --out target/bench_scale_smoke.json >/dev/null
test -s target/bench_scale_smoke.json || {
    echo "error: scale smoke did not produce target/bench_scale_smoke.json" >&2
    exit 1
}

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
