//! Latency-critical offloading: Memcached p99 vs. far-memory ratio
//! (a miniature Fig. 13a).
//!
//! ```sh
//! cargo run --release --example memcached_tail_latency
//! ```

use mage_far_memory::prelude::*;

fn main() {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    println!("Memcached (zipf 0.99, 99.8% GET), 12 workers, fixed 0.4 M ops/s load");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "far-mem %", "MageLib p99", "DiLOS p99", "Hermit p99"
    );
    for far_pct in [20u32, 40, 60, 80] {
        let mut row = format!("{far_pct:<12}");
        for system in &systems {
            let mut cfg = MemcachedConfig::paper(system.clone(), 60_000);
            cfg.workers = 12;
            cfg.local_ratio = 1.0 - far_pct as f64 / 100.0;
            cfg.load_mops = 0.4;
            cfg.duration_ns = 30_000_000;
            let r = run_memcached(&cfg);
            row.push_str(&format!(" {:>11.1} us", r.p99_ns as f64 / 1_000.0));
        }
        println!("{row}");
    }
    println!("\nExpected shape: for a fixed SLO (e.g. 200 us), MAGE tolerates a");
    println!("substantially higher offload ratio than DiLOS or Hermit because it");
    println!("never blocks a request behind a synchronous eviction.");
}
