//! Swap-backend comparison: the same MAGE engine over RDMA far memory,
//! an NVMe SSD, and compressed RAM (zswap-like).
//!
//! The paper's conclusion (§8) notes that MAGE's OS-level optimizations
//! apply to any fast swap backend. This example runs the same workload
//! over each backend and shows how backend latency/bandwidth moves the
//! throughput and fault tails, while the paging-path behaviour (zero
//! synchronous evictions, pipelined writeback) stays identical.
//!
//! ```sh
//! cargo run --release --example swap_backends
//! ```

use mage_far_memory::fabric::NicConfig;
use mage_far_memory::prelude::*;

fn main() {
    let backends = [
        ("RDMA 200G", NicConfig::bluefield2_200g()),
        ("NVMe SSD", NicConfig::nvme_ssd()),
        ("zswap", NicConfig::zswap()),
    ];
    println!("MAGE-Lib over different swap backends, 16 threads, 40% offloaded\n");
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>12}",
        "backend", "M ops/s", "mean fault", "p99 fault", "sync evicts"
    );
    for (name, nic) in backends {
        let system = SystemConfig::mage_lib().with_backend(nic);
        let mut cfg = RunConfig::new(system, WorkloadKind::RandomGraph, 16, 49_152, 0.6);
        cfg.ops_per_thread = 6_000;
        cfg.warmup_ops = 2_000;
        let r = run_batch(&cfg);
        println!(
            "{:<10} {:>9.2} {:>9.1} us {:>9.1} us {:>12}",
            name,
            r.mops(),
            r.fault_mean_ns / 1e3,
            r.fault_p99_ns as f64 / 1e3,
            r.sync_evictions
        );
    }
    println!("\nExpected shape: throughput ranks RDMA > zswap > NVMe (by access");
    println!("latency); the eviction discipline is backend-independent.");
}
