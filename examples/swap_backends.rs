//! Swap-backend comparison: the same MAGE engine over RDMA far memory,
//! an NVMe SSD, compressed RAM (zswap-like), and a disaggregated memory
//! tier behind a switch hop.
//!
//! The paper's conclusion (§8) notes that MAGE's OS-level optimizations
//! apply to any fast swap backend. This example runs the same workload
//! over each backend and shows how backend latency/bandwidth moves the
//! throughput and fault tails, while the paging-path behaviour (zero
//! synchronous evictions, pipelined writeback) stays identical.
//!
//! Two seams are exercised: [`SystemConfig::with_backend`] swaps only the
//! link model (same direct-cabled RDMA semantics), while
//! [`SystemConfig::with_backend_kind`] swaps the whole
//! [`FarBackend`] implementation — the disaggregated tier also changes
//! slot placement (pooled, allocated per eviction) and forces clean-page
//! writebacks.
//!
//! ```sh
//! cargo run --release --example swap_backends
//! ```

use mage_far_memory::fabric::NicConfig;
use mage_far_memory::prelude::*;

fn run_row(name: &str, system: SystemConfig) {
    let mut cfg = RunConfig::new(system, WorkloadKind::RandomGraph, 16, 49_152, 0.6);
    cfg.ops_per_thread = 6_000;
    cfg.warmup_ops = 2_000;
    let r = run_batch(&cfg);
    println!(
        "{:<14} {:>9.2} {:>9.1} us {:>9.1} us {:>12}",
        name,
        r.mops(),
        r.fault_mean_ns / 1e3,
        r.fault_p99_ns as f64 / 1e3,
        r.sync_evictions
    );
}

fn main() {
    println!("MAGE-Lib over different swap backends, 16 threads, 40% offloaded\n");
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>12}",
        "backend", "M ops/s", "mean fault", "p99 fault", "sync evicts"
    );
    for (name, nic) in [
        ("RDMA 200G", NicConfig::bluefield2_200g()),
        ("NVMe SSD", NicConfig::nvme_ssd()),
        ("zswap", NicConfig::zswap()),
    ] {
        run_row(name, SystemConfig::mage_lib().with_backend(nic));
    }
    // Whole-backend swaps: the disaggregated tier adds switch latency and
    // switches to pooled slot placement (clean pages re-written on every
    // eviction), all behind the FarBackend trait.
    for hop_ns in [500, 2_000] {
        run_row(
            &format!("disagg {:.1}us", 2.0 * hop_ns as f64 / 1e3),
            SystemConfig::mage_lib().with_backend_kind(BackendKind::DisaggTier { hop_ns }),
        );
    }
    println!("\nExpected shape: throughput ranks RDMA > zswap > disagg > NVMe (by");
    println!("access latency); the eviction discipline is backend-independent.");
}
