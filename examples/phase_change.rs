//! Working-set shift: GUPS with a phase change (a miniature Fig. 11).
//!
//! The workload does zipfian updates in 80% of the working set, then
//! abruptly shifts to the remaining 20%. The throughput timeline shows
//! how each system rides out the transition: the fault-in and eviction
//! paths must simultaneously drain the old working set and load the new
//! one.
//!
//! ```sh
//! cargo run --release --example phase_change
//! ```

use mage_far_memory::prelude::*;

fn main() {
    let threads = 8;
    let wss: u64 = 40_000;
    println!("GUPS phase change at t=10ms, {threads} threads, 85% local memory\n");
    for system in [SystemConfig::mage_lib(), SystemConfig::hermit()] {
        let name = system.name;
        let mut cfg = RunConfig::new(system, WorkloadKind::Gups, threads, wss, 0.85);
        cfg.ops_per_thread = 60_000;
        cfg.phase_change_at_ns = Some(10_000_000);
        cfg.sample_interval_ns = Some(2_000_000);
        let report = run_batch(&cfg);
        println!("{name}: timeline (ops per 2 ms bucket)");
        for (t, ops) in &report.timeline {
            let bar_len = (ops / 2_500).min(60) as usize;
            println!(
                "  {:>6.1} ms |{}{}",
                *t as f64 / 1e6,
                "#".repeat(bar_len),
                if *t >= 10_000_000 && *t < 12_000_000 {
                    "   <- phase change"
                } else {
                    ""
                }
            );
        }
        println!(
            "  faults: {}   sync evictions: {}   runtime: {:.1} ms\n",
            report.major_faults,
            report.sync_evictions,
            report.runtime_ns as f64 / 1e6
        );
    }
    println!("Expected shape: both systems dip at the transition; MAGE recovers");
    println!("in a fraction of the time because its pipelined evictors drain the");
    println!("old working set without stalling the faulting threads.");
}
