//! Graph analytics under memory offloading (a miniature Fig. 9).
//!
//! Runs a GapBS-pagerank-like random-access workload at 16 threads and
//! sweeps the far-memory ratio across the four systems, printing the
//! throughput each sustains.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use mage_far_memory::prelude::*;

fn main() {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    let threads = 16;
    let wss: u64 = 65_536; // 256 MiB working set
    let ops = 6_000;

    println!("GapBS-like pagerank, {threads} threads, {wss} pages WSS");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "far-mem %", systems[0].name, systems[1].name, systems[2].name, systems[3].name
    );
    let mut baseline = Vec::new();
    for far_pct in [0u32, 10, 30, 50, 70] {
        let mut row = format!("{far_pct:<10}");
        for (i, system) in systems.iter().enumerate() {
            let mut cfg = RunConfig::new(
                system.clone(),
                WorkloadKind::RandomGraph,
                threads,
                wss,
                1.0 - far_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = ops;
            let report = run_batch(&cfg);
            let mops = report.mops();
            if far_pct == 0 {
                baseline.push(mops);
            }
            let pct = 100.0 * mops / baseline[i];
            row.push_str(&format!(" {mops:>6.2} ({pct:>3.0}%)"));
        }
        println!("{row}");
    }
    println!("\n(cells: M ops/s and % of the system's own all-local throughput)");
    println!("Expected shape: MAGE variants degrade gently; Hermit and DiLOS");
    println!("collapse once fault+eviction traffic exceeds what their paths sustain.");
}
