//! Quickstart: drive the MAGE engine directly.
//!
//! Builds a small far-memory machine, touches a working set larger than
//! local DRAM, prints what the paging stack did (measured through a
//! snapshot-delta [`MetricsWindow`]), and exports a virtual-time trace
//! of the run to `target/quickstart_trace.json` — open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::rc::Rc;

use mage_far_memory::prelude::*;

fn main() {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: 4_096,   // 16 MiB of local DRAM
        remote_pages: 32_768, // 128 MiB far-memory pool
        tlb_entries: 1_536,
        seed: 1,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let tracer = Tracer::new(sim.handle());
    engine.attach_tracer(Rc::clone(&tracer));

    // Map and place a 64 MiB region: it cannot fit locally, so the tail
    // starts in far memory.
    let vma = engine.mmap(16_384);
    engine.populate(&vma);

    // Open the measurement window. Everything the report shows is the
    // delta against this start line — no destructive resets.
    let start = engine.metrics().snapshot();

    // Four threads stream through the region.
    let mut joins = Vec::new();
    for t in 0..4u32 {
        let engine = Rc::clone(&engine);
        let h = sim.handle();
        joins.push(sim.spawn(async move {
            let mut faults = 0u64;
            for i in 0..16_384u64 {
                if i % 4 != t as u64 {
                    continue; // interleaved sharding
                }
                let access = engine.access(CoreId(t), vma.start_vpn + i, false).await;
                if matches!(access, Access::Major { .. }) {
                    faults += 1;
                }
                h.sleep(300).await; // per-page compute
            }
            faults
        }));
    }
    let total_faults: u64 = sim.block_on(async move {
        let mut sum = 0;
        for j in joins {
            sum += j.await;
        }
        sum
    });
    engine.shutdown();

    let w = engine.metrics().window_since(&start);
    let elapsed = sim.handle().now();
    println!("== MAGE quickstart ==");
    println!("virtual runtime        : {elapsed}");
    println!("accesses               : {}", w.accesses);
    println!("tlb hits               : {}", w.tlb_hits);
    println!("major faults           : {total_faults}");
    println!(
        "mean fault latency     : {:.1} us",
        w.fault_latency.mean() / 1_000.0
    );
    println!(
        "p99 fault latency      : {:.1} us",
        w.fault_latency.p99() as f64 / 1_000.0
    );
    println!(
        "sync evictions         : {} (always 0 under MAGE's P1)",
        w.sync_evictions
    );
    println!("pages evicted          : {}", w.evicted_pages);
    println!("dirty writebacks       : {}", w.writebacks);
    println!("clean reclaims         : {}", w.clean_reclaims);
    println!(
        "rdma read bandwidth    : {:.1} Gbps",
        w.read_gbps(elapsed.as_nanos())
    );
    assert!(w.sync_evictions == 0);

    // Export the virtual-time trace (fault phases, eviction stages, NIC
    // transfers, TLB shootdowns) as Chrome trace_event JSON.
    let trace = tracer.to_chrome_json();
    validate_json(&trace).expect("trace export must be valid JSON");
    let out = "target/quickstart_trace.json";
    std::fs::write(out, &trace).expect("write trace JSON");
    println!(
        "trace                  : {out} ({} events, load in chrome://tracing)",
        tracer.len()
    );
}
