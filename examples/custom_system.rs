//! Build-your-own far-memory system: toggling MAGE's design principles.
//!
//! Starts from the DiLOS-like baseline and applies the paper's three
//! techniques one at a time (the Fig. 17 ablation), printing how each
//! changes throughput on a random-access workload.
//!
//! ```sh
//! cargo run --release --example custom_system
//! ```

use mage_far_memory::accounting::AccountingKind;
use mage_far_memory::palloc::LocalAllocatorKind;
use mage_far_memory::prelude::*;

fn main() {
    let threads = 16;
    let wss: u64 = 65_536;

    // Baseline: DiLOS-style — global LRU, global buddy lock, sequential
    // eviction with synchronous fallback.
    let baseline = SystemConfig::dilos();

    // + P1/P2: always-asynchronous, cross-batch pipelined eviction.
    let mut pipelined = baseline.clone();
    pipelined.name = "+Pipelined";
    pipelined.sync_eviction = false;
    pipelined.pipelined_eviction = true;
    pipelined.eviction_batch = 256;

    // + P3a: partitioned LRU lists.
    let mut partitioned = pipelined.clone();
    partitioned.name = "+LRU-part";
    partitioned.accounting = AccountingKind::PartitionedLru { partitions: 8 };

    // + P3b: multi-layer allocator => this is MAGE-Lib.
    let mut multilayer = partitioned.clone();
    multilayer.name = "+MultiLayer";
    multilayer.local_alloc = LocalAllocatorKind::MultiLayer;

    // Victim-selection policy swap on the finished system: the aging
    // CLOCK grants hot pages extra grace rounds (an EvictionPolicy
    // implementation selected purely through configuration).
    let mut aging = multilayer
        .clone()
        .with_eviction_policy(EvictionPolicyKind::AgingClock { hot_rounds: 3 });
    aging.name = "+AgingClock";

    // Policy-zoo swap: S3-FIFO pairs the scan probe with ghost-feedback
    // accounting (small/main queues + bounded ghost list, DESIGN.md §12)
    // so pages re-faulted shortly after eviction skip probation.
    let mut s3fifo = multilayer
        .clone()
        .with_eviction_policy(EvictionPolicyKind::S3Fifo);
    s3fifo.name = "+S3-FIFO";

    println!("Technique ablation, random access, {threads} threads, 30% offloaded\n");
    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>10}",
        "system", "M ops/s", "p99 fault", "sync evicts", "re-faults"
    );
    for system in [baseline, pipelined, partitioned, multilayer, aging, s3fifo] {
        let name = system.name;
        let mut cfg = RunConfig::new(system, WorkloadKind::RandomGraph, threads, wss, 0.7);
        cfg.ops_per_thread = 6_000;
        let r = run_batch(&cfg);
        println!(
            "{:<14} {:>10.2} {:>9.1} us {:>14} {:>10}",
            name,
            r.mops(),
            r.fault_p99_ns as f64 / 1_000.0,
            r.sync_evictions,
            r.re_faults
        );
    }
    println!("\nEach row adds one technique; the paper's Fig. 17 reports the same");
    println!("progression (pipelining buys the most, the two contention-avoidance");
    println!("techniques compound on top). Re-faults count evictions the policy");
    println!("got wrong (a second major fault paid for the same page); the full");
    println!("policy x workload x local-fraction cube where S3-FIFO earns its");
    println!("keep is BENCH_policies.json (cargo run -p mage-bench --bin policies).");
}
