//! Co-location: two applications sharing one local-memory budget.
//!
//! The paper's Fig. 1 framing: operators choose a tolerable throughput
//! drop and trade it for memory utilization — far memory lets more
//! applications share the same local DRAM. This example runs a
//! latency-tolerant batch job and a cache-friendly service *in the same
//! engine*, shrinking local memory and showing how MAGE absorbs the
//! combined fault+eviction pressure.
//!
//! ```sh
//! cargo run --release --example colocation
//! ```

use std::rc::Rc;

use mage_far_memory::mmu::Topology;
use mage_far_memory::prelude::*;
use mage_far_memory::workloads::Stream;

fn main() {
    println!("Two co-located apps (8 threads each) on one local-memory budget\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14}",
        "local budget", "batch Mops", "svc Mops", "faults", "sync evicts"
    );
    for local_pages in [60_000u64, 40_000, 24_000, 12_000] {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(20),
            app_threads: 16,
            local_pages,
            remote_pages: 80_000,
            tlb_entries: 1_536,
            seed: 9,
        };
        let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
        // App A: graph batch job over 40k pages; App B: zipf service
        // over 24k pages. Combined WSS: 64k pages (256 MiB).
        let vma_a = engine.mmap(40_000);
        let vma_b = engine.mmap(24_000);
        engine.populate(&vma_a);
        engine.populate(&vma_b);

        let mut joins = Vec::new();
        for t in 0..16u32 {
            let engine = Rc::clone(&engine);
            let h = sim.handle();
            let (vma, kind, wss) = if t < 8 {
                (vma_a.clone(), WorkloadKind::RandomGraph, 40_000)
            } else {
                (vma_b.clone(), WorkloadKind::Gups, 24_000)
            };
            joins.push(sim.spawn(async move {
                let mut stream = Stream::new(kind, t as usize % 8, 8, wss, 5);
                let mut ops = 0u64;
                for _ in 0..8_000 {
                    let op = stream.next_op();
                    engine
                        .access(CoreId(t), vma.start_vpn + op.page, op.write)
                        .await;
                    h.sleep(engine.inflate_compute(op.compute_ns)).await;
                    ops += 1;
                }
                (ops, h.now().as_nanos())
            }));
        }
        let results = sim.block_on(async move {
            let mut v = Vec::new();
            for j in joins {
                v.push(j.await);
            }
            v
        });
        engine.shutdown();

        let end = results.iter().map(|&(_, e)| e).max().unwrap();
        let batch_ops: u64 = results[..8].iter().map(|&(o, _)| o).sum();
        let svc_ops: u64 = results[8..].iter().map(|&(o, _)| o).sum();
        let s = engine.stats();
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12} {:>14}",
            format!("{} MiB", local_pages * 4 / 1024),
            batch_ops as f64 * 1e3 / end as f64,
            svc_ops as f64 * 1e3 / end as f64,
            s.major_faults.get(),
            s.sync_evictions.get()
        );
    }
    println!("\nExpected shape: throughput degrades gracefully as the shared budget");
    println!("shrinks from fitting both working sets (234 MiB) down to 19% of them,");
    println!("with zero synchronous evictions throughout.");
}
