//! Figure 15: throughput–latency curves for each system's fault path vs.
//! raw RDMA reads (with 4 background writers).
//!
//! Paper shape: MAGE-Lib keeps a flat, low tail across loads — its
//! fault-path components provide natural back-pressure on the RDMA
//! stack, avoiding the congestion tail spikes the raw-RDMA open loop
//! exhibits near saturation; Hermit's and DiLOS's tails blow up early
//! due to synchronous eviction.

use mage::SystemConfig;
use mage_bench::{f1, f2, Experiment};
use mage_workloads::runner::{run_open_loop_faults, run_raw_rdma};

const DURATION_NS: u64 = 15_000_000;
const WSS: u64 = 200_000;

fn main() {
    let mut exp = Experiment::new(
        "fig15",
        "Open-loop fault path: offered vs achieved (M ops/s) and p99 (us)",
        &[
            "offered_mops",
            "magelib_ach",
            "magelib_p99",
            "dilos_ach",
            "dilos_p99",
            "hermit_ach",
            "hermit_p99",
            "rawrdma_ach",
            "rawrdma_p99",
        ],
    );
    for rate in [1.0f64, 2.0, 3.0, 4.0, 5.0, 5.5, 6.0] {
        let mut cells = vec![format!("{rate:.1}")];
        for system in [
            SystemConfig::mage_lib(),
            SystemConfig::dilos(),
            SystemConfig::hermit(),
        ] {
            let mut s = system;
            s.prefetch = mage::PrefetchPolicy::None;
            let r = run_open_loop_faults(s, 48, WSS, 0.3, rate, DURATION_NS, 7);
            cells.push(f2(r.achieved_mops));
            cells.push(f1(r.p99_ns as f64 / 1e3));
        }
        let raw = run_raw_rdma(rate, DURATION_NS, 7);
        cells.push(f2(raw.achieved_mops));
        cells.push(f1(raw.p99_ns as f64 / 1e3));
        exp.row(cells);
    }
    exp.finish();
}
