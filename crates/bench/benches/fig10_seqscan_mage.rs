//! Figure 10: sequential scan under MAGE-Lib with and without
//! prefetching, vs. DiLOS, Hermit and the ideal baseline (48 threads).
//!
//! Paper shape: prefetching is only profitable on MAGE — its eviction
//! path sustains the extra fault-in pressure, lifting MAGE-Lib to ~94%
//! of all-local throughput at 10% offloading, while prefetching barely
//! helps DiLOS and actively hurts Hermit.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let systems = [
        ("ideal", SystemConfig::ideal()),
        ("magelib", {
            let mut s = SystemConfig::mage_lib();
            s.prefetch = mage::PrefetchPolicy::None;
            s
        }),
        ("magelib_prefetch", SystemConfig::mage_lib().with_prefetch()),
        ("dilos_prefetch", SystemConfig::dilos()),
        ("hermit_prefetch", SystemConfig::hermit()),
    ];
    let mut exp = Experiment::new(
        "fig10",
        "Sequential scan (48T): MAGE-Lib +/- prefetch vs others, % of all-local",
        &[
            "far_mem_pct",
            "ideal",
            "magelib",
            "magelib_prefetch",
            "dilos_prefetch",
            "hermit_prefetch",
        ],
    );
    let mut base = vec![0.0f64; systems.len()];
    let mut notes = Vec::new();
    for far_pct in [0u32, 10, 20, 30, 50] {
        let mut cells = vec![far_pct.to_string()];
        for (i, (name, system)) in systems.iter().enumerate() {
            let mut cfg = RunConfig::new(
                system.clone(),
                WorkloadKind::SeqScan,
                scale::THREADS,
                scale::APP_WSS,
                1.0 - far_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = scale::APP_OPS;
            cfg.warmup_ops = 1_024;
            let r = run_batch(&cfg);
            if far_pct == 0 {
                base[i] = r.mops();
            }
            if far_pct == 10 {
                notes.push((*name, r.major_faults, r.prefetches, r.fault_mean_ns));
            }
            cells.push(f2(100.0 * r.mops() / base[i]));
        }
        exp.row(cells);
    }
    exp.finish();
    println!("at 10% offloading:");
    for (name, faults, prefetches, mean) in notes {
        println!(
            "  {name:<18} faults={faults:<8} prefetched={prefetches:<8} mean_fault={:.1}us",
            mean / 1e3
        );
    }
}
