//! Extension experiment (beyond the paper's figures): replacement-policy
//! accuracy vs. contention across the full policy zoo.
//!
//! §4.2.2 argues that newer algorithms like S3-FIFO "require fine-grained
//! access frequency tracking that is incompatible with existing OS page
//! table mechanisms". This bench makes that argument measurable: with
//! only the one-bit accessed signal available to an OS, S3-FIFO's
//! accuracy advantage largely evaporates, while the partitioned designs
//! keep their contention advantage.
//!
//! Columns: application throughput, major faults (lower = more accurate
//! replacement), and total lock waiting across the accounting structure
//! (lower = less contention).

use mage::SystemConfig;
use mage_accounting::AccountingKind;
use mage_bench::{f1, f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let policies: [(&str, AccountingKind); 5] = [
        ("GlobalLru", AccountingKind::GlobalLru),
        ("PartLru", AccountingKind::PartitionedLru { partitions: 8 }),
        ("Fifo", AccountingKind::FifoQueues { partitions: 8 }),
        ("Clock", AccountingKind::Clock { partitions: 8 }),
        ("S3Fifo", AccountingKind::S3Fifo { partitions: 8 }),
    ];
    let mut exp = Experiment::new(
        "ext_replacement",
        "Replacement policies on MAGE-Lib: GapBS 48T, 40% offloaded",
        &["policy", "mops", "major_faults", "evict_cancels"],
    );
    for (name, policy) in policies {
        let mut system = SystemConfig::mage_lib();
        system.accounting = policy;
        let mut cfg = RunConfig::new(
            system,
            WorkloadKind::RandomGraph,
            scale::THREADS,
            scale::APP_WSS,
            0.6,
        );
        cfg.ops_per_thread = scale::APP_OPS;
        cfg.warmup_ops = scale::APP_OPS / 2;
        let r = run_batch(&cfg);
        exp.row(vec![
            name.to_string(),
            f2(r.mops()),
            r.major_faults.to_string(),
            r.evict_cancels.to_string(),
        ]);
        let _ = f1(0.0);
    }
    exp.finish();
    println!("Expected shape: the one-bit accessed signal compresses the accuracy");
    println!("differences between Clock/S3-FIFO/partitioned-LRU (the paper's");
    println!("incompatibility argument); GlobalLru pays for its accuracy with");
    println!("lock contention at 48 threads.");
}
