//! Figure 7: average TLB-shootdown and per-IPI delivery latency as the
//! application thread count grows (sequential-read microbenchmark).
//!
//! Paper shape: both curves rise with thread count, with an inflection
//! once the application spans the second socket (28 threads) and an "IPI
//! storm" regime at high counts where synchronous evictors queue IPIs at
//! every target (Hermit: per-IPI latency inflates 33× from 1→48 threads).

use mage::SystemConfig;
use mage_bench::{f1, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let mut exp = Experiment::new(
        "fig07",
        "TLB shootdown and IPI delivery latency (us) vs application threads",
        &[
            "threads",
            "hermit_shootdown",
            "hermit_ipi",
            "dilos_shootdown",
            "dilos_ipi",
        ],
    );
    for threads in [1usize, 2, 4, 8, 16, 24, 28, 32, 40, 48] {
        let mut cells = vec![threads.to_string()];
        for system in [SystemConfig::hermit(), SystemConfig::dilos()] {
            let mut s = system;
            s.prefetch = mage::PrefetchPolicy::None;
            let mut cfg = RunConfig::new(s, WorkloadKind::SeqFault, threads, scale::STORM_WSS, 0.5);
            cfg.all_remote = true;
            cfg.ops_per_thread = scale::STORM_WSS / threads as u64;
            let r = run_batch(&cfg);
            cells.push(f1(r.shootdown_mean_ns / 1e3));
            cells.push(f1(r.ipi_mean_ns / 1e3));
        }
        exp.row(cells);
    }
    exp.finish();
}
