//! Figure 3: GapBS and XSBench throughput under Hermit vs. the ideal
//! system, 48 threads (plus the paper's 4-thread side note).
//!
//! Paper shape: at 10% offloading Hermit already degrades GapBS by ~73%
//! and XSBench by ~69%, while the ideal curves degrade gently; at 4
//! threads the gap shrinks (35% / 19%).

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn series(kind: WorkloadKind, threads: usize) -> Vec<(u32, f64, f64)> {
    let mut out = Vec::new();
    let mut base = [0.0f64; 2];
    for far_pct in [0u32, 10, 20, 30, 50, 70, 90] {
        let mut point = (far_pct, 0.0, 0.0);
        for (i, system) in [SystemConfig::ideal(), SystemConfig::hermit()]
            .iter()
            .enumerate()
        {
            let mut cfg = RunConfig::new(
                system.clone(),
                kind,
                threads,
                scale::APP_WSS,
                1.0 - far_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = scale::APP_OPS;
            cfg.warmup_ops = scale::APP_OPS / 2;
            let r = run_batch(&cfg);
            if far_pct == 0 {
                base[i] = r.mops();
            }
            let pct = 100.0 * r.mops() / base[i];
            if i == 0 {
                point.1 = pct;
            } else {
                point.2 = pct;
            }
        }
        out.push(point);
    }
    out
}

fn main() {
    let mut exp = Experiment::new(
        "fig03",
        "GapBS & XSBench: ideal vs Hermit (48T), relative throughput %",
        &[
            "far_mem_pct",
            "gapbs_ideal",
            "gapbs_hermit",
            "xsbench_ideal",
            "xsbench_hermit",
        ],
    );
    let gapbs = series(WorkloadKind::RandomGraph, scale::THREADS);
    let xs = series(WorkloadKind::XsBench, scale::THREADS);
    for (g, x) in gapbs.iter().zip(xs.iter()) {
        exp.row(vec![g.0.to_string(), f2(g.1), f2(g.2), f2(x.1), f2(x.2)]);
    }
    exp.finish();

    // The paper's low-thread-count observation (§3.1): at 4 threads the
    // collapse at 10% offloading is much milder.
    let mut exp4 = Experiment::new(
        "fig03_4threads",
        "Hermit degradation at 10% offloading: 48 vs 4 threads",
        &["workload", "threads", "hermit_drop_pct"],
    );
    for (name, kind) in [
        ("gapbs", WorkloadKind::RandomGraph),
        ("xsbench", WorkloadKind::XsBench),
    ] {
        for threads in [48usize, 4] {
            let s = series(kind, threads);
            let at10 = s.iter().find(|p| p.0 == 10).expect("10% point");
            exp4.row(vec![
                name.to_string(),
                threads.to_string(),
                f2(100.0 - at10.2),
            ]);
        }
    }
    exp4.finish();
}
