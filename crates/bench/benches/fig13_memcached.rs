//! Figure 13: Memcached tail latency.
//!
//! (a) p99 vs. local-memory ratio at a fixed load (half of the all-local
//! capacity). (b) p99 vs. offered load at 50% local memory. 24 workers
//! (single socket).
//!
//! Paper shape: for a 200 µs SLO MAGE-Lib offloads ~21% more memory than
//! DiLOS and ~36% more than Hermit; under rising load MAGE sustains
//! 0.28–0.64 M ops/s more than the baselines before the SLO breaks,
//! because it never blocks a request behind a synchronous eviction.

use mage::SystemConfig;
use mage_bench::{f1, scale, Experiment};
use mage_workloads::memcached::{run_memcached, MemcachedConfig};

const DATA_PAGES: u64 = 60_000;

fn run(system: SystemConfig, local_ratio: f64, load_mops: f64) -> (u64, f64) {
    let mut cfg = MemcachedConfig::paper(system, DATA_PAGES);
    cfg.workers = scale::LAT_THREADS;
    cfg.local_ratio = local_ratio;
    cfg.load_mops = load_mops;
    cfg.duration_ns = 20_000_000;
    let r = run_memcached(&cfg);
    (r.p99_ns, r.achieved_mops)
}

fn main() {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];

    // (a) fixed load, varying local memory.
    let mut exp_a = Experiment::new(
        "fig13a",
        "Memcached p99 (us) vs local-memory % at fixed 0.8 M ops/s load (24 workers)",
        &["local_pct", "MageLib", "MageLnx", "DiLOS", "Hermit"],
    );
    for local_pct in [100u32, 80, 60, 50, 40, 30, 20] {
        let mut cells = vec![local_pct.to_string()];
        for system in &systems {
            let (p99, _) = run(system.clone(), local_pct as f64 / 100.0, 0.8);
            cells.push(f1(p99 as f64 / 1e3));
        }
        exp_a.row(cells);
    }
    exp_a.finish();

    // (b) fixed 50% local memory, varying load.
    let mut exp_b = Experiment::new(
        "fig13b",
        "Memcached p99 (us) vs offered load (M ops/s) at 50% local memory",
        &["load_mops", "MageLib", "MageLnx", "DiLOS", "Hermit"],
    );
    for load in [0.2f64, 0.4, 0.8, 1.2, 1.6, 2.0, 2.4] {
        let mut cells = vec![format!("{load:.1}")];
        for system in &systems {
            let (p99, achieved) = run(system.clone(), 0.5, load);
            let cell = if achieved < load * 0.9 {
                format!("{} (sat)", f1(p99 as f64 / 1e3))
            } else {
                f1(p99 as f64 / 1e3)
            };
            cells.push(cell);
        }
        exp_b.row(cells);
    }
    exp_b.finish();
    println!("(sat) = system saturated below the offered load");
}
