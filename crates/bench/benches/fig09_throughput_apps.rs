//! Figure 9: GapBS and XSBench throughput vs. local-memory ratio at 48
//! threads for all four systems.
//!
//! Paper shape: at 10% offloading MAGE loses 15–19% on GapBS while
//! Hermit/DiLOS lose 51–74%; for a 30%-drop SLO MAGE-Lib offloads up to
//! ~61% of GapBS memory; XSBench (more compute per access) gives all
//! systems more slack and MAGE a 3.6–3.8× offloadable-capacity gain.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn sweep(kind: WorkloadKind, id: &'static str, title: &'static str) {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    let mut exp = Experiment::new(
        id,
        title,
        &["local_pct", "MageLib", "MageLnx", "DiLOS", "Hermit"],
    );
    let mut base = [0.0f64; 4];
    for local_pct in [100u32, 90, 80, 70, 60, 50, 40, 30, 20, 10] {
        let mut cells = vec![local_pct.to_string()];
        for (i, system) in systems.iter().enumerate() {
            let mut cfg = RunConfig::new(
                system.clone(),
                kind,
                scale::THREADS,
                scale::APP_WSS,
                local_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = scale::APP_OPS;
            cfg.warmup_ops = scale::APP_OPS / 2;
            let r = run_batch(&cfg);
            if local_pct == 100 {
                base[i] = r.mops();
            }
            cells.push(f2(100.0 * r.mops() / base[i]));
        }
        exp.row(cells);
    }
    exp.finish();
}

fn main() {
    sweep(
        WorkloadKind::RandomGraph,
        "fig09_gapbs",
        "GapBS pagerank throughput vs local memory (48T), % of all-local",
    );
    sweep(
        WorkloadKind::XsBench,
        "fig09_xsbench",
        "XSBench throughput vs local memory (48T), % of all-local",
    );
}
