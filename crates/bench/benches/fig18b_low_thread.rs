//! Figure 18b: regression test at low thread count — GapBS with 4
//! threads across offload ratios.
//!
//! Paper shape: at 4 threads the fault-in demand (≈0.8 M ops/s) is far
//! below every system's capacity, so MAGE and DiLOS perform similarly
//! and slightly better than Hermit (whose fault handler carries more
//! Linux machinery), while at 100% local Hermit's bare-metal execution
//! wins — MAGE's throughput orientation causes no low-load regression.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    let mut exp = Experiment::new(
        "fig18b",
        "GapBS throughput (M ops/s) at 4 threads vs local memory",
        &["local_pct", "MageLib", "MageLnx", "DiLOS", "Hermit"],
    );
    for local_pct in [100u32, 90, 70, 50, 30, 10] {
        let mut cells = vec![local_pct.to_string()];
        for system in &systems {
            let mut cfg = RunConfig::new(
                system.clone(),
                WorkloadKind::RandomGraph,
                4,
                scale::APP_WSS,
                local_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = 12_000;
            cfg.warmup_ops = 3_000;
            let r = run_batch(&cfg);
            cells.push(f2(r.mops()));
        }
        exp.row(cells);
    }
    exp.finish();
}
