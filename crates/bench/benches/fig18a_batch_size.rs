//! Figure 18a: pipelined vs. non-pipelined eviction across batch sizes
//! on GapBS.
//!
//! Paper shape: the pipelined design peaks at batch sizes 128–256 (the
//! RDMA wait fully hides the shootdown latency; beyond 256 there is no
//! further gain); the non-pipelined design is best at 64 and cannot
//! profit from larger batches because its evictors spend ~40% of their
//! time blocked in TLB flushes. Even at equal batch size (64) the
//! pipelined design wins.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn run(pipelined: bool, batch: usize) -> f64 {
    let mut system = SystemConfig::mage_lib().with_eviction_batch(batch);
    if !pipelined {
        system.pipelined_eviction = false;
        system.name = "MageSeq";
    }
    let mut cfg = RunConfig::new(
        system,
        WorkloadKind::RandomGraph,
        scale::THREADS,
        scale::APP_WSS,
        0.5,
    );
    cfg.ops_per_thread = scale::APP_OPS;
    cfg.warmup_ops = scale::APP_OPS / 2;
    run_batch(&cfg).mops()
}

fn main() {
    let mut exp = Experiment::new(
        "fig18a",
        "GapBS throughput (M ops/s) vs eviction batch size, 50% local, 48T",
        &["batch", "pipelined", "non_pipelined"],
    );
    for batch in [16usize, 32, 64, 128, 256, 512] {
        exp.row(vec![
            batch.to_string(),
            f2(run(true, batch)),
            f2(run(false, batch)),
        ]);
    }
    exp.finish();
}
