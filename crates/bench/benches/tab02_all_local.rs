//! Table 2: throughput of the batch applications with 100% local memory
//! (no offloading) — the cost of virtualization.
//!
//! Paper shape: Hermit (bare metal) is the fastest baseline; the
//! virtualized systems (MAGE-Lib, MAGE-Lnx, DiLOS) trail it by single-
//! digit percentages (up to ~20% for MAGE-Lnx on the syscall-heavy
//! Metis) due to EPT translations and VMexits.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let mut exp = Experiment::new(
        "tab02",
        "All-local throughput (M ops/s) and % vs the best system",
        &["workload", "MageLib", "MageLnx", "DiLOS", "Hermit"],
    );
    let workloads = [
        ("gapbs", WorkloadKind::RandomGraph),
        ("xsbench", WorkloadKind::XsBench),
        ("seqscan_prefetch", WorkloadKind::SeqScan),
        ("gups", WorkloadKind::Gups),
        ("metis", WorkloadKind::Metis),
    ];
    for (name, kind) in workloads {
        let systems = [
            SystemConfig::mage_lib(),
            SystemConfig::mage_lnx(),
            SystemConfig::dilos(),
            SystemConfig::hermit(),
        ];
        let mut mops = Vec::new();
        for system in systems {
            let mut cfg = RunConfig::new(system, kind, scale::THREADS, scale::APP_WSS, 1.0);
            cfg.ops_per_thread = scale::APP_OPS;
            cfg.warmup_ops = scale::APP_OPS / 4;
            mops.push(run_batch(&cfg).mops());
        }
        let best = mops.iter().cloned().fold(0.0, f64::max);
        let mut cells = vec![name.to_string()];
        for m in &mops {
            cells.push(format!("{} ({:+.0}%)", f2(*m), 100.0 * (m - best) / best));
        }
        exp.row(cells);
    }
    exp.finish();
    println!(
        "(percentages relative to the best system per row; paper reports Hermit best everywhere)"
    );
}
