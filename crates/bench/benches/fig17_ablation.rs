//! Figure 17: technique breakdown — Baseline (DiLOS-like) → +PIPELINED
//! (P1/P2) → +LRU partitioning (P3a) → +multi-layer allocator (P3b =
//! MAGE-Lib), on GapBS and XSBench across offload ratios.
//!
//! Paper shape: pipelined decoupled eviction delivers the largest single
//! gain (1.58×/1.74× at 20% offloading); partitioned LRU removes ~81% of
//! scan cycles; the multi-layer allocator cuts shared-allocator time by
//! ~93%, each buying additional offloadable memory under a fixed SLO.

use mage::SystemConfig;
use mage_accounting::AccountingKind;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn steps() -> Vec<SystemConfig> {
    let baseline = SystemConfig::dilos();

    let mut pipelined = baseline.clone();
    pipelined.name = "+Pipelined";
    pipelined.sync_eviction = false;
    pipelined.pipelined_eviction = true;
    pipelined.eviction_batch = 256;

    let mut partitioned = pipelined.clone();
    partitioned.name = "+LRUpart";
    partitioned.accounting = AccountingKind::PartitionedLru { partitions: 8 };

    let mut multilayer = partitioned.clone();
    multilayer.name = "+MultiLayer";
    multilayer.local_alloc = SystemConfig::mage_lib().local_alloc;

    vec![baseline, pipelined, partitioned, multilayer]
}

fn sweep(kind: WorkloadKind, id: &'static str, title: &'static str) {
    let mut exp = Experiment::new(
        id,
        title,
        &[
            "local_pct",
            "Baseline",
            "+Pipelined",
            "+LRUpart",
            "+MultiLayer",
        ],
    );
    let mut base = [0.0f64; 4];
    for local_pct in [100u32, 90, 80, 70, 60, 50] {
        let mut cells = vec![local_pct.to_string()];
        for (i, system) in steps().into_iter().enumerate() {
            let mut cfg = RunConfig::new(
                system,
                kind,
                scale::THREADS,
                scale::APP_WSS,
                local_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = scale::APP_OPS;
            cfg.warmup_ops = scale::APP_OPS / 2;
            let r = run_batch(&cfg);
            if local_pct == 100 {
                base[i] = r.mops();
            }
            cells.push(f2(100.0 * r.mops() / base[i]));
        }
        exp.row(cells);
    }
    exp.finish();
}

fn main() {
    sweep(
        WorkloadKind::RandomGraph,
        "fig17_gapbs",
        "Ablation on GapBS (48T), % of each step's all-local throughput",
    );
    sweep(
        WorkloadKind::XsBench,
        "fig17_xsbench",
        "Ablation on XSBench (48T), % of each step's all-local throughput",
    );
}
