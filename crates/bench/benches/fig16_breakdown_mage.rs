//! Figure 16: per-fault latency breakdown of DiLOS vs. the MAGE variants
//! at 24 and 48 threads.
//!
//! Paper shape: MAGE-Lib eliminates TLB time from the fault path
//! entirely, cuts page accounting from ~2.1 µs to ~0.2 µs (partitioned
//! lists) and memory circulation from ~2.4 µs to ~0.5 µs (multi-layer
//! allocator), landing at a sub-10 µs average fault.

use mage::SystemConfig;
use mage_bench::{f1, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let mut exp = Experiment::new(
        "fig16",
        "Per-fault latency breakdown (us): DiLOS vs MAGE variants",
        &[
            "system",
            "threads",
            "rdma",
            "tlb_flush",
            "accounting",
            "circulation",
            "others",
            "total",
        ],
    );
    for system in [
        SystemConfig::dilos(),
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
    ] {
        for threads in [24usize, 48] {
            let mut s = system.clone();
            s.prefetch = mage::PrefetchPolicy::None;
            let name = s.name;
            let mut cfg = RunConfig::new(s, WorkloadKind::SeqFault, threads, scale::STORM_WSS, 0.5);
            cfg.all_remote = true;
            cfg.ops_per_thread = scale::STORM_WSS / threads as u64;
            let r = run_batch(&cfg);
            let b = r.breakdown;
            exp.row(vec![
                name.to_string(),
                threads.to_string(),
                f1(b.rdma / 1e3),
                f1(b.tlb / 1e3),
                f1(b.accounting / 1e3),
                f1(b.circulation / 1e3),
                f1(b.other / 1e3),
                f1(b.total() / 1e3),
            ]);
        }
    }
    exp.finish();
}
