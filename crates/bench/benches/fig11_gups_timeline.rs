//! Figure 11: GUPS throughput timeline with a working-set phase change,
//! 85% local memory, 48 threads.
//!
//! Paper shape: at the phase change, DiLOS and Hermit nearly stall for
//! seconds while the old working set drains; MAGE dips briefly and
//! recovers quickly because the pipelined evictors drain the old region
//! without stalling the faulting threads. (Time is scaled: the paper's
//! 10 s phase change happens at 5 ms here.)

use mage::SystemConfig;
use mage_bench::Experiment;
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

const PHASE_AT_NS: u64 = 5_000_000;
const BUCKET_NS: u64 = 500_000;

fn main() {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    let mut exp = Experiment::new(
        "fig11",
        "GUPS ops per 0.5 ms bucket; phase change at 5 ms (85% local, 48T)",
        &["bucket_0.5ms", "MageLib", "MageLnx", "DiLOS", "Hermit"],
    );
    let mut timelines = Vec::new();
    let mut stall_note = Vec::new();
    for system in &systems {
        let name = system.name;
        let mut cfg = RunConfig::new(system.clone(), WorkloadKind::Gups, 48, 49_152, 0.85);
        cfg.ops_per_thread = 60_000;
        cfg.phase_change_at_ns = Some(PHASE_AT_NS);
        cfg.sample_interval_ns = Some(BUCKET_NS);
        let r = run_batch(&cfg);
        // Recovery time: first post-change bucket that reaches half the
        // pre-change average rate.
        let pre: Vec<u64> = r
            .timeline
            .iter()
            .filter(|(t, _)| *t <= PHASE_AT_NS)
            .map(|&(_, o)| o)
            .collect();
        let pre_avg = pre.iter().sum::<u64>() / pre.len().max(1) as u64;
        let recovery = r
            .timeline
            .iter()
            .find(|(t, o)| *t > PHASE_AT_NS + BUCKET_NS && *o * 2 >= pre_avg)
            .map(|&(t, _)| (t - PHASE_AT_NS) as f64 / 1e6);
        stall_note.push((name, pre_avg, recovery));
        timelines.push(r.timeline);
    }
    let buckets = timelines.iter().map(|t| t.len()).max().unwrap_or(0);
    for b in 0..buckets {
        let mut cells = vec![format!("{}", b + 1)];
        for tl in &timelines {
            cells.push(
                tl.get(b)
                    .map_or_else(|| "-".into(), |&(_, o)| o.to_string()),
            );
        }
        exp.row(cells);
    }
    exp.finish();
    println!("recovery to half the pre-change rate after the 5 ms phase change:");
    for (name, pre_avg, rec) in stall_note {
        match rec {
            Some(ms) => println!("  {name:<8} pre-rate {pre_avg}/ms, recovered after {ms:.1} ms"),
            None => println!("  {name:<8} pre-rate {pre_avg}/ms, did not recover in-run"),
        }
    }
}
