//! Figure 5: fault-in-only vs fault-in+eviction throughput as thread
//! count grows (sequential-read microbenchmark; ideal limit 5.86 M ops/s
//! at the 192 Gbps practical ceiling).
//!
//! Paper shape: Hermit and DiLOS saturate around 24–28 threads far below
//! the ideal limit; enabling eviction costs DiLOS ~half its fault-in
//! throughput and Hermit even more.

use mage::{IdealModel, SystemConfig};
use mage_bench::{f2, scale, Experiment};
use mage_mmu::Topology;
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn storm(system: SystemConfig, threads: usize, with_eviction: bool) -> f64 {
    let wss = scale::STORM_WSS;
    let mut cfg = RunConfig::new(
        system,
        WorkloadKind::SeqFault,
        threads,
        wss,
        if with_eviction { 0.5 } else { 1.0 },
    );
    cfg.all_remote = true;
    cfg.ops_per_thread = wss / threads as u64;
    // Past the paper testbed's 56 cores, scale the dual-socket geometry
    // up so the 128–256 virtual-core points keep the same NUMA shape.
    if threads as u32 > cfg.topo.total_cores() {
        cfg.topo = Topology::dual_socket(threads.div_ceil(2) as u32);
    }
    let r = run_batch(&cfg);
    r.fault_mops()
}

fn main() {
    let ideal_limit = IdealModel::fault_rate_ceiling(24.0, 4096) / 1e6;
    let mut exp = Experiment::new(
        "fig05",
        "Fault-in throughput (M ops/s) vs threads: fault-in only / with eviction",
        &[
            "threads",
            "hermit_fault_only",
            "hermit_with_evict",
            "dilos_fault_only",
            "dilos_with_evict",
            "magelib_fault_only",
            "magelib_with_evict",
        ],
    );
    // 64–256 extend past the paper's 48-thread testbed ceiling onto the
    // scaled dual-socket geometry (the terabyte-scale/256-core sweep;
    // see EXPERIMENTS.md "Scale sweep").
    for threads in [1usize, 2, 4, 8, 16, 24, 28, 32, 40, 48, 64, 128, 256] {
        let mut cells = vec![threads.to_string()];
        for system in [
            SystemConfig::hermit(),
            SystemConfig::dilos(),
            SystemConfig::mage_lib(),
        ] {
            // Prefetch off: this microbenchmark measures the raw paths.
            let mut s = system;
            s.prefetch = mage::PrefetchPolicy::None;
            cells.push(f2(storm(s.clone(), threads, false)));
            cells.push(f2(storm(s, threads, true)));
        }
        exp.row(cells);
    }
    exp.finish();
    println!("ideal limit (192 Gbps / 4 KiB): {:.2} M ops/s", ideal_limit);
}
