//! Figure 1: GapBS (page rank) throughput vs. % far memory at 48 threads
//! for every system, against the ideal baseline.
//!
//! Paper shape: DiLOS and Hermit lose 50–75% of their throughput at just
//! 10% offloading; the MAGE variants track the ideal curve closely,
//! unlocking offloading ratios that were previously unusable.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let systems = [
        SystemConfig::ideal(),
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    let mut exp = Experiment::new(
        "fig01",
        "GapBS pagerank throughput vs far-memory % (48 threads), normalized to each system's all-local run",
        &[
            "far_mem_pct",
            "Ideal",
            "MageLib",
            "MageLnx",
            "DiLOS",
            "Hermit",
        ],
    );
    let mut baseline = Vec::new();
    for far_pct in [0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90] {
        let mut cells = vec![far_pct.to_string()];
        for (i, system) in systems.iter().enumerate() {
            let mut cfg = RunConfig::new(
                system.clone(),
                WorkloadKind::RandomGraph,
                scale::THREADS,
                scale::APP_WSS,
                1.0 - far_pct as f64 / 100.0,
            );
            cfg.ops_per_thread = scale::APP_OPS;
            cfg.warmup_ops = scale::APP_OPS / 2;
            let report = run_batch(&cfg);
            if far_pct == 0 {
                baseline.push(report.mops());
            }
            cells.push(f2(100.0 * report.mops() / baseline[i]));
        }
        exp.row(cells);
    }
    exp.finish();
    println!("(cells: % of each system's own 100%-local throughput)");
}
