//! Figure 6: fault-handler latency breakdown for Hermit and DiLOS at 24
//! and 48 threads under active eviction.
//!
//! Paper shape: at 48 threads, synchronous-eviction TLB flushes and page
//! accounting dominate; the RDMA read itself (≈3.9 µs) stops being the
//! main cost.

use mage::SystemConfig;
use mage_bench::{f1, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let mut exp = Experiment::new(
        "fig06",
        "Per-fault latency breakdown (us): seq read with eviction",
        &[
            "system",
            "threads",
            "rdma",
            "tlb_flush",
            "accounting",
            "circulation",
            "others",
            "total",
        ],
    );
    for system in [SystemConfig::hermit(), SystemConfig::dilos()] {
        for threads in [24usize, 48] {
            let mut s = system.clone();
            s.prefetch = mage::PrefetchPolicy::None;
            let name = s.name;
            let mut cfg = RunConfig::new(s, WorkloadKind::SeqFault, threads, scale::STORM_WSS, 0.5);
            cfg.all_remote = true;
            cfg.ops_per_thread = scale::STORM_WSS / threads as u64;
            let r = run_batch(&cfg);
            let b = r.breakdown;
            exp.row(vec![
                name.to_string(),
                threads.to_string(),
                f1(b.rdma / 1e3),
                f1(b.tlb / 1e3),
                f1(b.accounting / 1e3),
                f1(b.circulation / 1e3),
                f1(b.other / 1e3),
                f1(b.total() / 1e3),
            ]);
        }
    }
    exp.finish();
}
