//! Figure 4: sequential-scan throughput for Hermit and DiLOS, with and
//! without prefetching, against their ideal baselines (48 threads).
//!
//! Paper shape: prefetching cuts major faults by 27–44% at 10%
//! offloading, yet throughput barely moves — the fault-in path is
//! bottlenecked by the shortage of free pages, and Hermit even regresses
//! due to synchronous eviction triggered by prefetch pressure.

use mage::{PrefetchPolicy, SystemConfig};
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn run(system: SystemConfig, far_pct: u32) -> mage_workloads::runner::RunReport {
    let mut cfg = RunConfig::new(
        system,
        WorkloadKind::SeqScan,
        scale::THREADS,
        scale::APP_WSS,
        1.0 - far_pct as f64 / 100.0,
    );
    cfg.ops_per_thread = scale::APP_OPS;
    cfg.warmup_ops = 1_024;
    run_batch(&cfg)
}

fn main() {
    let mut exp = Experiment::new(
        "fig04",
        "Sequential scan (48T): Hermit/DiLOS with and without prefetch, % of all-local",
        &[
            "far_mem_pct",
            "ideal",
            "hermit",
            "hermit_prefetch",
            "dilos",
            "dilos_prefetch",
        ],
    );
    let mk = |prefetch: bool, base: SystemConfig| {
        let mut s = base;
        if !prefetch {
            s.prefetch = PrefetchPolicy::None;
        }
        s
    };
    let systems = [
        SystemConfig::ideal(),
        mk(false, SystemConfig::hermit()),
        mk(true, SystemConfig::hermit()),
        mk(false, SystemConfig::dilos()),
        mk(true, SystemConfig::dilos()),
    ];
    let mut base = [0.0f64; 5];
    let mut fault_note = Vec::new();
    for far_pct in [0u32, 10, 20, 30, 50, 70] {
        let mut cells = vec![far_pct.to_string()];
        for (i, system) in systems.iter().enumerate() {
            let r = run(system.clone(), far_pct);
            if far_pct == 0 {
                base[i] = r.mops();
            }
            if far_pct == 10 {
                fault_note.push((i, r.major_faults, r.prefetches));
            }
            cells.push(f2(100.0 * r.mops() / base[i]));
        }
        exp.row(cells);
    }
    exp.finish();
    println!("major faults at 10% offloading (prefetching cuts faults, not stalls):");
    let names = ["ideal", "hermit", "hermit+pf", "dilos", "dilos+pf"];
    for (i, faults, prefetched) in fault_note {
        println!(
            "  {:<10} faults={faults:<8} prefetched={prefetched}",
            names[i]
        );
    }
}
