//! Criterion micro-benchmarks for the hot data structures: buddy
//! allocator alloc/free, TLB fill/invalidate, page-table updates and
//! histogram recording. These bound the *host-side* cost of a simulated
//! event, which determines how large an experiment the harness can run.

use criterion::{criterion_group, criterion_main, Criterion};
use mage_mmu::{PageTable, Pte, Tlb};
use mage_palloc::BuddyAllocator;
use mage_sim::stats::Histogram;

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_cycle", |b| {
        let mut buddy = BuddyAllocator::new(1 << 16);
        b.iter(|| {
            let f = buddy.alloc(0).expect("frame");
            buddy.free(std::hint::black_box(f), 0);
        });
    });
    c.bench_function("buddy_batch_64", |b| {
        let mut buddy = BuddyAllocator::new(1 << 16);
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            out.clear();
            buddy.alloc_batch(64, &mut out);
            buddy.free_batch(std::hint::black_box(&out));
        });
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_fill_invalidate", |b| {
        let tlb = Tlb::new(1_536, 7);
        let mut vpn = 0u64;
        b.iter(|| {
            tlb.fill(std::hint::black_box(vpn));
            tlb.invalidate(vpn);
            vpn += 1;
        });
    });
    c.bench_function("tlb_lookup_hit", |b| {
        let tlb = Tlb::new(1_536, 7);
        for v in 0..1_000 {
            tlb.fill(v);
        }
        let mut vpn = 0u64;
        b.iter(|| {
            std::hint::black_box(tlb.lookup(vpn % 1_000));
            vpn += 1;
        });
    });
}

fn bench_pagetable(c: &mut Criterion) {
    c.bench_function("pagetable_update", |b| {
        let pt = PageTable::new();
        for v in 0..10_000u64 {
            pt.set(v, Pte::present(v));
        }
        let mut vpn = 0u64;
        b.iter(|| {
            pt.update(std::hint::black_box(vpn % 10_000), |p| {
                p.with_accessed(true)
            });
            vpn += 1;
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            h.record(std::hint::black_box(v));
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 34;
        });
    });
}

criterion_group!(
    benches,
    bench_buddy,
    bench_tlb,
    bench_pagetable,
    bench_histogram
);
criterion_main!(benches);
