//! Micro-benchmarks for the hot data structures: buddy allocator
//! alloc/free, TLB fill/invalidate, page-table updates and histogram
//! recording. These bound the *host-side* cost of a simulated event,
//! which determines how large an experiment the harness can run.
//!
//! Self-contained timing loop (no external bench framework): each case
//! is warmed up, then run for a fixed iteration count several times, and
//! the best per-iteration time is reported. Host wall-clock use is fine
//! here — this binary measures the simulator, it is not part of it.

use std::time::Instant;

use mage_bench::Experiment;
use mage_mmu::{PageTable, Pte, Tlb};
use mage_palloc::BuddyAllocator;
use mage_sim::rng::mix64;
use mage_sim::stats::Histogram;

const ITERS: u64 = 200_000;
const ROUNDS: usize = 5;

/// Runs `f` for `ITERS` iterations `ROUNDS` times (after one warm-up
/// round) and returns the best observed nanoseconds per iteration.
fn best_ns_per_iter(mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for round in 0..=ROUNDS {
        let start = Instant::now();
        for i in 0..ITERS {
            f(i);
        }
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        if round > 0 {
            best = best.min(ns);
        }
    }
    best
}

fn main() {
    let mut exp = Experiment::new(
        "micro",
        "Host-side cost of hot data-structure operations (best ns/iter)",
        &["case", "ns_per_iter"],
    );

    let mut buddy = BuddyAllocator::new(1 << 16);
    let ns = best_ns_per_iter(|_| {
        let f = buddy.alloc(0).expect("frame");
        buddy.free(std::hint::black_box(f), 0);
    });
    exp.row(vec!["buddy_alloc_free_cycle".into(), format!("{ns:.1}")]);

    let mut buddy = BuddyAllocator::new(1 << 16);
    let mut out = Vec::with_capacity(64);
    let ns = best_ns_per_iter(|_| {
        out.clear();
        buddy.alloc_batch(64, &mut out);
        buddy.free_batch(std::hint::black_box(&out));
    });
    exp.row(vec!["buddy_batch_64".into(), format!("{ns:.1}")]);

    let tlb = Tlb::new(1_536, 7);
    let ns = best_ns_per_iter(|i| {
        tlb.fill(std::hint::black_box(i));
        tlb.invalidate(i);
    });
    exp.row(vec!["tlb_fill_invalidate".into(), format!("{ns:.1}")]);

    let tlb = Tlb::new(1_536, 7);
    for v in 0..1_000 {
        tlb.fill(v);
    }
    let ns = best_ns_per_iter(|i| {
        std::hint::black_box(tlb.lookup(i % 1_000));
    });
    exp.row(vec!["tlb_lookup_hit".into(), format!("{ns:.1}")]);

    let pt = PageTable::new();
    for v in 0..10_000u64 {
        pt.set(v, Pte::present(v));
    }
    let ns = best_ns_per_iter(|i| {
        pt.update(std::hint::black_box(i % 10_000), |p| p.with_accessed(true));
    });
    exp.row(vec!["pagetable_update".into(), format!("{ns:.1}")]);

    let h = Histogram::new();
    let ns = best_ns_per_iter(|i| {
        let v = mix64(i) >> 34;
        h.record(std::hint::black_box(v.max(1)));
    });
    exp.row(vec!["histogram_record".into(), format!("{ns:.1}")]);

    exp.finish();
}
