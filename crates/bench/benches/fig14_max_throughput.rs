//! Figure 14: maximum fault-path throughput — p99 latency of sequential
//! reads and the number of synchronous evictions, 48 threads, 30% local
//! memory, prefetching disabled.
//!
//! Paper shape: MAGE-Lib utilizes 94% of the RDMA bandwidth (3.1× DiLOS,
//! 7.1× Hermit) with p99 dropping from 255 µs (Hermit) and 82 µs (DiLOS)
//! to 12 µs; MAGE performs zero synchronous evictions.

use mage::SystemConfig;
use mage_bench::{f1, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let mut exp = Experiment::new(
        "fig14",
        "Seq-read fault storm, 30% local, 48T: bandwidth, latency, sync evictions",
        &[
            "system",
            "read_gbps",
            "fault_mops",
            "p50_us",
            "p99_us",
            "sync_evictions",
            "evict_cancels",
        ],
    );
    for system in [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ] {
        let mut s = system;
        s.prefetch = mage::PrefetchPolicy::None;
        let name = s.name;
        let mut cfg = RunConfig::new(
            s,
            WorkloadKind::SeqFault,
            scale::THREADS,
            scale::STORM_WSS,
            0.3,
        );
        cfg.all_remote = true;
        cfg.ops_per_thread = scale::STORM_WSS / scale::THREADS as u64;
        let r = run_batch(&cfg);
        exp.row(vec![
            name.to_string(),
            f1(r.read_gbps),
            format!("{:.2}", r.fault_mops()),
            f1(r.fault_p50_ns as f64 / 1e3),
            f1(r.fault_p99_ns as f64 / 1e3),
            r.sync_evictions.to_string(),
            r.evict_cancels.to_string(),
        ]);
    }
    exp.finish();
    println!("practical link ceiling: 192 Gbps (24 B/ns); MAGE-Lnx is capped at 139 Gbps by its kernel RDMA stack");
}
