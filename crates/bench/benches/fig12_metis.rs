//! Figure 12: Metis MapReduce — map-phase and reduce-phase throughput at
//! varying offload ratios, 48 threads.
//!
//! Paper shape: at 20% offloading everyone is near baseline in the map
//! phase (its working set fits); after the phase change MAGE loses only
//! ~14% while Hermit and DiLOS drop 61% / 41% because their eviction
//! paths cannot drain the previous region fast enough.

use mage::SystemConfig;
use mage_bench::{f2, scale, Experiment};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

fn main() {
    let systems = [
        SystemConfig::mage_lib(),
        SystemConfig::mage_lnx(),
        SystemConfig::dilos(),
        SystemConfig::hermit(),
    ];
    let ops: u64 = 5_000;
    for (phase, id, title) in [
        (
            0usize,
            "fig12_map",
            "Metis map phase throughput (M ops/s), 48T",
        ),
        (
            1usize,
            "fig12_reduce",
            "Metis reduce phase throughput (M ops/s), 48T",
        ),
    ] {
        let mut exp = Experiment::new(
            id,
            title,
            &["local_pct", "MageLib", "MageLnx", "DiLOS", "Hermit"],
        );
        for local_pct in [100u32, 80, 60, 40, 20] {
            let mut cells = vec![local_pct.to_string()];
            for system in &systems {
                let mut cfg = RunConfig::new(
                    system.clone(),
                    WorkloadKind::Metis,
                    scale::THREADS,
                    32_768,
                    local_pct as f64 / 100.0,
                );
                cfg.ops_per_thread = ops;
                cfg.phase_change_at_op = Some(ops / 2);
                let r = run_batch(&cfg);
                // Split throughput at the phase boundary.
                let switch = *r.phase_switch_ns.iter().max().expect("threads ran");
                let map_ops = (r.total_ops / 2) as f64;
                let mops = if phase == 0 {
                    map_ops * 1e3 / switch.max(1) as f64
                } else {
                    map_ops * 1e3 / (r.runtime_ns - switch).max(1) as f64
                };
                cells.push(f2(mops));
            }
            exp.row(cells);
        }
        exp.finish();
    }
}
