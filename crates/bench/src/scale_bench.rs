//! The committed scale benchmark behind `BENCH_scale.json`.
//!
//! Where `hotloop` measures how fast the simulator executes, this
//! harness measures how *big* a machine it can model: each scale point
//! runs a scenario whose nominal capacity (virtual cores, keyspace
//! pages, address-space pages) far exceeds what a dense per-capacity
//! representation could afford, and records the host-side cost actually
//! paid — peak RSS, sparse-metadata entries, and events per host
//! second. The metadata gauges are the proof that every per-page and
//! per-core structure is O(touched pages), not O(capacity): a dense
//! regression would blow the `validate_report` bound (or the host)
//! immediately.
//!
//! Scale points:
//!
//! * `fig5_mage_c128` / `fig5_mage_c256` — the Fig-5 fault storm pushed
//!   past the paper testbed's 56 cores onto the scaled dual-socket
//!   geometry (the 256-virtual-core sweep end point).
//! * `memcached_1m_conn_256gib` — one million Zipf-active connections
//!   over a 2^26-page (256 GiB) keyspace, lazily populated.
//! * `sparse_2p40_replicated` — scattered touches over a 2^40-page
//!   (4 PiB) address space through the replicated backend, with a local
//!   cache small enough that evictions exercise replica tracking.
//!
//! The emitted JSON (`schema: mage-bench-scale/v1`) is hand-rolled and
//! parsed back by this module for the smoke test, mirroring `hotloop`.

use std::rc::Rc;

// Host timing is half the point of this harness: events/sec measures
// the host executing the simulator, and peak RSS is a host gauge too.
// Nothing here reads the host clock inside virtual time.
// simlint: allow(wall-clock): events/sec needs host wall time; virtual time is the numerator, not the clock
use std::time::Instant;

use mage::{FarMemory, MachineParams, ReplicationConfig, SystemConfig};
use mage_mmu::{CoreId, Topology};
use mage_sim::Simulation;
use mage_workloads::memcached::{run_memcached, MemcachedConfig};
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

/// JSON schema marker written to (and expected in) `BENCH_scale.json`.
pub const SCHEMA: &str = "mage-bench-scale/v1";

/// Sparse-metadata slack allowed by [`validate_report`]: entries may be
/// at most this multiple of touched pages (plus [`META_FLOOR`]). The
/// honest per-touch costs are small — ≤ 5 page-table nodes, ≤ 1 replica
/// record, ≤ 2 workload-tracker records — so 16× is generous headroom
/// that still catches any dense O(capacity) regression by orders of
/// magnitude.
pub const META_SLACK: u64 = 16;

/// Fixed metadata floor allowed regardless of touches (root tables,
/// allocator free-list tails, per-core structures).
pub const META_FLOOR: u64 = 4_096;

/// One measured scale point.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Stable scenario id.
    pub id: String,
    /// Nominal capacity of the scenario, pages (keyspace or address
    /// space) — what a dense representation would be sized by.
    pub capacity_pages: u64,
    /// Distinct pages the scenario actually touched.
    pub touched_pages: u64,
    /// Sparse-metadata entries alive at the end of the run (page-table
    /// nodes + replica records + workload trackers).
    pub metadata_entries: u64,
    /// Host wall-clock spent inside the run, milliseconds.
    pub wall_ms: f64,
    /// Final virtual time of the run, nanoseconds.
    pub virtual_ns: u64,
    /// Executor task polls the run performed.
    pub events: u64,
    /// Process peak RSS (VmHWM) sampled after the run, KiB. Monotone
    /// across the process lifetime, so later points can only report
    /// equal-or-higher values; the headline number is the last point's.
    pub peak_rss_kb: u64,
}

impl ScalePoint {
    /// Discrete events per host second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 * 1e3 / self.wall_ms
    }
}

/// A full harness run.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// `quick` shrinks the work per point (smoke tests); `full` is the
    /// committed configuration. Capacities stay at full scale in both —
    /// shrinking *those* would defeat the purpose.
    pub mode: &'static str,
    /// Per-point measurements.
    pub points: Vec<ScalePoint>,
}

/// Process peak RSS in KiB from `/proc/self/status` (`VmHWM`); 0 where
/// the proc filesystem is unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// One Fig-5-shaped fault storm at `threads` virtual cores on the
/// scaled dual-socket geometry (SeqFault, every page remote).
fn run_fig5_point(threads: usize, wss_pages: u64) -> ScalePoint {
    let mut cfg = RunConfig::new(
        SystemConfig::mage_lib(),
        WorkloadKind::SeqFault,
        threads,
        wss_pages,
        1.0,
    );
    cfg.all_remote = true;
    cfg.ops_per_thread = wss_pages / threads as u64;
    cfg.topo = Topology::dual_socket(threads.div_ceil(2) as u32);
    let t0 = Instant::now();
    let r = run_batch(&cfg);
    ScalePoint {
        id: format!("fig5_mage_c{threads}"),
        capacity_pages: wss_pages,
        touched_pages: wss_pages,
        metadata_entries: r.pt_nodes + r.replica_entries,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        virtual_ns: r.runtime_ns,
        events: r.executor_polls,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// One million connections over a 256 GiB keyspace, lazily populated:
/// the host pays for requested pages and active connections only.
fn run_memcached_point(quick: bool) -> ScalePoint {
    let capacity: u64 = 1 << 26; // 2^26 pages = 256 GiB of 4 KiB pages
    let mut cfg = MemcachedConfig::paper(SystemConfig::mage_lib(), capacity);
    cfg.workers = 8;
    cfg.connections = 1_000_000;
    cfg.lazy_populate = true;
    cfg.duration_ns = if quick { 2_000_000 } else { 20_000_000 };
    let t0 = Instant::now();
    let r = run_memcached(&cfg);
    ScalePoint {
        id: "memcached_1m_conn_256gib".to_string(),
        capacity_pages: capacity,
        touched_pages: r.touched_pages,
        metadata_entries: r.pt_nodes + r.active_connections + r.touched_pages,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        virtual_ns: r.runtime_ns,
        events: r.executor_polls,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Scattered touches over a 2^40-page VMA through the replicated
/// backend. The local cache is far smaller than the touch count, so
/// evictions stream pages to the backend and the replica table tracks
/// them — all of it O(touched).
fn run_sparse_point(touched: u64) -> ScalePoint {
    const SPACE: u64 = 1 << 40; // 4 PiB of 4 KiB pages
    let t0 = Instant::now();
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: 1_024,
        remote_pages: SPACE,
        tlb_entries: 1_536,
        seed: 7,
    };
    let engine = FarMemory::launch(
        sim.handle(),
        SystemConfig::mage_lib().with_replication(ReplicationConfig::default()),
        params,
    );
    let vma = engine.mmap(SPACE);
    engine.populate_lazy(&vma);
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let engine = Rc::clone(&engine);
        let h = sim.handle();
        let start_vpn = vma.start_vpn;
        joins.push(sim.spawn(async move {
            for i in (t..touched).step_by(4) {
                // Golden-ratio scatter: no two touches share a radix
                // subtree until the space is saturated.
                let vpn = start_vpn + i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % SPACE;
                engine.access(CoreId(t as u32), vpn, true).await;
                h.sleep(200).await;
            }
        }));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });
    engine.shutdown();
    sim.run();
    let metadata =
        engine.page_table().node_count() as u64 + engine.backend().replica_entries();
    ScalePoint {
        id: "sparse_2p40_replicated".to_string(),
        capacity_pages: SPACE,
        touched_pages: touched,
        metadata_entries: metadata,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        virtual_ns: sim.handle().now().as_nanos(),
        events: sim.polls(),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Runs the whole harness. `quick` shrinks the *work* per point (ops,
/// duration, touch counts) for smoke tests; nominal capacities — 256
/// virtual cores, 2^26-page keyspace, million connections, 2^40-page
/// address space — are identical in both modes, because affording the
/// capacity is exactly what is being measured.
pub fn run_scale(quick: bool) -> ScaleReport {
    let (storm_wss, touched) = if quick { (8_192, 512) } else { (131_072, 4_096) };
    let points = vec![
        run_fig5_point(128, storm_wss),
        run_fig5_point(256, storm_wss),
        run_memcached_point(quick),
        run_sparse_point(touched),
    ];
    ScaleReport {
        mode: if quick { "quick" } else { "full" },
        points,
    }
}

/// Renders the report as `mage-bench-scale/v1` JSON.
pub fn render_json(report: &ScaleReport) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    out.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        let mut line = format!(
            "    {{\"id\": \"{}\", \"capacity_pages\": {}, \"touched_pages\": {}, \"metadata_entries\": {}, \"wall_ms\": {:.3}, \"virtual_ns\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \"peak_rss_kb\": {}}}",
            p.id,
            p.capacity_pages,
            p.touched_pages,
            p.metadata_entries,
            p.wall_ms,
            p.virtual_ns,
            p.events,
            p.events_per_sec(),
            p.peak_rss_kb,
        );
        if i + 1 < report.points.len() {
            line.push(',');
        }
        line.push('\n');
        out.push_str(&line);
    }
    out.push_str("  ]\n}\n");
    out
}

/// One parsed report row: `(id, capacity_pages, touched_pages,
/// metadata_entries, events_per_sec)`.
pub type PointRow = (String, u64, u64, u64, f64);

/// Extracts [`PointRow`]s from a previously emitted report. A minimal
/// scanner over our own stable output format, like `hotloop`'s.
pub fn parse_points(json: &str) -> Vec<PointRow> {
    let grab_u64 = |line: &str, key: &str| -> Option<u64> {
        let at = line.find(key)?;
        let tail = &line[at + key.len()..];
        let num: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        num.parse().ok()
    };
    let mut rows = Vec::new();
    for line in json.lines() {
        let Some(id_at) = line.find("\"id\": \"") else {
            continue;
        };
        let rest = &line[id_at + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = rest[..id_end].to_string();
        let (Some(cap), Some(touched), Some(meta)) = (
            grab_u64(line, "\"capacity_pages\": "),
            grab_u64(line, "\"touched_pages\": "),
            grab_u64(line, "\"metadata_entries\": "),
        ) else {
            continue;
        };
        let Some(eps_at) = line.find("\"events_per_sec\": ") else {
            continue;
        };
        let tail = &line[eps_at + 18..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(eps) = num.parse::<f64>() {
            rows.push((id, cap, touched, meta, eps));
        }
    }
    rows
}

/// Validates an emitted report: schema marker, at least one point, a
/// positive events/sec everywhere, and — the point of the harness —
/// metadata within [`META_SLACK`]·touched + [`META_FLOOR`] at every
/// point. A dense O(capacity) structure anywhere fails this by orders
/// of magnitude (capacity/touched is ≥ 2^14 at every point).
pub fn validate_report(json: &str) -> Result<Vec<PointRow>, String> {
    if !json.contains(SCHEMA) {
        return Err(format!("missing schema marker {SCHEMA:?}"));
    }
    let rows = parse_points(json);
    if rows.is_empty() {
        return Err("no scale points found".to_string());
    }
    for (id, cap, touched, meta, eps) in &rows {
        if *eps <= 0.0 {
            return Err(format!("point {id} has non-positive events/sec {eps}"));
        }
        if touched > cap {
            return Err(format!("point {id} touched {touched} > capacity {cap}"));
        }
        let bound = META_SLACK * touched + META_FLOOR;
        if *meta > bound {
            return Err(format!(
                "point {id} metadata {meta} exceeds O(touched) bound {bound} \
                 ({touched} touched of {cap} capacity): dense-metadata regression"
            ));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scale-harness smoke test: a quick run must emit valid
    /// `mage-bench-scale/v1` JSON whose every point holds the
    /// O(touched) metadata bound at full nominal capacity.
    #[test]
    fn quick_report_covers_all_points_and_validates() {
        let report = run_scale(true);
        assert_eq!(report.points.len(), 4);
        let json = render_json(&report);
        let rows = validate_report(&json).expect("fresh report validates");
        assert_eq!(rows.len(), report.points.len());
        // The headline capacities must survive quick mode untouched.
        let cap = |id: &str| {
            rows.iter()
                .find(|(rid, ..)| rid == id)
                .map(|&(_, c, ..)| c)
                .expect("point present")
        };
        assert_eq!(cap("memcached_1m_conn_256gib"), 1 << 26);
        assert_eq!(cap("sparse_2p40_replicated"), 1 << 40);
        assert_eq!(cap("fig5_mage_c256"), cap("fig5_mage_c128"));
    }

    #[test]
    fn validate_rejects_dense_metadata() {
        assert!(validate_report("{}").is_err());
        let dense = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"points\": [\n    \
             {{\"id\": \"x\", \"capacity_pages\": 1099511627776, \"touched_pages\": 1000, \
             \"metadata_entries\": 1099511627776, \"wall_ms\": 1.0, \"virtual_ns\": 1, \
             \"events\": 1, \"events_per_sec\": 1000.0, \"peak_rss_kb\": 1}}\n  ]\n}}\n"
        );
        let err = validate_report(&dense).expect_err("dense metadata must fail");
        assert!(err.contains("dense-metadata regression"), "{err}");
    }

    #[test]
    fn sparse_point_is_o_touched() {
        let p = run_sparse_point(256);
        assert_eq!(p.capacity_pages, 1 << 40);
        assert!(p.events > 0);
        assert!(
            p.metadata_entries <= META_SLACK * p.touched_pages + META_FLOOR,
            "metadata {} for {} touches",
            p.metadata_entries,
            p.touched_pages
        );
    }
}
