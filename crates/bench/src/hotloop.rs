//! The committed events/sec benchmark harness behind `BENCH_hotloop.json`.
//!
//! Unlike the figure benches (which report *virtual-time* metrics and
//! are wall-clock agnostic), this harness measures how fast the host
//! executes the simulator itself: discrete events per host second. The
//! event unit is one executor task poll (`Simulation::polls`) — a
//! monotone, schedule-determined count that the determinism goldens pin
//! bit-for-bit, so two builds of the same schedule are directly
//! comparable and only the wall-clock denominator moves.
//!
//! Two scenario families, mirroring the repo's two canonical runs:
//!
//! * `quickstart` — the README quickstart machine (4 threads streaming a
//!   16 K-page region through a 4 K-page local cache).
//! * `fig5_<system>_t<n>[_evict]` — Fig-5-shaped fault storms
//!   (`SeqFault`, all pages remote) across the three modelled systems,
//!   with and without eviction pressure.
//!
//! The emitted JSON (`schema: mage-bench-hotloop/v1`) is hand-rolled —
//! the workspace has no serde — and parsed back by the same module for
//! the baseline comparison and the smoke test.

use std::rc::Rc;

// Host timing is the entire point of this harness: it measures how fast
// the deterministic simulator runs on the host, never anything inside
// virtual time (scenario schedules stay pinned by the goldens).
// simlint: allow(wall-clock): events/sec needs host wall time; virtual time is the numerator, not the clock
use std::time::Instant;

use mage::{Access, FarMemory, MachineParams, SystemConfig};
use mage_mmu::{CoreId, Topology};
use mage_sim::Simulation;
use mage_workloads::runner::{run_batch, RunConfig};
use mage_workloads::WorkloadKind;

/// JSON schema marker written to (and expected in) `BENCH_hotloop.json`.
pub const SCHEMA: &str = "mage-bench-hotloop/v1";

/// Suite rounds in full mode. The schedule is deterministic, so every
/// round performs the identical event sequence and only the host wall
/// clock varies; each scenario reports its fastest round, the
/// least-noise estimate of the true cost. Nine rounds spread each
/// scenario's samples over several seconds, so multi-second host noise
/// bursts (a shared machine's co-tenants) rarely taint every sample.
/// Quick (smoke) mode runs each scenario once.
pub const FULL_REPEATS: usize = 9;

/// One measured scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable scenario id (used to match against the baseline file).
    pub id: String,
    /// Host wall-clock spent inside the run, milliseconds.
    pub wall_ms: f64,
    /// Final virtual time of the run, nanoseconds.
    pub virtual_ns: u64,
    /// Executor task polls the run performed.
    pub events: u64,
}

impl Scenario {
    /// Discrete events per host second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 * 1e3 / self.wall_ms
    }
}

/// A full harness run: every scenario plus the aggregate.
#[derive(Clone, Debug)]
pub struct HotloopReport {
    /// `quick` runs scaled-down scenarios (smoke tests); `full` is the
    /// committed-trajectory configuration.
    pub mode: &'static str,
    /// Repeats each scenario ran; reported wall times are the best of these.
    pub repeats: usize,
    /// Per-scenario measurements.
    pub scenarios: Vec<Scenario>,
}

impl HotloopReport {
    /// Total events across scenarios.
    pub fn total_events(&self) -> u64 {
        self.scenarios.iter().map(|s| s.events).sum()
    }

    /// Total wall milliseconds across scenarios.
    pub fn total_wall_ms(&self) -> f64 {
        self.scenarios.iter().map(|s| s.wall_ms).sum()
    }

    /// Aggregate events per host second (total events / total wall).
    pub fn events_per_sec(&self) -> f64 {
        let wall = self.total_wall_ms();
        if wall <= 0.0 {
            return 0.0;
        }
        self.total_events() as f64 * 1e3 / wall
    }
}

/// The quickstart machine from `examples/quickstart.rs`, scaled by
/// `region_pages`, measured wall-clock end to end (launch → drain).
fn run_quickstart(region_pages: u64) -> Scenario {
    let t0 = Instant::now();
    let sim = Simulation::new();
    let params = MachineParams {
        topo: Topology::single_socket(8),
        app_threads: 4,
        local_pages: region_pages / 4,
        remote_pages: region_pages * 2,
        tlb_entries: 1_536,
        seed: 1,
    };
    let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
    let vma = engine.mmap(region_pages);
    engine.populate(&vma);
    let mut joins = Vec::new();
    for t in 0..4u32 {
        let engine = Rc::clone(&engine);
        let h = sim.handle();
        joins.push(sim.spawn(async move {
            let mut faults = 0u64;
            for i in 0..region_pages {
                if i % 4 != t as u64 {
                    continue; // interleaved sharding
                }
                let access = engine.access(CoreId(t), vma.start_vpn + i, false).await;
                if matches!(access, Access::Major { .. }) {
                    faults += 1;
                }
                h.sleep(300).await; // per-page compute
            }
            faults
        }));
    }
    sim.block_on(async move {
        let mut sum = 0u64;
        for j in joins {
            sum += j.await;
        }
        sum
    });
    engine.shutdown();
    sim.run();
    Scenario {
        id: "quickstart".to_string(),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        virtual_ns: sim.handle().now().as_nanos(),
        events: sim.polls(),
    }
}

/// One Fig-5-shaped fault-storm cell (SeqFault, every page remote).
fn run_fig5_cell(
    id: String,
    system: SystemConfig,
    threads: usize,
    wss_pages: u64,
    with_eviction: bool,
) -> Scenario {
    let local_ratio = if with_eviction { 0.75 } else { 1.0 };
    let mut cfg = RunConfig::new(system, WorkloadKind::SeqFault, threads, wss_pages, local_ratio);
    cfg.all_remote = true;
    cfg.ops_per_thread = wss_pages / threads as u64;
    cfg.topo = Topology::single_socket(32.min(threads as u32 + 8));
    let t0 = Instant::now();
    let report = run_batch(&cfg);
    Scenario {
        id,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        virtual_ns: report.runtime_ns,
        events: report.executor_polls,
    }
}

/// One pass over every scenario.
fn run_suite(quick: bool) -> Vec<Scenario> {
    let (qs_pages, wss, threads): (u64, u64, &[usize]) = if quick {
        (1_024, 2_048, &[2])
    } else {
        (16_384, 24_576, &[8, 24])
    };
    let mut scenarios = vec![run_quickstart(qs_pages)];
    for (name, system) in [
        ("hermit", SystemConfig::hermit()),
        ("dilos", SystemConfig::dilos()),
        ("mage", SystemConfig::mage_lib()),
    ] {
        for &t in threads {
            scenarios.push(run_fig5_cell(
                format!("fig5_{name}_t{t}"),
                system.clone(),
                t,
                wss,
                false,
            ));
        }
    }
    // Eviction-pressure cells: the reclaim pipeline, watermarks and
    // page-waiter wakes join the hot loop.
    for (name, system) in [
        ("hermit", SystemConfig::hermit()),
        ("mage", SystemConfig::mage_lib()),
    ] {
        let t = *threads.last().expect("thread list is non-empty");
        scenarios.push(run_fig5_cell(
            format!("fig5_{name}_t{t}_evict"),
            system.clone(),
            t,
            wss,
            true,
        ));
    }
    scenarios
}

/// Runs the whole harness. `quick` shrinks every scenario (~100× less
/// work) for smoke tests; the committed trajectory uses `quick = false`,
/// which runs the suite [`FULL_REPEATS`] times and keeps each scenario's
/// fastest round. Determinism makes the rounds bit-identical in virtual
/// time (same events, same final virtual clock), so the minimum wall
/// time filters host noise without changing what is measured — and
/// taking it across whole-suite rounds, rather than back-to-back runs
/// of one scenario, spreads each scenario's samples seconds apart so a
/// transient noise burst cannot slow every sample of the same scenario.
pub fn run_hotloop(quick: bool) -> HotloopReport {
    let repeats = if quick { 1 } else { FULL_REPEATS };
    let mut scenarios = run_suite(quick);
    for _ in 1..repeats {
        for (best, s) in scenarios.iter_mut().zip(run_suite(quick)) {
            debug_assert_eq!(s.events, best.events, "rounds must be deterministic");
            if s.wall_ms < best.wall_ms {
                *best = s;
            }
        }
    }
    HotloopReport {
        mode: if quick { "quick" } else { "full" },
        repeats,
        scenarios,
    }
}

/// Renders the report as `mage-bench-hotloop/v1` JSON. When a baseline
/// (parsed from a previous report via [`parse_scenarios`]) is given,
/// per-scenario speedups and their geometric mean are included.
pub fn render_json(report: &HotloopReport, baseline: Option<(&str, &[(String, f64)])>) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    out.push_str(&format!("  \"repeats\": {},\n", report.repeats));
    out.push_str("  \"scenarios\": [\n");
    let base_rate = |id: &str| -> Option<f64> {
        baseline
            .and_then(|(_, rows)| rows.iter().find(|(bid, _)| bid == id))
            .map(|&(_, eps)| eps)
            .filter(|&eps| eps > 0.0)
    };
    let mut speedups: Vec<f64> = Vec::new();
    for (i, s) in report.scenarios.iter().enumerate() {
        let mut line = format!(
            "    {{\"id\": \"{}\", \"wall_ms\": {:.3}, \"virtual_ns\": {}, \"events\": {}, \"events_per_sec\": {:.1}",
            s.id,
            s.wall_ms,
            s.virtual_ns,
            s.events,
            s.events_per_sec(),
        );
        if let Some(base) = base_rate(&s.id) {
            let speedup = s.events_per_sec() / base;
            speedups.push(speedup);
            line.push_str(&format!(", \"speedup_vs_baseline\": {speedup:.2}"));
        }
        line.push('}');
        if i + 1 < report.scenarios.len() {
            line.push(',');
        }
        line.push('\n');
        out.push_str(&line);
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"total\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}}}",
        report.total_wall_ms(),
        report.total_events(),
        report.events_per_sec(),
    ));
    if let Some((source, _)) = baseline {
        if !speedups.is_empty() {
            let geomean =
                (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
            out.push_str(&format!(",\n  \"baseline\": \"{source}\""));
            out.push_str(&format!(",\n  \"speedup_geomean\": {geomean:.2}"));
        }
    }
    out.push_str("\n}\n");
    out
}

/// Extracts `(id, events_per_sec)` rows from a previously emitted
/// report. A minimal scanner over our own stable output format — not a
/// general JSON parser (the workspace has none by design).
pub fn parse_scenarios(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in json.lines() {
        let Some(id_at) = line.find("\"id\": \"") else {
            continue;
        };
        let rest = &line[id_at + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = rest[..id_end].to_string();
        let Some(eps_at) = line.find("\"events_per_sec\": ") else {
            continue;
        };
        let tail = &line[eps_at + 18..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(eps) = num.parse::<f64>() {
            rows.push((id, eps));
        }
    }
    rows
}

/// Validates an emitted report: schema marker, at least one scenario,
/// and a positive events/sec everywhere. Returns the parsed rows.
pub fn validate_report(json: &str) -> Result<Vec<(String, f64)>, String> {
    if !json.contains(SCHEMA) {
        return Err(format!("missing schema marker {SCHEMA:?}"));
    }
    let rows = parse_scenarios(json);
    if rows.is_empty() {
        return Err("no scenarios found".to_string());
    }
    for (id, eps) in &rows {
        if *eps <= 0.0 {
            return Err(format!("scenario {id} has non-positive events/sec {eps}"));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The benchmark-harness smoke test: a quick run must emit valid
    /// `mage-bench-hotloop/v1` JSON with events/sec > 0 everywhere, and
    /// the baseline round-trip must produce per-scenario speedups.
    #[test]
    fn quick_report_roundtrips_and_validates() {
        let report = run_hotloop(true);
        assert!(report.scenarios.len() >= 3, "quick mode covers all families");
        let json = render_json(&report, None);
        let rows = validate_report(&json).expect("fresh report validates");
        assert_eq!(rows.len(), report.scenarios.len());
        assert!(report.total_events() > 0);
        assert!(report.events_per_sec() > 0.0);
        // Round-trip as its own baseline: every speedup ≈ 1.
        let json2 = render_json(&report, Some(("self", &rows)));
        assert!(json2.contains("\"speedup_vs_baseline\": 1.00"));
        assert!(json2.contains("\"speedup_geomean\": 1.00"));
        validate_report(&json2).expect("baselined report still validates");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_report("{}").is_err());
        let bad = format!("{{\"schema\": \"{SCHEMA}\", \"scenarios\": []}}");
        assert!(validate_report(&bad).is_err());
    }
}
