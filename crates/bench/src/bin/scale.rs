//! Emits `BENCH_scale.json` at the repo root: the committed
//! terabyte-scale/256-core scale trajectory (see
//! `mage_bench::scale_bench`).
//!
//! ```sh
//! cargo run --release -p mage-bench --bin scale            # full run
//! cargo run --release -p mage-bench --bin scale -- --quick # smoke
//! ```
//!
//! Flags:
//! * `--quick` — scaled-down per-point work (CI smoke; the nominal
//!   capacities — 256 vcores, 2^26-page keyspace, million connections,
//!   2^40-page space — stay at full scale).
//! * `--out <path>` — output path (default: `<repo>/BENCH_scale.json`).

use std::path::{Path, PathBuf};

use mage_bench::scale_bench::{render_json, run_scale, validate_report};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("mage-bench lives at <workspace>/crates/bench")
        .to_path_buf()
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("scale: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| workspace_root().join("BENCH_scale.json"));

    eprintln!(
        "scale: running {} scale points...",
        if quick { "quick" } else { "full" }
    );
    let report = run_scale(quick);
    let json = render_json(&report);
    validate_report(&json).expect("emitted report must hold the O(touched) metadata bound");
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");

    for p in &report.points {
        eprintln!(
            "  {:26} {:>16} cap  {:>9} touched  {:>9} meta  {:>9.1} ms  {:>12.0} events/s  {:>9} KiB peak",
            p.id,
            p.capacity_pages,
            p.touched_pages,
            p.metadata_entries,
            p.wall_ms,
            p.events_per_sec(),
            p.peak_rss_kb,
        );
    }
    eprintln!("scale: -> {}", out_path.display());
    print!("{json}");
}
