//! Emits `BENCH_policies.json` at the repo root: the committed
//! eviction-policy ablation (policy × workload × local-memory fraction;
//! see `mage_workloads::ablation`).
//!
//! ```sh
//! cargo run --release -p mage-bench --bin policies            # full run
//! cargo run --release -p mage-bench --bin policies -- --quick # smoke
//! ```
//!
//! Flags:
//! * `--quick` — scaled-down cells (CI smoke; ids stay comparable).
//! * `--out <path>` — output path (default: `<repo>/BENCH_policies.json`).
//!
//! Every metric is virtual-time, so the full report is bit-reproducible
//! across hosts. Full mode additionally asserts that S3-FIFO wins at
//! least one `(workload, fraction)` group on re-fault rate — the claim
//! the committed report exists to document.

use std::path::{Path, PathBuf};

use mage_workloads::ablation::{render_json, run_ablation, s3fifo_win_cells, validate_report};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("mage-bench lives at <workspace>/crates/bench")
        .to_path_buf()
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("policies: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| workspace_root().join("BENCH_policies.json"));

    eprintln!(
        "policies: running the {} ablation cube...",
        if quick { "quick" } else { "full" }
    );
    let cells = run_ablation(quick);

    let json = render_json(&cells, quick);
    validate_report(&json).expect("emitted report must validate against its own schema");
    let wins = s3fifo_win_cells(&cells);
    if !quick {
        assert!(
            !wins.is_empty(),
            "full ablation must show S3-FIFO winning at least one cell on re-fault rate"
        );
    }
    std::fs::write(&out_path, &json).expect("write BENCH_policies.json");

    for c in &cells {
        eprintln!(
            "  {:13} {:9} frac={:.2}  {:>8.3} Mops  {:>7} faults  {:>6} refaults  rate={:.4}",
            c.policy, c.workload, c.local_frac, c.mops, c.major_faults, c.re_faults, c.re_fault_rate
        );
    }
    eprintln!(
        "policies: {} cells, S3-FIFO re-fault wins in {:?} -> {}",
        cells.len(),
        wins,
        out_path.display()
    );
    print!("{json}");
}
