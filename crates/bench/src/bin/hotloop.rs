//! Emits `BENCH_hotloop.json` at the repo root: the committed events/sec
//! trajectory of the simulator's hot loop (see `mage_bench::hotloop`).
//!
//! ```sh
//! cargo run --release -p mage-bench --bin hotloop            # full run
//! cargo run --release -p mage-bench --bin hotloop -- --quick # smoke
//! ```
//!
//! Flags:
//! * `--quick` — scaled-down scenarios (CI smoke; ids stay comparable).
//! * `--baseline <path>` — previous report to compute speedups against
//!   (default: `crates/bench/baseline/hotloop_baseline.json`, the
//!   pre-slab-refactor numbers, when it exists).
//! * `--out <path>` — output path (default: `<repo>/BENCH_hotloop.json`).

use std::path::{Path, PathBuf};

use mage_bench::hotloop::{parse_scenarios, render_json, run_hotloop, validate_report};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("mage-bench lives at <workspace>/crates/bench")
        .to_path_buf()
}

fn main() {
    let mut quick = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--baseline" => {
                baseline_path = Some(PathBuf::from(args.next().expect("--baseline needs a path")))
            }
            "--out" => out_path = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("hotloop: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let root = workspace_root();
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates/bench/baseline/hotloop_baseline.json"));
    let out_path = out_path.unwrap_or_else(|| root.join("BENCH_hotloop.json"));

    eprintln!(
        "hotloop: running {} scenarios...",
        if quick { "quick" } else { "full" }
    );
    let report = run_hotloop(quick);

    let baseline_json = std::fs::read_to_string(&baseline_path).ok();
    let baseline_rows = baseline_json.as_deref().map(parse_scenarios);
    // Committed output should not carry host-absolute paths.
    let baseline_label = baseline_path
        .strip_prefix(&root)
        .unwrap_or(&baseline_path)
        .display()
        .to_string();
    let baseline = baseline_rows
        .as_deref()
        .filter(|rows| !rows.is_empty())
        .map(|rows| (baseline_label.as_str(), rows));

    let json = render_json(&report, baseline);
    validate_report(&json).expect("emitted report must validate against its own schema");
    std::fs::write(&out_path, &json).expect("write BENCH_hotloop.json");

    for s in &report.scenarios {
        eprintln!(
            "  {:24} {:>9.1} ms  {:>12} events  {:>12.0} events/s",
            s.id,
            s.wall_ms,
            s.events,
            s.events_per_sec()
        );
    }
    eprintln!(
        "hotloop: {} events in {:.1} ms ({:.0} events/s) -> {}",
        report.total_events(),
        report.total_wall_ms(),
        report.events_per_sec(),
        out_path.display()
    );
    print!("{json}");
}
