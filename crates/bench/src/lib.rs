//! Shared harness support for the figure/table reproduction benches.
//!
//! Every bench target prints its figure's series as an aligned table on
//! stdout and writes `target/experiments/<id>.csv` so results can be
//! plotted. Working-set sizes are scaled down from the paper's tens of
//! gigabytes to tens-to-hundreds of megabytes (DESIGN.md §1: far-memory
//! behaviour is scale-invariant in the pattern and the compute/access
//! ratio); thread counts and offload ratios match the paper.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

pub mod hotloop;
pub mod scale_bench;

/// Collects one experiment's rows and emits table + CSV.
pub struct Experiment {
    id: &'static str,
    title: &'static str,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Experiment {
    /// Starts an experiment with CSV column headers.
    pub fn new(id: &'static str, title: &'static str, columns: &[&str]) -> Self {
        println!("\n=== {id}: {title} ===");
        Experiment {
            id,
            title,
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row of cells (already formatted).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table and writes the CSV; returns the CSV path.
    pub fn finish(&self) -> PathBuf {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.columns));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }

        let dir =
            PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
                .join("experiments");
        fs::create_dir_all(&dir).expect("create experiments dir");
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "# {}: {}", self.id, self.title).expect("write csv");
        writeln!(f, "{}", self.columns.join(",")).expect("write csv");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write csv");
        }
        println!("-> {}", path.display());
        path
    }
}

/// Standard scaled-down experiment sizes (pages).
pub mod scale {
    /// Working set for app-level figures (~190 MiB).
    pub const APP_WSS: u64 = 49_152;
    /// Working set for fault-storm microbenchmarks (~470 MiB).
    pub const STORM_WSS: u64 = 120_000;
    /// Per-thread ops for app-level figures.
    pub const APP_OPS: u64 = 4_000;
    /// Paper thread count for throughput figures.
    pub const THREADS: usize = 48;
    /// Paper thread count for latency figures (single socket).
    pub const LAT_THREADS: usize = 24;
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_roundtrip() {
        let mut e = Experiment::new("selftest", "self test", &["a", "b"]);
        e.row(vec!["1".into(), "2".into()]);
        let path = e.finish();
        let content = std::fs::read_to_string(path).expect("csv readable");
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut e = Experiment::new("selftest2", "x", &["a", "b"]);
        e.row(vec!["1".into()]);
    }
}
