//! Seeded differential fuzz of [`ReplicatedBackend`] against a linear
//! shadow model, in the style of `accounting/tests/fuzz_s3fifo.rs`.
//!
//! Two layers are pinned:
//!
//! * The **replica table** — with the background repair task parked, the
//!   only thing that moves replica states is the op stream itself, so a
//!   plain `BTreeMap` shadow re-derives every answer from first
//!   principles: which node each replica homes on, which node is inside
//!   its (disjoint, aligned) outage window at post time, and therefore
//!   the exact `[ReplicaState; 2]` after every alloc / mirrored
//!   writeback, the exact routing and outcome of every read, and the
//!   exact presence of a failover candidate. The shadow also pins
//!   conservation: `replica_states` is `Some` for exactly the allocated
//!   slots (direct mapping keeps released slots tracked), and
//!   `degraded_pages` equals the shadow's count.
//! * The **crash monitor / repair task** — with the monitor live, exact
//!   state prediction would need its poll phase, so the second fuzz pins
//!   the machine's laws instead: writes still land exactly as posted
//!   (the simulator is single-threaded, so nothing runs between post and
//!   check), a failed read always has a failover candidate whenever a
//!   synced replica sits on a reachable node, every page keeps at least
//!   one live (Synced/Rebuilding) replica through three full outage
//!   cycles, `illegal_transitions` stays zero, and at a quiescent point
//!   between outages the repair task has converged every page back to
//!   `[Synced, Synced]`.
//!
//! Everything is seeded [`SplitMix64`], so a failure reproduces
//! bit-for-bit from the printed seed and step.

use std::collections::BTreeMap;
use std::rc::Rc;

use mage::{
    FarBackend, RdmaBackend, ReplicaState, ReplicatedBackend, ReplicationConfig, SystemConfig,
};
use mage_fabric::{FaultInjector, FaultPlan, NodeId};
use mage_mmu::PAGE_SIZE;
use mage_sim::rng::SplitMix64;
use mage_sim::time::SimTime;
use mage_sim::Simulation;

const SEEDS: [u64; 4] = [1, 42, 0xDEAD_BEEF, 0x5EED_5EED_5EED_5EED];

/// Slot universe: small enough that ops constantly revisit pages across
/// outage windows.
const SLOTS: u64 = 96;
const NODES: usize = 2;
const PERIOD_NS: u64 = 400_000;
const DURATION_NS: u64 = 40_000;

fn plans(seed: u64) -> Vec<FaultPlan> {
    (0..NODES)
        .map(|i| FaultPlan::staggered_node_crash(seed ^ 0xFA17, i, NODES, PERIOD_NS, DURATION_NS))
        .collect()
}

/// Independent reachability oracle: fresh injectors over the same plans.
/// `node_down` is pure in (seed, now) for aligned plans, so these agree
/// with the NIC's injectors without sharing any state with them.
struct NodeOracle {
    injectors: Vec<FaultInjector>,
}

impl NodeOracle {
    fn new(seed: u64) -> Self {
        NodeOracle {
            injectors: plans(seed).into_iter().map(|p| FaultInjector::new(p, 0)).collect(),
        }
    }

    fn down(&self, node: NodeId, now: SimTime) -> bool {
        self.injectors[node.0 as usize].node_down(now)
    }
}

/// Home node of replica `slot` of page `rpn` — mirrors the backend's
/// placement rule (primaries spread across nodes, backup on the next).
fn home(rpn: u64, slot: usize) -> NodeId {
    NodeId(((rpn + slot as u64) % NODES as u64) as u32)
}

/// Builds a replicated backend over direct-mapped RDMA with per-node
/// crash plans. `repair_poll_ns` huge parks the monitor for the exact
/// differential; small makes it live for the laws fuzz.
fn replicated(sim: &Simulation, seed: u64, repair_poll_ns: u64) -> Rc<ReplicatedBackend> {
    let cfg = SystemConfig::mage_lib().with_node_faults(plans(seed));
    let inner = Box::new(RdmaBackend::new(sim.handle(), &cfg, 1_024));
    Rc::new(ReplicatedBackend::new(
        sim.handle(),
        inner,
        ReplicationConfig {
            nodes: NODES,
            repair_poll_ns,
        },
        false,
    ))
}

/// With the repair task parked, a linear shadow predicts every replica
/// state, every read route and outcome, and every failover answer.
#[test]
fn replicated_backend_matches_linear_shadow() {
    for seed in SEEDS {
        let sim = Simulation::new();
        // Poll far beyond the fuzz horizon: the monitor stays parked and
        // the op stream is the only writer of replica states.
        let be = replicated(&sim, seed, 1 << 40);
        let oracle = NodeOracle::new(seed);
        let b = Rc::clone(&be);
        let h = sim.handle();
        sim.block_on(async move {
            let rng = SplitMix64::new(seed);
            let mut shadow: BTreeMap<u64, [ReplicaState; 2]> = BTreeMap::new();
            for step in 0..600u64 {
                let now = h.now();
                let pick = |shadow: &BTreeMap<u64, [ReplicaState; 2]>| -> u64 {
                    let keys: Vec<u64> = shadow.keys().copied().collect();
                    keys[rng.next_below(keys.len() as u64) as usize]
                };
                let op = if shadow.is_empty() { 0 } else { rng.next_below(8) };
                match op {
                    // Allocate (direct mapping: the slot IS the rpn).
                    0..=1 => {
                        let rpn = rng.next_below(SLOTS);
                        let got = b.alloc_slot(rpn).await;
                        assert_eq!(
                            got,
                            Some(rpn),
                            "seed {seed} step {step}: direct-mapped slot identity"
                        );
                        // Fresh slots start fully degraded; re-allocating a
                        // tracked slot keeps its states.
                        shadow
                            .entry(rpn)
                            .or_insert([ReplicaState::Degraded, ReplicaState::Degraded]);
                    }
                    // Mirrored writeback: per-slot fate decided at post time
                    // by the home node's reachability.
                    2..=4 => {
                        let rpn = pick(&shadow);
                        let oks =
                            [!oracle.down(home(rpn, 0), now), !oracle.down(home(rpn, 1), now)];
                        let c = b.write_page_at(rpn, PAGE_SIZE);
                        assert_eq!(
                            c.outcome().is_ok(),
                            oks[0] || oks[1],
                            "seed {seed} step {step}: merged write outcome for {rpn}"
                        );
                        let entry = shadow.get_mut(&rpn).unwrap();
                        for (slot, ok) in oks.iter().enumerate() {
                            entry[slot] = if *ok {
                                ReplicaState::Synced
                            } else {
                                ReplicaState::Degraded
                            };
                        }
                        // States move at post time, before any await.
                        assert_eq!(
                            b.replica_states(rpn),
                            Some(*entry),
                            "seed {seed} step {step}: post-write states for {rpn}"
                        );
                        let _ = c.await;
                    }
                    // Read: routes to the first synced replica (primary when
                    // none), succeeds iff that home is up; a failed read has
                    // a failover candidate iff a synced replica sits on a
                    // reachable node.
                    5 => {
                        let rpn = pick(&shadow);
                        let s = shadow[&rpn];
                        let route = (0..2).find(|&i| s[i] == ReplicaState::Synced).unwrap_or(0);
                        let expect_ok = !oracle.down(home(rpn, route), now);
                        let c = b.read_page_at(rpn, PAGE_SIZE);
                        assert_eq!(
                            c.outcome().is_ok(),
                            expect_ok,
                            "seed {seed} step {step}: read outcome for {rpn} via slot {route}"
                        );
                        if !expect_ok {
                            let alt = (0..2).find(|&i| {
                                s[i] == ReplicaState::Synced && !oracle.down(home(rpn, i), now)
                            });
                            match b.failover_read(rpn, PAGE_SIZE) {
                                Some(f) => {
                                    assert!(
                                        alt.is_some(),
                                        "seed {seed} step {step}: phantom failover for {rpn}"
                                    );
                                    assert!(
                                        f.await.is_ok(),
                                        "seed {seed} step {step}: failover read failed for {rpn}"
                                    );
                                }
                                None => assert!(
                                    alt.is_none(),
                                    "seed {seed} step {step}: missed failover for {rpn} (slot {})",
                                    alt.unwrap()
                                ),
                            }
                        }
                        let _ = c.await;
                    }
                    // Release: direct mapping keeps the slot (and its
                    // replicas) reserved — conservation, not teardown.
                    6 => {
                        let rpn = pick(&shadow);
                        b.release_slot(rpn).await;
                        assert!(
                            b.replica_states(rpn).is_some(),
                            "seed {seed} step {step}: released direct slot {rpn} untracked"
                        );
                    }
                    // Let virtual time cross outage boundaries.
                    _ => h.sleep(rng.next_below(25_000) + 1).await,
                }
                // Conservation + exactness crosschecks.
                assert_eq!(
                    b.replication_stats().unwrap().illegal_transitions.get(),
                    0,
                    "seed {seed} step {step}: illegal replica transition"
                );
                if step % 64 == 0 || step == 599 {
                    for rpn in 0..SLOTS {
                        assert_eq!(
                            b.replica_states(rpn),
                            shadow.get(&rpn).copied(),
                            "seed {seed} step {step}: replica states drifted for {rpn}"
                        );
                    }
                    let degraded = shadow
                        .values()
                        .filter(|s| s.contains(&ReplicaState::Degraded))
                        .count() as u64;
                    assert_eq!(
                        b.degraded_pages(),
                        degraded,
                        "seed {seed} step {step}: degraded gauge drifted"
                    );
                }
            }
            b.shutdown();
        });
    }
}

/// With the monitor live, exact timing is its business — the fuzz pins
/// the laws instead: post-time write exactness, failover availability,
/// the ≥ 1-live-replica invariant, state-machine legality, and repair
/// convergence at a quiescent point.
#[test]
fn live_monitor_upholds_replica_laws() {
    for seed in SEEDS {
        let sim = Simulation::new();
        let be = replicated(&sim, seed, 10_000);
        let oracle = NodeOracle::new(seed);
        let b = Rc::clone(&be);
        let h = sim.handle();
        sim.block_on(async move {
            let rng = SplitMix64::new(seed ^ 0xB0B);
            // Setup-time seeding is wire-free and fully synced.
            for rpn in 0..48u64 {
                assert_eq!(b.seed_slot(rpn), Some(rpn), "seed {seed}: seeding slot {rpn}");
                assert_eq!(
                    b.replica_states(rpn),
                    Some([ReplicaState::Synced, ReplicaState::Synced]),
                    "seed {seed}: seeded slot {rpn} not synced"
                );
            }
            // ~3 full outage cycles of mixed traffic.
            for step in 0..240u64 {
                h.sleep(rng.next_below(12_000) + 500).await;
                let now = h.now();
                let rpn = rng.next_below(48);
                match rng.next_below(4) {
                    0..=1 => {
                        let oks =
                            [!oracle.down(home(rpn, 0), now), !oracle.down(home(rpn, 1), now)];
                        let c = b.write_page_at(rpn, PAGE_SIZE);
                        assert_eq!(
                            c.outcome().is_ok(),
                            oks[0] || oks[1],
                            "seed {seed} step {step}: merged write outcome for {rpn}"
                        );
                        // Single-threaded simulator: nothing (monitor
                        // included) ran between post and this check.
                        let s = b.replica_states(rpn).unwrap();
                        for (slot, ok) in oks.iter().enumerate() {
                            let want = if *ok {
                                ReplicaState::Synced
                            } else {
                                ReplicaState::Degraded
                            };
                            assert_eq!(
                                s[slot], want,
                                "seed {seed} step {step}: write left {rpn} slot {slot} wrong"
                            );
                        }
                        let _ = c.await;
                    }
                    _ => {
                        let c = b.read_page_at(rpn, PAGE_SIZE);
                        if c.outcome().is_err() {
                            // A synced replica on a reachable node must be
                            // offered for failover, and must deliver.
                            let s = b.replica_states(rpn).unwrap();
                            let alt = (0..2).find(|&i| {
                                s[i] == ReplicaState::Synced && !oracle.down(home(rpn, i), now)
                            });
                            match b.failover_read(rpn, PAGE_SIZE) {
                                Some(f) => assert!(
                                    f.await.is_ok(),
                                    "seed {seed} step {step}: failover read failed for {rpn}"
                                ),
                                None => assert!(
                                    alt.is_none(),
                                    "seed {seed} step {step}: missed failover for {rpn}"
                                ),
                            }
                        }
                        let _ = c.await;
                    }
                }
                let stats = b.replication_stats().unwrap();
                assert_eq!(
                    stats.illegal_transitions.get(),
                    0,
                    "seed {seed} step {step}: illegal replica transition"
                );
                // The crash-consistency core: staggered outages plus batch
                // repair keep one live replica per page at every instant.
                for rpn in 0..48u64 {
                    let s = b.replica_states(rpn).unwrap();
                    assert!(
                        s.iter().any(|st| matches!(
                            st,
                            ReplicaState::Synced | ReplicaState::Rebuilding
                        )),
                        "seed {seed} step {step}: page {rpn} lost all live replicas ({s:?})"
                    );
                }
            }
            // Quiescent point: mid-way through the calm stretch of the next
            // epoch (outages occupy [0, 40k) and [200k, 240k) of each
            // 400k-ns period), several polls after the last recovery.
            let now = h.now().as_nanos();
            let target = (now / PERIOD_NS + 1) * PERIOD_NS + 300_000;
            h.sleep(target - now).await;
            let stats = b.replication_stats().unwrap();
            assert!(
                stats.rereplicated_pages.get() > 0,
                "seed {seed}: monitor never repaired anything"
            );
            assert!(
                stats.degraded_marks.get() > 0,
                "seed {seed}: outages never degraded anything"
            );
            assert_eq!(stats.illegal_transitions.get(), 0, "seed {seed}");
            assert_eq!(
                b.degraded_pages(),
                0,
                "seed {seed}: repair did not converge between outages"
            );
            for rpn in 0..48u64 {
                assert_eq!(
                    b.replica_states(rpn),
                    Some([ReplicaState::Synced, ReplicaState::Synced]),
                    "seed {seed}: page {rpn} not fully re-replicated at quiescence"
                );
            }
            b.shutdown();
        });
    }
}
