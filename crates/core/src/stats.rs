//! Engine-level instrumentation: fault latencies, per-component
//! breakdowns (Figs. 6 and 16), and eviction-path counters.

use std::cell::RefCell;

use mage_sim::stats::{Counter, Histogram, TimeStat};
use mage_sim::time::Nanos;

/// Per-fault component times, matching the paper's breakdown categories
/// (Fig. 6 / Fig. 16): RDMA read, TLB flushes (from synchronous eviction),
/// page accounting, memory circulation (allocation + swap slots), and
/// "others" (fault entry, page-table manipulation, VMA locks, waiting for
/// free pages).
#[derive(Default)]
pub struct FaultBreakdown {
    /// RDMA read wait.
    pub rdma: RefCell<TimeStat>,
    /// TLB shootdown time spent *inside the fault path* (synchronous
    /// eviction only; zero for MAGE by construction).
    pub tlb: RefCell<TimeStat>,
    /// Page-accounting operations.
    pub accounting: RefCell<TimeStat>,
    /// Memory circulation: local frame allocation + remote slot ops +
    /// waiting for free pages.
    pub circulation: RefCell<TimeStat>,
    /// Everything else (entry, walks, PTE updates, VMA locks).
    pub other: RefCell<TimeStat>,
}

impl FaultBreakdown {
    /// Mean of one component in ns.
    pub fn means(&self) -> BreakdownMeans {
        BreakdownMeans {
            rdma: self.rdma.borrow().mean(),
            tlb: self.tlb.borrow().mean(),
            accounting: self.accounting.borrow().mean(),
            circulation: self.circulation.borrow().mean(),
            other: self.other.borrow().mean(),
        }
    }
}

/// Snapshot of mean per-fault component latencies (ns).
#[derive(Clone, Copy, Debug, Default)]
pub struct BreakdownMeans {
    /// Mean RDMA read wait.
    pub rdma: f64,
    /// Mean in-fault TLB shootdown time.
    pub tlb: f64,
    /// Mean accounting time.
    pub accounting: f64,
    /// Mean circulation (allocation) time.
    pub circulation: f64,
    /// Mean residual time.
    pub other: f64,
}

impl BreakdownMeans {
    /// Sum of all components (≈ mean fault latency).
    pub fn total(&self) -> f64 {
        self.rdma + self.tlb + self.accounting + self.circulation + self.other
    }
}

/// All counters and distributions exposed by a running engine.
#[derive(Default)]
pub struct EngineStats {
    /// Total page accesses.
    pub accesses: Counter,
    /// TLB hits.
    pub tlb_hits: Counter,
    /// Hardware walks that found a present PTE (no OS fault).
    pub minor_walks: Counter,
    /// Major faults (page fetched from far memory or first touch).
    pub major_faults: Counter,
    /// Major faults that found the page mid-eviction or mid-fault and had
    /// to wait on the page lock.
    pub page_lock_waits: Counter,
    /// End-to-end major-fault latency, ns.
    pub fault_latency: Histogram,
    /// Per-component fault breakdown.
    pub breakdown: FaultBreakdown,
    /// Synchronous evictions performed by faulting threads.
    pub sync_evictions: Counter,
    /// Pages evicted by background evictors.
    pub evicted_pages: Counter,
    /// Pages evicted synchronously on the fault path.
    pub sync_evicted_pages: Counter,
    /// Dirty pages written back.
    pub writebacks: Counter,
    /// Clean pages reclaimed without a write.
    pub clean_reclaims: Counter,
    /// Eviction batches completed.
    pub eviction_batches: Counter,
    /// Time faulting threads spent waiting for free pages, ns.
    pub free_wait: RefCell<TimeStat>,
    /// Pages unmapped by the eviction machinery (each later settles as
    /// exactly one of `evicted_pages`, `sync_evicted_pages` or
    /// `evict_cancelled_pages`).
    pub unmapped_pages: Counter,
    /// Faults that cancelled an in-flight eviction of the same page
    /// (swap-cache-refault semantics).
    pub evict_cancels: Counter,
    /// Eviction-batch pages skipped at reclaim because a refault
    /// cancelled them.
    pub evict_cancelled_pages: Counter,
    /// Pages prefetched by readahead.
    pub prefetches: Counter,
    /// Accesses that hit a page while its prefetch was still in flight.
    pub prefetch_inflight_hits: Counter,
    /// Transfer attempts re-posted after a transport error or timeout.
    pub transfer_retries: Counter,
    /// Transfers that stayed failed after exhausting every retry.
    pub transfer_failures: Counter,
    /// Major faults aborted because the fault-in read exhausted retries
    /// (surfaced as [`Access::Failed`](crate::machine::Access), never as
    /// a major fault).
    pub aborted_faults: Counter,
    /// Eviction victims re-inserted as resident because their writeback
    /// exhausted retries (the remote copy never became durable).
    pub requeued_victims: Counter,
    /// Reads served from a surviving replica after the primary's node
    /// went unreachable (replicated backends only; zero otherwise).
    pub failover_reads: Counter,
    /// First failure → eventual success latency of recovered transfers, ns.
    pub retry_latency: Histogram,
    /// Major faults whose page still sat on the accounting ghost list of
    /// recently evicted pages — i.e. pages evicted too early. The
    /// numerator of the ablation sweep's re-fault rate.
    pub re_faults: Counter,
    /// All residency inserts that hit the ghost list, including eviction
    /// cancels and requeued victims (a superset of `re_faults`).
    pub ghost_hits: Counter,
}

impl EngineStats {
    // `reset()` is gone: destructive resets only cleared the stats this
    // struct owns — NIC and IPI counters kept their warmup samples, which
    // is exactly the bug class measurement windows remove. Take a
    // `MetricsSnapshot` via `FarMemory::metrics` and compute a window.

    /// Records a major fault's total latency and residual component.
    pub fn record_fault(&self, total: Nanos, accounted: Nanos) {
        self.major_faults.inc();
        self.fault_latency.record(total);
        self.breakdown
            .other
            .borrow_mut()
            .record(total.saturating_sub(accounted));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_means_sum() {
        let s = EngineStats::default();
        s.breakdown.rdma.borrow_mut().record(3_900);
        s.breakdown.circulation.borrow_mut().record(100);
        s.record_fault(5_000, 4_000);
        let m = s.breakdown.means();
        assert!((m.rdma - 3_900.0).abs() < 1e-9);
        assert!((m.other - 1_000.0).abs() < 1e-9);
        assert!((m.total() - 5_000.0).abs() < 1e-9);
        assert_eq!(s.major_faults.get(), 1);
    }

    #[test]
    fn residual_saturates() {
        let s = EngineStats::default();
        // Accounted more than total (overlapping waits): residual is 0,
        // not an underflow.
        s.record_fault(100, 500);
        assert_eq!(s.breakdown.other.borrow().max(), 0);
    }
}
