//! The eviction path: sequential batches, synchronous fallback, and
//! MAGE's cross-batch pipelined evictor.
//!
//! The eviction of one batch follows the seven steps of §4.1:
//!
//! 1. slice a batch from the accounting lists, allocate remote slots and
//!    unmap the pages (`scan_and_unmap`),
//! 2. initiate the TLB-flush IPIs and move the batch to the **TLB staging
//!    buffer** (TSB),
//! 3. wait for flush completion,
//! 4. move flushed dirty pages to a local buffer,
//! 5. initiate RDMA writes and move the batch to the **RDMA staging
//!    buffer** (RSB),
//! 6. wait for write completion,
//! 7. reclaim the frames (`finalize_batch`).
//!
//! The **sequential** evictor (Hermit/DiLOS) performs 1–7 for one batch
//! before starting the next. The **pipelined** evictor (MAGE, P2) uses
//! the waiting periods of steps 3 and 6 to advance other batches: up to
//! three batches are in flight, and the evictor's event loop harvests
//! whichever stage completed first.
//!
//! Safety invariant (checked in debug builds): a frame is reclaimed only
//! after every core's TLB entry for the page is gone *and* the page's
//! remote copy is durable.

use std::collections::VecDeque;
use std::rc::Rc;

use mage_fabric::Completion;
use mage_mmu::{CoreId, FlushTicket, Pte, PAGE_SIZE};
use mage_sim::time::Nanos;

use crate::engine::FarMemory;

/// One page moving through the eviction pipeline.
pub(crate) struct EvictPage {
    vpn: u64,
    frame: u64,
    dirty: bool,
    /// Generation tag matching this page's entry in `FarMemory::evicting`.
    gen: u64,
}

/// Timing contributions of one (possibly synchronous) eviction batch.
pub(crate) struct EvictOutcome {
    /// Pages evicted.
    pub pages: usize,
    /// Time spent waiting on the TLB shootdown.
    pub tlb_ns: Nanos,
    /// Time spent in accounting scans.
    pub acct_ns: Nanos,
}

/// In-flight state of a pipelined evictor: the TSB and RSB of §4.1.
pub(crate) struct Pipeline {
    /// Batches whose shootdown is in flight (TLB staging buffer).
    tsb: VecDeque<(Vec<EvictPage>, FlushTicket)>,
    /// Batches whose RDMA writes are in flight (RDMA staging buffer).
    rsb: VecDeque<(Vec<EvictPage>, Option<Completion>)>,
}

impl Pipeline {
    pub(crate) fn new() -> Self {
        Pipeline {
            tsb: VecDeque::new(),
            rsb: VecDeque::new(),
        }
    }

    fn depth(&self) -> usize {
        self.tsb.len() + self.rsb.len()
    }

    /// Pages currently unmapped but not yet reclaimed.
    fn in_flight_pages(&self) -> usize {
        self.tsb.iter().map(|(b, _)| b.len()).sum::<usize>()
            + self.rsb.iter().map(|(b, _)| b.len()).sum::<usize>()
    }
}

impl FarMemory {
    /// Background evictor thread `id`. Only the first
    /// `active_evictors` threads do work (feedback-directed scaling).
    pub(crate) async fn evictor_main(self: Rc<Self>, id: usize) {
        let core = self.evictor_cores[id % self.evictor_cores.len()];
        let mut round = id; // staggered start (§4.2.2)
        let mut pipe = Pipeline::new();
        loop {
            if self.stop_flag.get() {
                break;
            }
            if id >= self.active_evictors.get() {
                self.sim.sleep(100_000).await;
                continue;
            }
            let deficit = self.alloc.free_frames() < self.high_watermark;
            if self.cfg.pipelined_eviction {
                let progressed = self
                    .pipeline_step(core, id, &mut round, &mut pipe, deficit)
                    .await;
                if !progressed {
                    self.sim.sleep(10_000).await;
                }
            } else {
                if !deficit {
                    self.sim.sleep(10_000).await;
                    continue;
                }
                let outcome = self
                    .evict_batch(core, id, round, self.cfg.eviction_batch, false)
                    .await;
                round += 1;
                if outcome.pages == 0 {
                    self.sim.sleep(10_000).await;
                }
            }
        }
    }

    /// Hermit's feedback-directed controller: doubles the evictor pool
    /// when free pages run low, halves it when pressure subsides.
    pub(crate) async fn scaling_controller(self: Rc<Self>) {
        loop {
            if self.stop_flag.get() {
                break;
            }
            self.sim.sleep(100_000).await;
            let free = self.alloc.free_frames();
            let active = self.active_evictors.get();
            if free < self.low_watermark && active < self.cfg.max_evictors {
                self.active_evictors
                    .set((active * 2).min(self.cfg.max_evictors));
            } else if free > self.high_watermark && active > self.cfg.evictors {
                self.active_evictors
                    .set((active / 2).max(self.cfg.evictors));
            }
        }
    }

    /// Whether the page was accessed since the last scan; clears the bit
    /// (the second-chance test of `EP₁`).
    fn page_is_hot(&self, vpn: u64) -> bool {
        let old = self.pt.update(vpn, |p| p.with_accessed(false));
        old.accessed()
    }

    /// Steps ① of §4.1: select victims, allocate remote slots, unmap.
    ///
    /// Returns the unmapped batch; pages are left `remote + locked` so
    /// concurrent faults wait until the writeback is durable.
    async fn scan_and_unmap(
        &self,
        evictor_id: usize,
        round: usize,
        want: usize,
    ) -> (Vec<EvictPage>, Nanos) {
        let t0 = self.sim.now();
        let mut victims = Vec::new();
        self.acct
            .take_victims(
                evictor_id,
                round,
                want,
                &|vpn| self.page_is_hot(vpn),
                &mut victims,
            )
            .await;
        let acct_ns = self.sim.now().saturating_since(t0);
        let mut batch = Vec::with_capacity(victims.len());
        let unmap_cost = self.cfg.costs.os.pte_update_ns
            + self.cfg.costs.os.rmap_cgroup_ns
            + self.cfg.costs.os.swapcache_ns;
        for vpn in victims {
            let pte = self.pt.get(vpn);
            if !pte.is_present() || pte.locked() {
                continue; // raced with an unmap or an in-flight fault
            }
            let direct_rpn = {
                let asp = self.asp.borrow();
                match asp.find(vpn) {
                    Some(vma) => vma.remote_page(vpn),
                    None => continue,
                }
            };
            self.sim.sleep(unmap_cost).await;
            let rpn = match self.remote.alloc_for(direct_rpn).await {
                Some(r) => r,
                None => continue, // far memory exhausted; skip the page
            };
            let frame = pte.payload();
            let dirty = pte.dirty();
            self.pt.set(vpn, Pte::remote(rpn).with_locked(true));
            let gen = self.evict_gen.get();
            self.evict_gen.set(gen + 1);
            self.evicting.borrow_mut().insert(vpn, (frame, gen));
            batch.push(EvictPage {
                vpn,
                frame,
                dirty,
                gen,
            });
        }
        (batch, acct_ns)
    }

    /// Steps ②–③ initiation: send the batched shootdown IPIs.
    async fn send_shootdown(&self, core: CoreId, batch: &[EvictPage]) -> FlushTicket {
        let vpns: Vec<u64> = batch.iter().map(|p| p.vpn).collect();
        self.ic.send_flush(core, &self.app_cores, &vpns).await
    }

    /// Steps ④–⑤: post the RDMA writebacks for flushed pages.
    ///
    /// Clean pages whose remote copy is still valid (direct mapping) skip
    /// the write; under a swap allocator the slot is fresh, so every page
    /// is written.
    async fn post_writebacks(&self, batch: &[EvictPage]) -> Option<Completion> {
        let must_write_clean = self.remote.is_synchronized();
        let mut last = None;
        let mut wrote = 0u64;
        for page in batch {
            if page.dirty || must_write_clean {
                last = Some(self.nic.post_write(PAGE_SIZE));
                wrote += 1;
            } else {
                self.stats.clean_reclaims.inc();
            }
        }
        if wrote > 0 {
            // Doorbell-batched posting cost for the whole group.
            self.sim
                .sleep(
                    self.cfg.costs.os.rdma_post_cpu_ns
                        + self.cfg.costs.evict_post_per_page_ns * (wrote - 1),
                )
                .await;
            self.stats.writebacks.add(wrote);
        }
        last
    }

    /// Step ⑦: reclaim the frames, release the page locks and wake both
    /// page waiters and threads stalled on the free list.
    async fn finalize_batch(&self, core: CoreId, batch: &[EvictPage], sync: bool) {
        let mut frames = Vec::with_capacity(batch.len());
        for page in batch {
            // A concurrent refault may have cancelled this page's
            // eviction and reclaimed the frame — and the page may even be
            // mid-eviction again under a *newer* batch. Only the batch
            // whose generation still owns the entry may reclaim.
            {
                let mut evicting = self.evicting.borrow_mut();
                match evicting.get(&page.vpn) {
                    Some(&(_, gen)) if gen == page.gen => {
                        evicting.remove(&page.vpn);
                    }
                    _ => {
                        self.stats.evict_cancelled_pages.inc();
                        continue;
                    }
                }
            }
            #[cfg(debug_assertions)]
            for c in self.topo.cores() {
                debug_assert!(
                    !self.ic.tlb(c).translates(page.vpn),
                    "frame reclaim with live translation: vpn {:#x} core {c:?}",
                    page.vpn
                );
            }
            self.pt.update(page.vpn, |p| p.with_locked(false));
            self.wake_page(page.vpn);
            frames.push(page.frame);
        }
        self.alloc.free_batch(core.index(), &frames).await;
        self.free_waiters.wake_all();
        self.stats.eviction_batches.inc();
        if sync {
            self.stats.sync_evicted_pages.add(batch.len() as u64);
        } else {
            self.stats.evicted_pages.add(batch.len() as u64);
        }
    }

    /// Force-evicts the given present pages (an `madvise(MADV_PAGEOUT)`
    /// analogue, the mechanism the paper's §3.2 microbenchmarks use to
    /// pre-evict pages). Runs the full unmap → shootdown → writeback →
    /// reclaim sequence synchronously on the calling core and returns the
    /// number of pages actually paged out.
    pub async fn pageout(&self, core: CoreId, vpns: &[u64]) -> usize {
        let unmap_cost = self.cfg.costs.os.pte_update_ns
            + self.cfg.costs.os.rmap_cgroup_ns
            + self.cfg.costs.os.swapcache_ns;
        let mut batch = Vec::new();
        for &vpn in vpns {
            let pte = self.pt.get(vpn);
            if !pte.is_present() || pte.locked() {
                continue;
            }
            let direct_rpn = {
                let asp = self.asp.borrow();
                match asp.find(vpn) {
                    Some(vma) => vma.remote_page(vpn),
                    None => continue,
                }
            };
            self.sim.sleep(unmap_cost).await;
            let Some(rpn) = self.remote.alloc_for(direct_rpn).await else {
                continue;
            };
            let frame = pte.payload();
            let dirty = pte.dirty();
            self.pt.set(vpn, Pte::remote(rpn).with_locked(true));
            let gen = self.evict_gen.get();
            self.evict_gen.set(gen + 1);
            self.evicting.borrow_mut().insert(vpn, (frame, gen));
            batch.push(EvictPage {
                vpn,
                frame,
                dirty,
                gen,
            });
        }
        if batch.is_empty() {
            return 0;
        }
        let ticket = self.send_shootdown(core, &batch).await;
        ticket.wait().await;
        if let Some(completion) = self.post_writebacks(&batch).await {
            completion.await;
        }
        self.finalize_batch(core, &batch, false).await;
        batch.len()
    }

    /// A full sequential eviction batch (steps ①–⑦ with blocking waits).
    ///
    /// Used by the background evictors of non-pipelined systems and by
    /// the synchronous-eviction fallback on the fault path (`sync`).
    pub(crate) async fn evict_batch(
        &self,
        core: CoreId,
        evictor_id: usize,
        round: usize,
        want: usize,
        sync: bool,
    ) -> EvictOutcome {
        if sync {
            self.stats.sync_evictions.inc();
        }
        let (batch, acct_ns) = self.scan_and_unmap(evictor_id, round, want).await;
        if batch.is_empty() {
            return EvictOutcome {
                pages: 0,
                tlb_ns: 0,
                acct_ns,
            };
        }
        let t_tlb = self.sim.now();
        let ticket = self.send_shootdown(core, &batch).await;
        ticket.wait().await;
        let tlb_ns = self.sim.now().saturating_since(t_tlb);
        if let Some(completion) = self.post_writebacks(&batch).await {
            completion.await;
        }
        self.finalize_batch(core, &batch, sync).await;
        EvictOutcome {
            pages: batch.len(),
            tlb_ns,
            acct_ns,
        }
    }

    /// One event-loop step of the pipelined evictor. Returns whether any
    /// stage made progress (if not, the caller idles briefly).
    pub(crate) async fn pipeline_step(
        &self,
        core: CoreId,
        evictor_id: usize,
        round: &mut usize,
        pipe: &mut Pipeline,
        deficit: bool,
    ) -> bool {
        let now = self.sim.now();
        let mut progressed = false;

        // Step ⑦: harvest write-complete batches from the RSB.
        while pipe
            .rsb
            .front()
            .is_some_and(|(_, c)| c.as_ref().is_none_or(|c| c.completes_at() <= now))
        {
            let (batch, _) = pipe.rsb.pop_front().expect("checked non-empty");
            self.finalize_batch(core, &batch, false).await;
            progressed = true;
        }

        // Steps ④–⑤: move TLB-acked batches from the TSB to the RSB.
        while pipe.tsb.front().is_some_and(|(_, t)| t.done_at() <= now) {
            let (batch, _) = pipe.tsb.pop_front().expect("checked non-empty");
            let completion = self.post_writebacks(&batch).await;
            pipe.rsb.push_back((batch, completion));
            progressed = true;
        }

        // Steps ①–②: start a fresh batch while there is memory pressure
        // and pipeline capacity (three batches in flight, §4.1). Pace the
        // refill to the actual free-page deficit: firing the whole
        // pipeline the instant the watermark is crossed produces periodic
        // IPI storms that needlessly spike application tail latency.
        let shortfall = self.high_watermark.saturating_sub(self.alloc.free_frames()) as usize;
        if deficit && pipe.depth() < 3 && pipe.in_flight_pages() < shortfall {
            let (batch, _acct) = self
                .scan_and_unmap(evictor_id, *round, self.cfg.eviction_batch)
                .await;
            *round += 1;
            if !batch.is_empty() {
                let ticket = self.send_shootdown(core, &batch).await;
                pipe.tsb.push_back((batch, ticket));
                progressed = true;
            }
        }

        if !progressed {
            // Steps ③/⑥: sleep until the earliest in-flight completion
            // instead of spinning.
            let next_tlb = pipe.tsb.front().map(|(_, t)| t.done_at());
            let next_rdma = pipe
                .rsb
                .front()
                .and_then(|(_, c)| c.as_ref().map(|c| c.completes_at()));
            let next = match (next_tlb, next_rdma) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if let Some(t) = next {
                self.sim.sleep_until(t).await;
                return true;
            }
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use mage_mmu::{CoreId, Topology};
    use mage_sim::Simulation;

    use crate::engine::{Access, FarMemory, MachineParams};
    use crate::SystemConfig;

    fn rig(cfg: SystemConfig, local_pages: u64) -> (Simulation, Rc<FarMemory>, mage_mmu::Vma) {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages,
            remote_pages: 8_192,
            tlb_entries: 128,
            seed: 11,
        };
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(2_048);
        engine.populate(&vma);
        (sim, engine, vma)
    }

    #[test]
    fn refault_cancels_inflight_eviction() {
        let (sim, engine, vma) = rig(SystemConfig::mage_lib(), 512);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            let vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_present())
                .expect("local page");
            let frame = e.pt.get(vpn).payload();
            // Simulate the page being mid-eviction (unmapped, locked,
            // shootdown/writeback pending).
            e.pt.set(vpn, mage_mmu::Pte::remote(7).with_locked(true));
            e.evicting.borrow_mut().insert(vpn, (frame, 424242));
            let access = e.access(CoreId(0), vpn, false).await;
            assert!(matches!(access, Access::Major { .. }));
            assert_eq!(e.stats.evict_cancels.get(), 1);
            let pte = e.pt.get(vpn);
            assert!(pte.is_present(), "cancelled page must be re-mapped");
            assert_eq!(pte.payload(), frame, "same frame reclaimed");
            assert!(pte.dirty(), "remote copy may be stale => dirty");
            assert!(e.evicting.borrow().is_empty(), "cancel consumed the entry");
        });
    }

    #[test]
    fn stale_generation_is_not_reclaimed_by_old_batch() {
        // A cancelled-and-re-evicted page must only be finalized by the
        // batch that currently owns it (ABA protection).
        let (sim, engine, vma) = rig(SystemConfig::mage_lib(), 512);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            let vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_present())
                .expect("local page");
            let frame = e.pt.get(vpn).payload();
            e.pt.set(vpn, mage_mmu::Pte::remote(7).with_locked(true));
            // Newer generation owns the entry.
            e.evicting.borrow_mut().insert(vpn, (frame, 2));
            let old_batch = vec![super::EvictPage {
                vpn,
                frame,
                dirty: false,
                gen: 1,
            }];
            let free_before = e.alloc.free_frames();
            e.finalize_batch(CoreId(4), &old_batch, false).await;
            assert_eq!(
                e.alloc.free_frames(),
                free_before,
                "stale batch must not free the frame"
            );
            assert_eq!(e.stats.evict_cancelled_pages.get(), 1);
            assert!(e.pt.get(vpn).locked(), "newer owner's lock intact");
        });
    }

    #[test]
    fn hermit_scaling_controller_reacts_to_pressure() {
        let (sim, engine, vma) = rig(SystemConfig::hermit(), 512);
        assert_eq!(engine.active_evictors.get(), 4);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Hammer faults so free pages stay scarce for a while.
            for round in 0..3 {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, round == 0)
                        .await;
                }
            }
        });
        assert!(
            engine.active_evictors.get() > 4 || engine.stats.sync_evictions.get() > 0,
            "pressure must either scale evictors or trigger sync eviction"
        );
    }

    #[test]
    fn sequential_and_pipelined_agree_on_conservation() {
        for pipelined in [false, true] {
            let mut cfg = SystemConfig::mage_lib();
            cfg.pipelined_eviction = pipelined;
            let (sim, engine, vma) = rig(cfg, 512);
            let e = Rc::clone(&engine);
            sim.block_on(async move {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, i % 3 == 0)
                        .await;
                }
            });
            engine.shutdown();
            let resident = engine.acct.resident_pages();
            let free = engine.alloc.free_frames();
            assert!(resident + free <= 512, "pipelined={pipelined}: over-commit");
            assert!(engine.stats.evicted_pages.get() > 0);
        }
    }
}
