//! MAGE: scalable far memory balancing faults and evictions.
//!
//! A full Rust reproduction of the MAGE far-memory engine (SOSP 2025):
//! page-based remote memory with a fault-in path (`FP`) and an eviction
//! path (`EP`) built on three design principles —
//!
//! - **P1 — always-asynchronous decoupling**: eviction runs exclusively on
//!   a small pool of dedicated threads; the fault path never evicts
//!   synchronously and instead waits on the free-page supply the evictors
//!   maintain;
//! - **P2 — cross-batch pipelined eviction**: the waits for TLB-shootdown
//!   ACKs and RDMA-write completions of one batch are overlapped with the
//!   scan/unmap/post work of other batches (TSB/RSB staging buffers);
//! - **P3 — contention avoidance**: partitioned LRU lists, a multi-layer
//!   frame allocator, and VMA-direct remote mapping trade eviction
//!   accuracy for synchronization-free scaling.
//!
//! The baselines the paper compares against — Hermit (NSDI '23) and DiLOS
//! (EuroSys '23) — plus the analytic "ideal" system are configurations of
//! the same engine; see [`SystemConfig`].
//!
//! The engine runs on the deterministic virtual-time simulator from
//! `mage-sim`, with hardware substitutes from `mage-fabric` (RDMA),
//! `mage-mmu` (page tables, TLBs, IPIs) and `mage-palloc`/`mage-accounting`
//! (allocators, LRU structures). See `DESIGN.md` for the substitution
//! rationale.
//!
//! # Examples
//!
//! ```
//! use mage::{FarMemory, MachineParams, SystemConfig, Access};
//! use mage_mmu::{CoreId, Topology};
//! use mage_sim::Simulation;
//! use std::rc::Rc;
//!
//! let sim = Simulation::new();
//! let params = MachineParams {
//!     topo: Topology::single_socket(8),
//!     app_threads: 4,
//!     local_pages: 1_024,
//!     remote_pages: 8_192,
//!     tlb_entries: 256,
//!     seed: 1,
//! };
//! let engine = FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
//! let vma = engine.mmap(2_048);
//! engine.populate(&vma);
//! let e = Rc::clone(&engine);
//! let faults = sim.block_on(async move {
//!     for i in 0..2_048 {
//!         e.access(CoreId(0), vma.start_vpn + i, false).await;
//!     }
//!     e.stats().major_faults.get()
//! });
//! assert!(faults > 0, "pages beyond the local quota must fault");
//! ```

pub mod backend;
pub mod config;
pub mod costs;
pub mod events;
pub mod fault;
pub mod ideal;
pub mod machine;
pub mod metrics;
mod prefetch;
pub mod reclaim;
pub mod retry;
pub mod stats;

pub use backend::{
    DisaggTier, FarBackend, LocalBoxFuture, RdmaBackend, ReplicaState, ReplicatedBackend,
    ReplicationConfig, ReplicationStats,
};
pub use config::{
    BackendKind, EvictionPolicyKind, PrefetchPolicy, RemoteAllocKind, SystemConfig,
};
pub use costs::{CostModel, OsProfile};
pub use events::{EventSink, PageEvent};
pub use ideal::IdealModel;
pub use machine::{Access, FarMemory, MachineParams};
pub use metrics::{MetricsRegistry, MetricsSnapshot, MetricsWindow};
pub use reclaim::{AgingClock, ApproxLru, EvictionPolicy, Fifo, S3Fifo, SecondChance};
pub use retry::{FaultError, RetryPolicy, TransferOp};
pub use stats::{BreakdownMeans, EngineStats};
