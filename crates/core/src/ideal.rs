//! The analytic "ideal" far-memory model of §3.1.
//!
//! The ideal system incurs only data-movement costs: each major fault
//! adds exactly one best-case RDMA latency `L` to the faulting thread.
//! With per-core fault counts `F_c` and an all-local runtime `T₀`:
//!
//! ```text
//! Thp_ideal(x) = min_c  3600 / (T₀ + L · F_{c,x})   jobs/hour
//! ΔThp(x)      = max_c  L · F_{c,x} / (T₀ + L · F_{c,x})
//! ```
//!
//! The benchmark harness uses this model two ways: as an analytic curve
//! computed from fault counts measured on the zero-overhead simulation,
//! and as the `SystemConfig::ideal()` configuration that actually runs
//! the engine with all software costs zeroed.

use mage_sim::time::Nanos;

/// The analytic ideal model.
#[derive(Clone, Copy, Debug)]
pub struct IdealModel {
    /// Best-case remote access latency `L` (ns); 3.9 µs in the paper.
    pub rdma_latency_ns: Nanos,
}

impl IdealModel {
    /// The paper's testbed latency.
    pub fn paper() -> Self {
        IdealModel {
            rdma_latency_ns: 3_900,
        }
    }

    /// Ideal runtime (ns) of a job given its all-local runtime and the
    /// per-core major-fault counts.
    pub fn runtime_ns(&self, local_runtime_ns: u64, faults_per_core: &[u64]) -> u64 {
        let worst = faults_per_core.iter().copied().max().unwrap_or(0);
        local_runtime_ns + self.rdma_latency_ns * worst
    }

    /// Ideal throughput in jobs/hour.
    pub fn throughput_jobs_per_hour(&self, local_runtime_ns: u64, faults_per_core: &[u64]) -> f64 {
        let rt = self.runtime_ns(local_runtime_ns, faults_per_core);
        if rt == 0 {
            return f64::INFINITY;
        }
        3_600.0e9 / rt as f64
    }

    /// Relative throughput drop `ΔThp(x)` in percent (0–100).
    pub fn throughput_drop_pct(&self, local_runtime_ns: u64, faults_per_core: &[u64]) -> f64 {
        let worst = faults_per_core.iter().copied().max().unwrap_or(0);
        let delay = self.rdma_latency_ns as f64 * worst as f64;
        100.0 * delay / (local_runtime_ns as f64 + delay)
    }

    /// The fault-throughput ceiling of the fabric in pages/second: one
    /// page per serialization slot. For 24 B/ns and 4 KiB pages this is
    /// the paper's 5.8 M ops/s "ideal limit" (Fig. 5).
    pub fn fault_rate_ceiling(bandwidth_bytes_per_ns: f64, page_bytes: u64) -> f64 {
        bandwidth_bytes_per_ns * 1e9 / page_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_means_no_drop() {
        let m = IdealModel::paper();
        assert_eq!(m.runtime_ns(1_000_000, &[0, 0]), 1_000_000);
        assert_eq!(m.throughput_drop_pct(1_000_000, &[0, 0]), 0.0);
    }

    #[test]
    fn slowest_core_bounds_throughput() {
        let m = IdealModel::paper();
        let rt = m.runtime_ns(1_000_000_000, &[10, 1_000, 100]);
        assert_eq!(rt, 1_000_000_000 + 3_900 * 1_000);
    }

    #[test]
    fn drop_is_monotonic_in_faults() {
        let m = IdealModel::paper();
        let d1 = m.throughput_drop_pct(1_000_000_000, &[1_000]);
        let d2 = m.throughput_drop_pct(1_000_000_000, &[100_000]);
        assert!(d2 > d1);
        assert!(d2 < 100.0);
    }

    #[test]
    fn fault_ceiling_matches_paper() {
        // 24 B/ns (192 Gbps practical) / 4 KiB = 5.86 M pages/s; the paper
        // quotes 5.83 M ops/s as the ideal limit (Fig. 5).
        let ceiling = IdealModel::fault_rate_ceiling(24.0, 4096);
        assert!((ceiling / 1e6 - 5.86).abs() < 0.05, "ceiling {ceiling}");
    }

    #[test]
    fn throughput_formula_roundtrip() {
        let m = IdealModel::paper();
        // T0 = 1 hour => 1 job/hour with no faults.
        let thp = m.throughput_jobs_per_hour(3_600_000_000_000, &[0]);
        assert!((thp - 1.0).abs() < 1e-9);
    }
}
