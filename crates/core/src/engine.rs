//! The far-memory engine: machine assembly and the fault-in path.
//!
//! [`FarMemory`] wires every substrate together (NIC, memory node, page
//! table, TLBs + interrupt controller, local and remote allocators, page
//! accounting) according to a [`SystemConfig`], launches the background
//! eviction threads, and exposes the application-facing [`FarMemory::access`]
//! operation used by workload threads.
//!
//! The fault-in path follows §2.1 of the paper (`FP₁`–`FP₃`): trap entry →
//! VMA lock → PTE fault-dedup lock → frame allocation (waiting for the
//! evictors under MAGE's P1, or falling back to synchronous eviction in
//! the baselines) → one-sided RDMA read → PTE install → accounting insert
//! → TLB fill. Every stage is timed into the Fig. 6/16 breakdown
//! categories.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::{Rc, Weak};

use mage_accounting::PageAccounting;
use mage_fabric::{MemoryNode, Nic};
use mage_mmu::{
    AddressSpace, CoreId, InterruptController, PageTable, Pte, Tlb, Topology, Vma, PAGE_SIZE,
};
use mage_palloc::{LocalAllocator, RemoteAllocator, SwapBitmap};
use mage_sim::sync::WaitQueue;
use mage_sim::time::Nanos;
use mage_sim::SimHandle;

use crate::config::{RemoteAllocKind, SystemConfig};
use crate::prefetch::StreamDetector;
use crate::stats::EngineStats;

/// Machine-level parameters independent of the system design.
#[derive(Clone, Debug)]
pub struct MachineParams {
    /// NUMA topology (defaults to the paper's dual-socket Xeon).
    pub topo: Topology,
    /// Number of application threads (thread *i* is pinned to core *i*).
    pub app_threads: usize,
    /// Local DRAM quota in pages.
    pub local_pages: u64,
    /// Far-memory pool capacity in pages.
    pub remote_pages: u64,
    /// Per-core TLB capacity in entries.
    pub tlb_entries: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl MachineParams {
    /// The paper's testbed shape with the given thread count and memory
    /// split.
    pub fn testbed(app_threads: usize, local_pages: u64, remote_pages: u64) -> Self {
        MachineParams {
            topo: Topology::xeon_6348_dual(),
            app_threads,
            local_pages,
            remote_pages,
            tlb_entries: 1_536,
            seed: 42,
        }
    }
}

/// Result of one [`FarMemory::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Translation was cached; no OS involvement.
    TlbHit,
    /// Hardware walk found a present PTE.
    Minor,
    /// Major fault serviced from far memory (or first touch).
    Major {
        /// End-to-end fault latency in ns.
        latency: Nanos,
    },
}

impl Access {
    /// The latency attributable to paging for this access.
    pub fn paging_latency(&self) -> Nanos {
        match self {
            Access::Major { latency } => *latency,
            _ => 0,
        }
    }
}

/// A far-memory machine instance running one system configuration.
pub struct FarMemory {
    pub(crate) sim: SimHandle,
    pub(crate) cfg: SystemConfig,
    pub(crate) topo: Topology,
    pub(crate) nic: Rc<Nic>,
    pub(crate) node: MemoryNode,
    pub(crate) pt: PageTable,
    pub(crate) asp: RefCell<AddressSpace>,
    pub(crate) ic: Rc<InterruptController>,
    pub(crate) alloc: Rc<LocalAllocator>,
    pub(crate) remote: RemoteAllocator,
    pub(crate) acct: Rc<PageAccounting>,
    pub(crate) app_cores: Vec<CoreId>,
    pub(crate) evictor_cores: Vec<CoreId>,
    pub(crate) page_waiters: RefCell<BTreeMap<u64, Rc<WaitQueue>>>,
    /// Pages unmapped by an in-flight eviction batch, mapping vpn →
    /// (frame, generation); a concurrent fault can cancel the eviction by
    /// reclaiming the entry (the swap-cache-refault / unified-page-table
    /// dedup of §5.2). The generation tag prevents a finished batch from
    /// claiming an entry that a *later* batch re-created after a
    /// cancellation (ABA).
    pub(crate) evicting: RefCell<BTreeMap<u64, (u64, u64)>>,
    pub(crate) evict_gen: Cell<u64>,
    pub(crate) free_waiters: WaitQueue,
    pub(crate) active_evictors: Cell<usize>,
    pub(crate) stop_flag: Cell<bool>,
    pub(crate) low_watermark: u64,
    pub(crate) high_watermark: u64,
    pub(crate) stats: EngineStats,
    pub(crate) prefetchers: RefCell<Vec<StreamDetector>>,
    pub(crate) self_ref: RefCell<Weak<FarMemory>>,
}

impl FarMemory {
    /// Builds the machine and launches the eviction threads.
    pub fn launch(sim: SimHandle, cfg: SystemConfig, params: MachineParams) -> Rc<Self> {
        let topo = params.topo;
        assert!(
            params.app_threads <= topo.total_cores() as usize,
            "more app threads than cores"
        );
        let nic = Rc::new(Nic::new(sim.clone(), cfg.nic.clone()));
        let node = MemoryNode::new(params.remote_pages * PAGE_SIZE);
        let tlbs: Vec<Rc<Tlb>> = (0..topo.total_cores())
            .map(|i| Rc::new(Tlb::new(params.tlb_entries, params.seed ^ i as u64)))
            .collect();
        let ic = Rc::new(InterruptController::new(
            sim.clone(),
            topo,
            cfg.costs.ipi.clone(),
            tlbs,
        ));
        let alloc = Rc::new(LocalAllocator::new(
            sim.clone(),
            cfg.local_alloc,
            cfg.costs.alloc.clone(),
            params.local_pages,
            topo.total_cores() as usize,
        ));
        let remote = match cfg.remote_alloc {
            RemoteAllocKind::DirectMap => RemoteAllocator::DirectMap,
            RemoteAllocKind::SwapLock => RemoteAllocator::Swap(Box::new(SwapBitmap::new(
                sim.clone(),
                params.remote_pages,
                cfg.costs.swap_slot_ns,
            ))),
        };
        let acct = Rc::new(PageAccounting::new(
            sim.clone(),
            cfg.accounting,
            cfg.costs.accounting.clone(),
        ));
        let asp = RefCell::new(AddressSpace::new(sim.clone(), cfg.vma_lock));

        let app_cores: Vec<CoreId> = (0..params.app_threads as u32).map(CoreId).collect();
        let evictor_cores: Vec<CoreId> = (0..cfg.max_evictors as u32)
            .map(|j| CoreId((params.app_threads as u32 + j) % topo.total_cores()))
            .collect();

        let batch = cfg.eviction_batch as u64;
        // Watermarks scale with both the eviction batch (pipeline depth)
        // and the memory size (like Linux's min_free_kbytes): tiny batch
        // sizes must not shrink the free reserve into a starvation churn.
        let low = (cfg.evictors as u64 * batch)
            .max(params.local_pages / 64)
            .max(64)
            .min(params.local_pages / 8);
        let high = (3 * low).min(params.local_pages / 2).max(low + 1);

        let engine = Rc::new(FarMemory {
            sim: sim.clone(),
            topo,
            nic,
            node,
            pt: PageTable::new(),
            asp,
            ic,
            alloc,
            remote,
            acct,
            app_cores,
            evictor_cores,
            page_waiters: RefCell::new(BTreeMap::new()),
            evicting: RefCell::new(BTreeMap::new()),
            evict_gen: Cell::new(0),
            free_waiters: WaitQueue::new(),
            active_evictors: Cell::new(cfg.evictors),
            stop_flag: Cell::new(false),
            low_watermark: low,
            high_watermark: high,
            stats: EngineStats::default(),
            prefetchers: RefCell::new(
                (0..topo.total_cores())
                    .map(|_| StreamDetector::new())
                    .collect(),
            ),
            self_ref: RefCell::new(Weak::new()),
            cfg,
        });
        *engine.self_ref.borrow_mut() = Rc::downgrade(&engine);

        // Launch the background eviction threads and, for Hermit-style
        // feedback-directed asynchrony, the scaling controller.
        for id in 0..engine.cfg.max_evictors {
            let e = Rc::clone(&engine);
            sim.spawn(async move { e.evictor_main(id).await });
        }
        if engine.cfg.max_evictors > engine.cfg.evictors {
            let e = Rc::clone(&engine);
            sim.spawn(async move { e.scaling_controller().await });
        }
        engine
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The machine topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The simulated NIC.
    pub fn nic(&self) -> &Rc<Nic> {
        &self.nic
    }

    /// The interrupt controller (TLBs, IPIs).
    pub fn interrupts(&self) -> &Rc<InterruptController> {
        &self.ic
    }

    /// The local frame allocator.
    pub fn allocator(&self) -> &Rc<LocalAllocator> {
        &self.alloc
    }

    /// The page accounting structure.
    pub fn accounting(&self) -> &Rc<PageAccounting> {
        &self.acct
    }

    /// The far-memory node bookkeeping.
    pub fn memory_node(&self) -> &MemoryNode {
        &self.node
    }

    /// Free-page low watermark (eviction trigger).
    pub fn low_watermark(&self) -> u64 {
        self.low_watermark
    }

    /// Free-page high watermark (eviction target).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Signals the background threads to exit.
    pub fn shutdown(&self) {
        self.stop_flag.set(true);
    }

    /// Maps a new region of `pages` pages.
    pub fn mmap(&self, pages: u64) -> Vma {
        let vma = self.asp.borrow_mut().mmap(pages);
        let registered = self
            .node
            .register(pages * PAGE_SIZE, true)
            .expect("memory node capacity exceeded");
        debug_assert!(registered.len >= pages * PAGE_SIZE);
        vma
    }

    /// Initially places the region's pages: local frames are consumed
    /// until only the high watermark remains free; every further page
    /// starts remote. Local pages are dirty (no remote copy yet).
    ///
    /// Runs synchronously at setup time (no virtual time passes).
    pub fn populate(&self, vma: &Vma) {
        let mut core = 0usize;
        for i in 0..vma.pages {
            let vpn = vma.start_vpn + i;
            if self.alloc.free_frames() > self.high_watermark {
                let frames = self.alloc.seed_take(1);
                let frame = frames[0];
                // Placed, not accessed: the application has not touched
                // the page yet, so it must look cold to the first scan
                // (seeding it hot would make the first eviction wave
                // strip accessed bits across the whole residency with no
                // victims to show for it). It is dirty: no remote copy
                // exists yet.
                self.pt.set(vpn, Pte::present(frame).with_dirty(true));
                self.acct.seed(core, vpn);
                core = (core + 1) % self.app_cores.len().max(1);
            } else {
                let rpn = match &self.remote {
                    RemoteAllocator::DirectMap => vma.remote_page(vpn),
                    RemoteAllocator::Swap(bitmap) => {
                        bitmap.seed_alloc().expect("swap capacity exceeded")
                    }
                };
                self.pt.set(vpn, Pte::remote(rpn));
            }
        }
    }

    /// Places every page of the region in far memory regardless of local
    /// capacity (the §3.2 microbenchmark setup: pages pre-evicted with
    /// `madvise_pageout` so that each access faults).
    ///
    /// Runs synchronously at setup time.
    pub fn populate_all_remote(&self, vma: &Vma) {
        for i in 0..vma.pages {
            let vpn = vma.start_vpn + i;
            let rpn = match &self.remote {
                RemoteAllocator::DirectMap => vma.remote_page(vpn),
                RemoteAllocator::Swap(bitmap) => {
                    bitmap.seed_alloc().expect("swap capacity exceeded")
                }
            };
            self.pt.set(vpn, Pte::remote(rpn));
        }
    }

    /// Performs one page access from `core`. This is the application-facing
    /// entry point: TLB hit, hardware walk, or full page fault.
    pub async fn access(&self, core: CoreId, vpn: u64, write: bool) -> Access {
        self.stats.accesses.inc();
        // Interrupt handling (TLB shootdown IPIs) steals time from this
        // core's thread; account for it before the access proceeds.
        let stolen = self.ic.take_stolen(core);
        if stolen > 0 {
            self.sim.sleep(stolen).await;
        }
        if self.ic.tlb(core).lookup(vpn) {
            self.stats.tlb_hits.inc();
            if write {
                self.pt.update(vpn, |p| p.with_dirty(true));
            }
            return Access::TlbHit;
        }
        self.sim.sleep(self.cfg.costs.hw_walk_ns).await;
        let pte = self.pt.get(vpn);
        if pte.is_present() {
            self.pt.update(vpn, |p| {
                p.with_accessed(true).with_dirty(p.dirty() || write)
            });
            self.ic.tlb(core).fill(vpn);
            self.stats.minor_walks.inc();
            // Readahead retrigger: the first touch of a prefetched page is
            // a minor walk (it is not TLB-resident yet), which acts as the
            // PG_readahead marker keeping the window ahead of the stream.
            self.maybe_prefetch(core, vpn);
            return Access::Minor;
        }
        let latency = self.fault_in(core, vpn, write).await;
        Access::Major { latency }
    }

    /// The major-fault path (`FP₁`–`FP₃`).
    async fn fault_in(&self, core: CoreId, vpn: u64, write: bool) -> Nanos {
        let costs = self.cfg.costs.clone();
        let t0 = self.sim.now();
        self.sim
            .sleep(costs.os.fault_entry_ns + costs.os.pt_walk_ns + costs.os.swapcache_ns)
            .await;

        // Address-space metadata lock (Linux-derived systems only).
        let vma_lock = self.asp.borrow().lock_for(vpn).cloned();
        if let Some(l) = vma_lock {
            let guard = l.lock().await;
            self.sim.sleep(costs.vma_lock_hold_ns).await;
            drop(guard);
        }

        // PTE fault-dedup lock (unified-page-table style, §5.2).
        loop {
            let pte = self.pt.get(vpn);
            if pte.is_present() {
                // Another thread (or a prefetch) resolved the fault.
                self.pt.update(vpn, |p| {
                    p.with_accessed(true).with_dirty(p.dirty() || write)
                });
                self.ic.tlb(core).fill(vpn);
                self.stats.prefetch_inflight_hits.inc();
                let total = self.sim.now().saturating_since(t0);
                self.stats.record_fault(total, 0);
                return total;
            }
            if pte.locked() {
                // Refault on a page mid-eviction: cancel the eviction and
                // re-map the still-intact frame (swap-cache refault).
                let cancelled = self.evicting.borrow_mut().remove(&vpn);
                if let Some((frame, _gen)) = cancelled {
                    self.sim.sleep(costs.os.pte_update_ns).await;
                    // The remote copy may be stale, so the page must be
                    // considered dirty from here on.
                    self.pt.set(
                        vpn,
                        Pte::present(frame).with_accessed(true).with_dirty(true),
                    );
                    self.acct.insert(core.index(), vpn).await;
                    self.ic.tlb(core).fill(vpn);
                    self.wake_page(vpn);
                    self.stats.evict_cancels.inc();
                    let total = self.sim.now().saturating_since(t0);
                    self.stats.record_fault(total, 0);
                    return total;
                }
                self.stats.page_lock_waits.inc();
                self.wait_for_page(vpn).await;
                continue;
            }
            let locked = self.pt.try_lock(vpn);
            debug_assert!(locked, "PTE lock raced on a single-threaded executor");
            break;
        }
        let pte = self.pt.get(vpn);
        let was_remote = pte.is_remote();
        let rpn = pte.payload();

        // FP₁: obtain a free frame. MAGE (P1) never evicts here — it waits
        // for the dedicated evictors; the baselines fall back to
        // synchronous eviction, paying shootdowns on the critical path.
        let t_circ = self.sim.now();
        let mut sync_tlb_ns: Nanos = 0;
        let mut sync_acct_ns: Nanos = 0;
        let frame = loop {
            if let Some(f) = self.alloc.alloc(core.index()).await {
                break f;
            }
            if self.cfg.sync_eviction {
                let outcome = self
                    .evict_batch(core, core.index(), 0, self.cfg.sync_eviction_batch, true)
                    .await;
                sync_tlb_ns += outcome.tlb_ns;
                sync_acct_ns += outcome.acct_ns;
                if outcome.pages == 0 {
                    // Nothing evictable right now; let others make progress.
                    self.sim.sleep(1_000).await;
                }
            } else {
                let t_w = self.sim.now();
                self.free_waiters.wait().await;
                self.stats
                    .free_wait
                    .borrow_mut()
                    .record(self.sim.now().saturating_since(t_w));
            }
        };
        let circ_ns = self
            .sim
            .now()
            .saturating_since(t_circ)
            .saturating_sub(sync_tlb_ns + sync_acct_ns);

        // FP₂: fetch the page contents over RDMA (not needed on first
        // touch, which zero-fills).
        let mut rdma_ns: Nanos = 0;
        let mut slot_ns: Nanos = 0;
        if was_remote {
            let t_r = self.sim.now();
            self.sim.sleep(costs.os.rdma_post_cpu_ns).await;
            self.nic.post_read(PAGE_SIZE).await;
            rdma_ns = self.sim.now().saturating_since(t_r);
            // Release the swap slot (Linux frees it on swap-in); direct
            // mapping keeps the address-derived slot reserved.
            let t_s = self.sim.now();
            self.remote.release(rpn).await;
            slot_ns = self.sim.now().saturating_since(t_s);
        }

        // FP₃: install the mapping and account the page.
        self.sim
            .sleep(costs.os.pte_update_ns + costs.os.rmap_cgroup_ns)
            .await;
        self.pt.set(
            vpn,
            Pte::present(frame)
                .with_accessed(true)
                .with_dirty(write || !was_remote),
        );
        let t_a = self.sim.now();
        self.acct.insert(core.index(), vpn).await;
        let acct_ns = self.sim.now().saturating_since(t_a) + sync_acct_ns;
        self.ic.tlb(core).fill(vpn);
        self.wake_page(vpn);

        // Readahead.
        self.maybe_prefetch(core, vpn);

        let b = &self.stats.breakdown;
        b.rdma.borrow_mut().record(rdma_ns);
        b.tlb.borrow_mut().record(sync_tlb_ns);
        b.accounting.borrow_mut().record(acct_ns);
        b.circulation.borrow_mut().record(circ_ns + slot_ns);
        let total = self.sim.now().saturating_since(t0);
        self.stats
            .record_fault(total, rdma_ns + sync_tlb_ns + acct_ns + circ_ns + slot_ns);
        total
    }

    pub(crate) async fn wait_for_page(&self, vpn: u64) {
        let queue = {
            let mut waiters = self.page_waiters.borrow_mut();
            Rc::clone(
                waiters
                    .entry(vpn)
                    .or_insert_with(|| Rc::new(WaitQueue::new())),
            )
        };
        queue.wait().await;
    }

    pub(crate) fn wake_page(&self, vpn: u64) {
        if let Some(q) = self.page_waiters.borrow_mut().remove(&vpn) {
            q.wake_all();
        }
    }

    /// Drains stolen interrupt time for `core` without performing an
    /// access (used by workloads during pure-compute stretches).
    pub fn take_stolen(&self, core: CoreId) -> Nanos {
        self.ic.take_stolen(core)
    }

    /// Multiplies `compute_ns` by the configured virtualization inflation.
    pub fn inflate_compute(&self, compute_ns: Nanos) -> Nanos {
        compute_ns + compute_ns * self.cfg.costs.os.compute_inflation_pct as u64 / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;

    fn small_machine(cfg: SystemConfig) -> (Simulation, Rc<FarMemory>, Vma) {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages: 512,
            remote_pages: 4_096,
            tlb_entries: 64,
            seed: 7,
        };
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(1_024);
        engine.populate(&vma);
        (sim, engine, vma)
    }

    #[test]
    fn populate_splits_local_and_remote() {
        let (_sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let mut local = 0;
        let mut remote = 0;
        for i in 0..vma.pages {
            let pte = engine.pt.get(vma.start_vpn + i);
            if pte.is_present() {
                local += 1;
            } else {
                assert!(pte.is_remote());
                remote += 1;
            }
        }
        assert!(local > 0 && remote > 0);
        assert_eq!(local + remote, 1_024);
        // Free pages left at the high watermark.
        assert_eq!(engine.allocator().free_frames(), engine.high_watermark());
        assert_eq!(engine.accounting().resident_pages(), local);
    }

    #[test]
    fn local_access_is_cheap_remote_access_faults() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Find one local and one remote page.
            let local_vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_present())
                .expect("some local page");
            let remote_vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_remote())
                .expect("some remote page");

            let a = e.access(CoreId(0), local_vpn, false).await;
            assert_eq!(a, Access::Minor, "first touch walks");
            let a = e.access(CoreId(0), local_vpn, false).await;
            assert_eq!(a, Access::TlbHit);

            let t0 = e.sim.now();
            let a = e.access(CoreId(1), remote_vpn, false).await;
            let lat = e.sim.now() - t0;
            assert!(matches!(a, Access::Major { .. }));
            assert!(lat >= 3_900, "must include the RDMA read: {lat}");
            // Now present and hot.
            let a = e.access(CoreId(1), remote_vpn, false).await;
            assert_eq!(a, Access::TlbHit);
        });
        assert_eq!(engine.stats().major_faults.get(), 1);
        assert_eq!(engine.nic().stats().reads.get(), 1);
    }

    #[test]
    fn write_sets_dirty_through_tlb() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            let remote_vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_remote())
                .expect("some remote page");
            e.access(CoreId(0), remote_vpn, false).await;
            assert!(!e.pt.get(remote_vpn).dirty(), "clean after read fault");
            e.access(CoreId(0), remote_vpn, true).await;
            assert!(e.pt.get(remote_vpn).dirty(), "TLB-hit write sets dirty");
        });
    }

    #[test]
    fn fault_dedup_single_rdma_read() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        let remote_vpn = (0..vma.pages)
            .map(|i| vma.start_vpn + i)
            .find(|&v| e.pt.get(v).is_remote())
            .expect("some remote page");
        // Four threads fault the same page concurrently.
        let mut joins = Vec::new();
        for c in 0..4u32 {
            let e = Rc::clone(&engine);
            joins.push(sim.spawn(async move { e.access(CoreId(c), remote_vpn, false).await }));
        }
        let results = sim.block_on(async move {
            let mut out = Vec::new();
            for j in joins {
                out.push(j.await);
            }
            out
        });
        assert!(results.iter().all(|a| matches!(a, Access::Major { .. })));
        assert_eq!(
            engine.nic().stats().reads.get(),
            1,
            "dedup: one RDMA read for four concurrent faults"
        );
        assert!(engine.stats().page_lock_waits.get() >= 1);
    }

    #[test]
    fn eviction_sustains_fault_streams() {
        // Touch far more pages than fit locally; the background evictors
        // must keep the fault path supplied with frames.
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            for i in 0..vma.pages {
                e.access(CoreId(0), vma.start_vpn + i, false).await;
            }
        });
        assert!(engine.stats().major_faults.get() > 400);
        assert_eq!(engine.stats().sync_evictions.get(), 0, "MAGE P1");
        assert!(engine.stats().evicted_pages.get() > 0);
        // Conservation: frames in flight + free == local quota.
        assert!(engine.allocator().free_frames() <= 512);
    }

    #[test]
    fn hermit_uses_sync_eviction_under_pressure() {
        let (sim, engine, vma) = small_machine(SystemConfig::hermit());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            for i in 0..vma.pages {
                e.access(CoreId(0), vma.start_vpn + i, false).await;
            }
        });
        assert!(engine.stats().major_faults.get() > 400);
    }

    #[test]
    fn pageout_forces_pages_remote() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Find a handful of local pages and page them out.
            let local: Vec<u64> = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .filter(|&v| e.pt.get(v).is_present())
                .take(16)
                .collect();
            let n = e.pageout(CoreId(0), &local).await;
            assert_eq!(n, 16);
            for &vpn in &local {
                assert!(e.pt.get(vpn).is_remote(), "page {vpn:#x} still local");
                assert!(!e.pt.get(vpn).locked(), "page {vpn:#x} left locked");
            }
            // Accessing a paged-out page faults it back in.
            let a = e.access(CoreId(1), local[0], false).await;
            assert!(matches!(a, Access::Major { .. }));
        });
        // Populate marks local pages dirty, so all 16 were written back.
        assert!(engine.stats().writebacks.get() >= 16);
    }

    #[test]
    fn stale_tlb_never_survives_eviction() {
        // After a page is evicted and reclaimed, accessing it again must
        // fault (not hit a stale TLB entry).
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Touch every page twice (fills TLBs), forcing evictions.
            for round in 0..2 {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, round == 0)
                        .await;
                }
            }
            // Any page that is now remote must not be TLB-resident anywhere.
            for i in 0..vma.pages {
                let vpn = vma.start_vpn + i;
                if e.pt.get(vpn).is_remote() {
                    for c in 0..4u32 {
                        assert!(
                            !e.ic.tlb(CoreId(c)).translates(vpn),
                            "stale TLB entry for evicted page {vpn:#x} on core {c}"
                        );
                    }
                }
            }
        });
    }
}
