//! Machine assembly: wiring the substrates into a [`FarMemory`] instance.
//!
//! [`FarMemory::launch`] builds every substrate (backend, page table,
//! TLBs + interrupt controller, local allocator, page accounting)
//! according to a [`SystemConfig`], computes the free-page watermarks,
//! and spawns the background eviction threads. The struct itself is the
//! shared state the layered paths operate on:
//!
//! - [`fault`](crate::fault) — the fault-in path (`FP₁`–`FP₃`);
//! - [`reclaim`](crate::reclaim) — the eviction path (`EP₁`–`EP₃`);
//! - [`backend`](crate::backend) — data movement and slot placement.
//!
//! This module holds only assembly, configuration accessors and the
//! synchronous setup operations (`mmap`/`populate`); no fault-path or
//! eviction-path logic lives here.

use std::cell::{Cell, RefCell};
use mage_sim::slab::PageMap;
use std::rc::{Rc, Weak};

use mage_accounting::{AccountingKind, PageAccounting};
use mage_fabric::{MemoryNode, Nic};
use mage_mmu::{
    AddressSpace, CoreId, InterruptController, PageTable, Pte, Tlb, Topology, Vma, PAGE_SIZE,
};
use mage_palloc::LocalAllocator;
use mage_sim::race::ShadowRegion;
use mage_sim::sync::WaitQueue;
use mage_sim::time::{Nanos, SimTime};
use mage_sim::trace::Tracer;
use mage_sim::SimHandle;

use crate::backend::{FarBackend, ReplicatedBackend};
use crate::config::{EvictionPolicyKind, SystemConfig};
use crate::events::{EventSink, EventTap, PageEvent};
use crate::metrics::MetricsRegistry;
use crate::prefetch::StreamDetector;
use crate::reclaim::EvictionPolicy;
use crate::retry::FaultError;
use crate::stats::EngineStats;
use mage_sim::rng::{self, SplitMix64};

/// Machine-level parameters independent of the system design.
#[derive(Clone, Debug)]
pub struct MachineParams {
    /// NUMA topology (defaults to the paper's dual-socket Xeon).
    pub topo: Topology,
    /// Number of application threads (thread *i* is pinned to core *i*).
    pub app_threads: usize,
    /// Local DRAM quota in pages.
    pub local_pages: u64,
    /// Far-memory pool capacity in pages.
    pub remote_pages: u64,
    /// Per-core TLB capacity in entries.
    pub tlb_entries: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl MachineParams {
    /// The paper's testbed shape with the given thread count and memory
    /// split.
    pub fn testbed(app_threads: usize, local_pages: u64, remote_pages: u64) -> Self {
        MachineParams {
            topo: Topology::xeon_6348_dual(),
            app_threads,
            local_pages,
            remote_pages,
            tlb_entries: 1_536,
            seed: 42,
        }
    }
}

/// Result of one [`FarMemory::access`](FarMemory::access).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Translation was cached; no OS involvement.
    TlbHit,
    /// Hardware walk found a present PTE.
    Minor,
    /// Major fault serviced from far memory (or first touch).
    Major {
        /// End-to-end fault latency in ns.
        latency: Nanos,
    },
    /// Major fault aborted: the backend read exhausted its retries. The
    /// page is still remote and unlocked; the access may be retried.
    Failed {
        /// Why the transfer could not be completed.
        error: FaultError,
    },
}

impl Access {
    /// The latency attributable to paging for this access.
    pub fn paging_latency(&self) -> Nanos {
        match self {
            Access::Major { latency } => *latency,
            _ => 0,
        }
    }
}

/// A far-memory machine instance running one system configuration.
pub struct FarMemory {
    pub(crate) sim: SimHandle,
    pub(crate) cfg: SystemConfig,
    pub(crate) topo: Topology,
    pub(crate) backend: Box<dyn FarBackend>,
    pub(crate) policy: Box<dyn EvictionPolicy>,
    pub(crate) pt: PageTable,
    pub(crate) asp: RefCell<AddressSpace>,
    pub(crate) ic: Rc<InterruptController>,
    pub(crate) alloc: Rc<LocalAllocator>,
    pub(crate) acct: Rc<PageAccounting>,
    pub(crate) app_cores: Vec<CoreId>,
    pub(crate) evictor_cores: Vec<CoreId>,
    /// Per-page wait queues for faults blocked on an in-flight fetch,
    /// keyed by vpn in an open-addressed [`PageMap`] (point lookups only;
    /// never iterated, so hash order is unobservable).
    pub(crate) page_waiters: RefCell<PageMap<Rc<WaitQueue>>>,
    /// Pages unmapped by an in-flight eviction batch, mapping vpn →
    /// (frame, generation); a concurrent fault can cancel the eviction by
    /// reclaiming the entry (the swap-cache-refault / unified-page-table
    /// dedup of §5.2). The generation tag prevents a finished batch from
    /// claiming an entry that a *later* batch re-created after a
    /// cancellation (ABA).
    pub(crate) evicting: RefCell<PageMap<(u64, u64)>>,
    pub(crate) evict_gen: Cell<u64>,
    pub(crate) free_waiters: WaitQueue,
    pub(crate) active_evictors: Cell<usize>,
    pub(crate) stop_flag: Cell<bool>,
    pub(crate) low_watermark: u64,
    pub(crate) high_watermark: u64,
    pub(crate) stats: EngineStats,
    pub(crate) prefetchers: RefCell<Vec<StreamDetector>>,
    /// Jitter stream for retry backoff, derived from the machine seed and
    /// the fault seed so a (machine, plan) pair replays exactly.
    pub(crate) retry_rng: SplitMix64,
    /// Page-lifecycle event tap (see [`crate::events`]); empty by
    /// default, in which case every emission site is a no-op.
    pub(crate) events: EventTap,
    /// Optional virtual-time tracer (see [`mage_sim::trace`]); `None` by
    /// default, in which case every recording site is one branch.
    pub(crate) tracer: RefCell<Option<Rc<Tracer>>>,
    /// Simsan shadow state over per-core TLB entries (atomic-class: TLB
    /// fills/lookups model MMU hardware, not software writes). Inert
    /// unless race detection is enabled on the simulation.
    pub(crate) shadow_tlb: ShadowRegion,
    /// Simsan shadow state over engine statistics (atomic-class: counter
    /// bumps model relaxed atomics).
    pub(crate) shadow_stats: ShadowRegion,
    pub(crate) self_ref: RefCell<Weak<FarMemory>>,
}

impl FarMemory {
    /// Builds the machine and launches the eviction threads.
    pub fn launch(sim: SimHandle, cfg: SystemConfig, params: MachineParams) -> Rc<Self> {
        let mut cfg = cfg;
        let topo = params.topo;
        assert!(
            params.app_threads <= topo.total_cores() as usize,
            "more app threads than cores"
        );
        // The S3-FIFO policy is one half of a pair: its small/main/ghost
        // queue structure lives in the accounting crate, so selecting the
        // policy also selects the matching accounting kind (preserving
        // whatever partition count the preset configured).
        if matches!(cfg.eviction_policy, EvictionPolicyKind::S3Fifo)
            && !matches!(cfg.accounting, AccountingKind::S3Fifo { .. })
        {
            cfg.accounting = AccountingKind::S3Fifo {
                partitions: cfg.accounting.partitions(),
            };
        }
        let backend = cfg.backend.build(sim.clone(), &cfg, params.remote_pages);
        let backend: Box<dyn FarBackend> = match cfg.replication {
            Some(replication) => Box::new(ReplicatedBackend::new(
                sim.clone(),
                backend,
                replication,
                cfg.break_rereplication,
            )),
            None => backend,
        };
        let policy = cfg.eviction_policy.build();
        let tlbs: Vec<Rc<Tlb>> = (0..topo.total_cores())
            .map(|i| Rc::new(Tlb::new(params.tlb_entries, params.seed ^ i as u64)))
            .collect();
        let ic = Rc::new(InterruptController::new(
            sim.clone(),
            topo,
            cfg.costs.ipi.clone(),
            tlbs,
        ));
        let alloc = Rc::new(LocalAllocator::new(
            sim.clone(),
            cfg.local_alloc,
            cfg.costs.alloc.clone(),
            params.local_pages,
            topo.total_cores() as usize,
        ));
        let acct = Rc::new(PageAccounting::new(
            sim.clone(),
            cfg.accounting,
            cfg.costs.accounting.clone(),
        ));
        let asp = RefCell::new(AddressSpace::new(sim.clone(), cfg.vma_lock));

        let app_cores: Vec<CoreId> = (0..params.app_threads as u32).map(CoreId).collect();
        let evictor_cores: Vec<CoreId> = (0..cfg.max_evictors as u32)
            .map(|j| CoreId((params.app_threads as u32 + j) % topo.total_cores()))
            .collect();

        let batch = cfg.eviction_batch as u64;
        // Watermarks scale with both the eviction batch (pipeline depth)
        // and the memory size (like Linux's min_free_kbytes): tiny batch
        // sizes must not shrink the free reserve into a starvation churn.
        let low = (cfg.evictors as u64 * batch)
            .max(params.local_pages / 64)
            .max(64)
            .min(params.local_pages / 8);
        let high = (3 * low).min(params.local_pages / 2).max(low + 1);

        let engine = Rc::new(FarMemory {
            sim: sim.clone(),
            topo,
            backend,
            policy,
            pt: PageTable::new(),
            asp,
            ic,
            alloc,
            acct,
            app_cores,
            evictor_cores,
            page_waiters: RefCell::new(PageMap::new()),
            evicting: RefCell::new(PageMap::new()),
            evict_gen: Cell::new(0),
            free_waiters: WaitQueue::new(),
            active_evictors: Cell::new(cfg.evictors),
            stop_flag: Cell::new(false),
            low_watermark: low,
            high_watermark: high,
            stats: EngineStats::default(),
            prefetchers: RefCell::new(
                (0..topo.total_cores())
                    .map(|_| StreamDetector::new())
                    .collect(),
            ),
            retry_rng: rng::stream(params.seed, cfg.faults.seed),
            events: EventTap::default(),
            tracer: RefCell::new(None),
            shadow_tlb: ShadowRegion::new(&sim, "tlb"),
            shadow_stats: ShadowRegion::new(&sim, "stats"),
            self_ref: RefCell::new(Weak::new()),
            cfg,
        });
        *engine.self_ref.borrow_mut() = Rc::downgrade(&engine);
        // PTE words are the engine's primary shared state; route every
        // page-table access through the race detector's shadow region
        // (inert when detection is disabled).
        engine.pt.attach_shadow(ShadowRegion::new(&sim, "pte"));

        // Launch the background eviction threads and, for Hermit-style
        // feedback-directed asynchrony, the scaling controller.
        for id in 0..engine.cfg.max_evictors {
            let e = Rc::clone(&engine);
            sim.spawn(async move { e.evictor_main(id).await });
        }
        if engine.cfg.max_evictors > engine.cfg.evictors {
            let e = Rc::clone(&engine);
            sim.spawn(async move { e.scaling_controller().await });
        }
        engine
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The machine topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The composed stat registry over every source this machine owns
    /// (engine, NIC, interrupts, accounting); the entry point for
    /// snapshot-delta measurement windows.
    pub fn metrics(&self) -> MetricsRegistry<'_> {
        MetricsRegistry {
            engine: &self.stats,
            nic: self.backend.link().stats(),
            interrupts: self.ic.stats(),
            accounting: self.acct.stats(),
            replication: self.backend.replication_stats(),
        }
    }

    /// Attaches a virtual-time tracer to the whole machine: fault and
    /// eviction spans from the engine, transfer events from the NIC and
    /// shootdown rounds from the interrupt controller all record into it.
    /// Application cores appear as tracks `0..app_threads`.
    pub fn attach_tracer(&self, tracer: Rc<Tracer>) {
        for core in &self.app_cores {
            tracer.name_track(core.0, &format!("core {}", core.0));
        }
        self.nic().attach_tracer(Rc::clone(&tracer));
        self.ic.attach_tracer(Rc::clone(&tracer));
        *self.tracer.borrow_mut() = Some(tracer);
    }

    /// The attached tracer, if any (cheap clone of an `Rc`).
    pub(crate) fn tracer(&self) -> Option<Rc<Tracer>> {
        self.tracer.borrow().clone()
    }

    /// Records a complete trace event from `start` to now, if a tracer is
    /// attached (one branch otherwise).
    pub(crate) fn trace_evt(
        &self,
        track: u32,
        cat: &'static str,
        name: &'static str,
        start: SimTime,
        arg: Option<(&'static str, u64)>,
    ) {
        if let Some(t) = self.tracer.borrow().as_ref() {
            t.record(
                track,
                cat,
                name,
                start.as_nanos(),
                self.sim.now().saturating_since(start),
                arg,
            );
        }
    }

    /// The far-memory backend.
    pub fn backend(&self) -> &dyn FarBackend {
        &*self.backend
    }

    /// The victim-selection policy.
    pub fn eviction_policy(&self) -> &dyn EvictionPolicy {
        &*self.policy
    }

    /// The backend's transfer link (bandwidth/latency model and stats).
    pub fn nic(&self) -> &Rc<Nic> {
        self.backend.link()
    }

    /// The interrupt controller (TLBs, IPIs).
    pub fn interrupts(&self) -> &Rc<InterruptController> {
        &self.ic
    }

    /// The page table (read-only inspection, e.g. residency audits).
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// The local frame allocator.
    pub fn allocator(&self) -> &Rc<LocalAllocator> {
        &self.alloc
    }

    /// The page accounting structure.
    pub fn accounting(&self) -> &Rc<PageAccounting> {
        &self.acct
    }

    /// The far-memory node bookkeeping.
    pub fn memory_node(&self) -> &MemoryNode {
        self.backend.node()
    }

    /// Free-page low watermark (eviction trigger).
    pub fn low_watermark(&self) -> u64 {
        self.low_watermark
    }

    /// Free-page high watermark (eviction target).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Registers an observer on the page-lifecycle event stream (see
    /// [`crate::events`]). Sinks see every transition synchronously, in
    /// program order; with no sink registered the tap costs one branch
    /// per site and perturbs nothing.
    pub fn tap_events(&self, sink: Rc<dyn EventSink>) {
        self.events.register(sink);
    }

    /// Emits a page-lifecycle event to the registered sinks, if any.
    #[inline]
    pub(crate) fn emit(&self, event: PageEvent) {
        if !self.events.is_empty() {
            self.events.emit(event);
        }
    }

    /// Signals the background threads (evictors and the backend's
    /// replication monitor, if any) to exit.
    pub fn shutdown(&self) {
        self.stop_flag.set(true);
        self.backend.shutdown();
    }

    /// Maps a new region of `pages` pages.
    pub fn mmap(&self, pages: u64) -> Vma {
        let bytes = pages
            .checked_mul(PAGE_SIZE)
            .expect("mmap size (pages * PAGE_SIZE) overflows u64");
        let vma = self.asp.borrow_mut().mmap(pages);
        let registered = self
            .backend
            .node()
            .register(bytes, true)
            .expect("memory node capacity exceeded");
        debug_assert!(registered.len >= bytes);
        vma
    }

    /// Initially places the region's pages: local frames are consumed
    /// until only the high watermark remains free; every further page
    /// starts remote. Local pages are dirty (no remote copy yet).
    ///
    /// Runs synchronously at setup time (no virtual time passes).
    pub fn populate(&self, vma: &Vma) {
        let mut core = 0usize;
        for i in 0..vma.pages {
            let vpn = vma.start_vpn + i;
            if self.alloc.free_frames() > self.high_watermark {
                let frames = self.alloc.seed_take(1);
                let frame = frames[0];
                // Placed, not accessed: the application has not touched
                // the page yet, so it must look cold to the first scan
                // (seeding it hot would make the first eviction wave
                // strip accessed bits across the whole residency with no
                // victims to show for it). It is dirty: no remote copy
                // exists yet.
                self.pt.set(vpn, Pte::present(frame).with_dirty(true));
                self.acct.seed(core, vpn);
                self.emit(PageEvent::Placed { vpn, local: true });
                core = (core + 1) % self.app_cores.len().max(1);
            } else {
                let rpn = self
                    .backend
                    .seed_slot(vma.remote_page(vpn))
                    .expect("backend capacity exceeded");
                self.pt.set(vpn, Pte::remote(rpn));
                self.emit(PageEvent::Placed { vpn, local: false });
            }
        }
    }

    /// Leaves the region unpopulated: no page-table paths, frames or
    /// remote slots are created until a page is first touched, when the
    /// fault path zero-fills it (installing it present and dirty, like a
    /// fresh anonymous mapping). This is the honest setup for
    /// terabyte-scale regions — host metadata stays O(touched pages)
    /// because every per-page structure on the touch path is sparse —
    /// and it deliberately does nothing: the method exists so callers
    /// state the choice explicitly instead of silently skipping
    /// [`populate`](Self::populate).
    pub fn populate_lazy(&self, vma: &Vma) {
        let _ = vma;
    }

    /// Places every page of the region in far memory regardless of local
    /// capacity (the §3.2 microbenchmark setup: pages pre-evicted with
    /// `madvise_pageout` so that each access faults).
    ///
    /// Runs synchronously at setup time.
    pub fn populate_all_remote(&self, vma: &Vma) {
        for i in 0..vma.pages {
            let vpn = vma.start_vpn + i;
            let rpn = self
                .backend
                .seed_slot(vma.remote_page(vpn))
                .expect("backend capacity exceeded");
            self.pt.set(vpn, Pte::remote(rpn));
            self.emit(PageEvent::Placed { vpn, local: false });
        }
    }

    pub(crate) async fn wait_for_page(&self, vpn: u64) {
        let queue = {
            let mut waiters = self.page_waiters.borrow_mut();
            Rc::clone(waiters.get_or_insert_with(vpn, || Rc::new(WaitQueue::new())))
        };
        queue.wait().await;
    }

    pub(crate) fn wake_page(&self, vpn: u64) {
        if let Some(q) = self.page_waiters.borrow_mut().remove(vpn) {
            q.wake_all();
        }
    }

    /// Drains stolen interrupt time for `core` without performing an
    /// access (used by workloads during pure-compute stretches).
    pub fn take_stolen(&self, core: CoreId) -> Nanos {
        self.ic.take_stolen(core)
    }

    /// Multiplies `compute_ns` by the configured virtualization inflation.
    pub fn inflate_compute(&self, compute_ns: Nanos) -> Nanos {
        compute_ns + compute_ns * self.cfg.costs.os.compute_inflation_pct as u64 / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;

    fn small_machine(cfg: SystemConfig) -> (Simulation, Rc<FarMemory>, Vma) {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages: 512,
            remote_pages: 4_096,
            tlb_entries: 64,
            seed: 7,
        };
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(1_024);
        engine.populate(&vma);
        (sim, engine, vma)
    }

    #[test]
    fn populate_splits_local_and_remote() {
        let (_sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let mut local = 0;
        let mut remote = 0;
        for i in 0..vma.pages {
            let pte = engine.pt.get(vma.start_vpn + i);
            if pte.is_present() {
                local += 1;
            } else {
                assert!(pte.is_remote());
                remote += 1;
            }
        }
        assert!(local > 0 && remote > 0);
        assert_eq!(local + remote, 1_024);
        // Free pages left at the high watermark.
        assert_eq!(engine.allocator().free_frames(), engine.high_watermark());
        assert_eq!(engine.accounting().resident_pages(), local);
    }

    #[test]
    fn default_seams_are_the_papers() {
        let (_sim, engine, _vma) = small_machine(SystemConfig::mage_lib());
        assert_eq!(engine.backend().name(), "rdma");
        assert_eq!(engine.eviction_policy().name(), "second-chance");
    }

    #[test]
    fn populate_all_remote_leaves_nothing_local() {
        let (_sim, engine, _vma) = small_machine(SystemConfig::mage_lib());
        let vma2 = engine.mmap(256);
        engine.populate_all_remote(&vma2);
        for i in 0..vma2.pages {
            assert!(engine.pt.get(vma2.start_vpn + i).is_remote());
        }
    }
}
