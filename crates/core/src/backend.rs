//! The far-memory backend seam: where evicted pages live and how bytes
//! move there.
//!
//! The engine's fault and eviction paths do not talk to a NIC, a memory
//! node or a slot allocator directly — they go through [`FarBackend`],
//! which bundles the three concerns every backend must answer:
//!
//! - **data movement** ([`FarBackend::read_page`] / [`FarBackend::write_page`]):
//!   posting a transfer returns a [`Completion`] future whose resolution
//!   time is fixed at post time, which is what lets the pipelined evictor
//!   (§4.1) post a batch of writes and harvest completions later;
//! - **placement** ([`FarBackend::alloc_slot`] / [`FarBackend::release_slot`] /
//!   [`FarBackend::seed_slot`]): mapping an evicted page to a backend slot,
//!   either address-derived (VMA direct mapping, §4.2.3) or dynamically
//!   allocated (swap-style);
//! - **capacity** ([`FarBackend::node`]): region registration against the
//!   passive node's exported bytes.
//!
//! Two implementations ship with the engine: [`RdmaBackend`] (the paper's
//! testbed — one-sided RDMA to a single passive memory node) and
//! [`DisaggTier`] (a higher-latency disaggregated tier behind a switch
//! hop with dynamic slot placement), selected via
//! [`BackendKind`](crate::config::BackendKind). Adding a backend is a new
//! file implementing this trait plus a `BackendKind::Custom` constructor —
//! no engine edits.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use mage_fabric::{Completion, MemoryNode, Nic, NicConfig, NodeId};
use mage_mmu::PAGE_SIZE;
use mage_palloc::{RemoteAllocator, SwapBitmap};
use mage_sim::slab::PageMap;
use mage_sim::stats::Counter;
use mage_sim::time::Nanos;
use mage_sim::SimHandle;

use crate::config::{RemoteAllocKind, SystemConfig};

/// A boxed local future, the dyn-compatible shape of the backend's async
/// placement operations (the simulator is single-threaded, so no `Send`).
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Everything a far-memory backend must provide to the engine.
pub trait FarBackend {
    /// Display name (for reports and examples).
    fn name(&self) -> &'static str;

    /// Posts a one-sided read of `bytes` from far memory; the completion
    /// resolves when the data has arrived.
    fn read_page(&self, bytes: u64) -> Completion;

    /// Posts a one-sided write of `bytes` to far memory; the completion
    /// resolves when the write is durable.
    fn write_page(&self, bytes: u64) -> Completion;

    /// Resolves the backend slot for an eviction of a page whose VMA
    /// direct-maps it to `direct_rpn`. Returns `None` when the backend is
    /// out of capacity (the engine then skips the candidate).
    fn alloc_slot<'a>(&'a self, direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>>;

    /// Releases a slot when its page is faulted back in. Direct-mapping
    /// backends keep the address-derived slot reserved and do nothing.
    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()>;

    /// Synchronously allocates a slot during setup (no virtual time).
    fn seed_slot(&self, direct_rpn: u64) -> Option<u64>;

    /// Whether clean pages must be written on eviction because their
    /// previous backend copy is no longer addressable (fresh slot per
    /// eviction). Direct mapping keeps clean copies valid and skips the
    /// write.
    fn writes_clean_pages(&self) -> bool;

    /// The transfer link (bandwidth/latency model and transfer stats).
    fn link(&self) -> &Rc<Nic>;

    /// The passive node's capacity bookkeeping.
    fn node(&self) -> &MemoryNode;

    /// Posts a read of `bytes` for the page stored in slot `rpn`.
    /// Replication-aware backends route the read to a node holding a
    /// synced replica; plain backends ignore the slot and behave exactly
    /// like [`FarBackend::read_page`].
    fn read_page_at(&self, rpn: u64, bytes: u64) -> Completion {
        let _ = rpn;
        self.read_page(bytes)
    }

    /// Posts a write of `bytes` for the page stored in slot `rpn`.
    /// Replication-aware backends mirror the write to every replica;
    /// plain backends ignore the slot.
    fn write_page_at(&self, rpn: u64, bytes: u64) -> Completion {
        let _ = rpn;
        self.write_page(bytes)
    }

    /// After a node-unreachable read failure on slot `rpn`, posts one
    /// read to an alternate synced, reachable replica if the backend has
    /// one. `None` (the default, and the only answer for unreplicated
    /// backends) sends the caller down the ordinary retry path.
    fn failover_read(&self, rpn: u64, bytes: u64) -> Option<Completion> {
        let _ = (rpn, bytes);
        None
    }

    /// Replica states of slot `rpn` in slot order (primary first), if the
    /// backend replicates and tracks that slot.
    fn replica_states(&self, rpn: u64) -> Option<[ReplicaState; 2]> {
        let _ = rpn;
        None
    }

    /// Replication counters, if the backend replicates.
    fn replication_stats(&self) -> Option<&ReplicationStats> {
        None
    }

    /// Number of tracked slots currently carrying at least one degraded
    /// replica (always 0 for unreplicated backends).
    fn degraded_pages(&self) -> u64 {
        0
    }

    /// Number of slots the backend currently tracks replica state for
    /// (always 0 for unreplicated backends). Host metadata must stay
    /// proportional to this — touched slots — never to the largest slot
    /// number; the sparse-space regression tests assert it.
    fn replica_entries(&self) -> u64 {
        0
    }

    /// Stops background tasks (the re-replication monitor); called once
    /// from engine shutdown. A no-op for backends without such tasks.
    fn shutdown(&self) {}
}

/// State of one replica of one remote page.
///
/// The legal machine is `Synced ↔ Degraded → Rebuilding → Synced` (plus
/// `Rebuilding → Degraded` when a repair write fails): a replica degrades
/// when its home node crashes or a mirrored write to it fails, enters
/// `Rebuilding` while a background repair copy is in flight, and returns
/// to `Synced` when the copy lands (or directly, when a fresh mirrored
/// writeback supersedes the stale copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// The replica holds the current page contents.
    Synced,
    /// The replica is stale or lost (node crash / failed mirror write).
    Degraded,
    /// A background repair copy to this replica is in flight.
    Rebuilding,
}

impl ReplicaState {
    /// Whether moving `from → to` follows the legal machine. Same-state
    /// writes are treated as no-ops by the table and never get here.
    pub fn legal_transition(from: ReplicaState, to: ReplicaState) -> bool {
        use ReplicaState::*;
        matches!(
            (from, to),
            (Synced, Degraded)
                | (Degraded, Synced)
                | (Degraded, Rebuilding)
                | (Rebuilding, Synced)
                | (Rebuilding, Degraded)
        )
    }
}

/// Counters of the replication layer (owned by the backend, surfaced via
/// [`FarBackend::replication_stats`]).
#[derive(Default)]
pub struct ReplicationStats {
    /// Replicas rebuilt by the background repair task.
    pub rereplicated_pages: Counter,
    /// Synced/Rebuilding → Degraded transitions (crash marks and failed
    /// mirror writes).
    pub degraded_marks: Counter,
    /// Replica-state writes that violated the legal machine (always 0 for
    /// a correct engine; the mage-check oracle reads this).
    pub illegal_transitions: Counter,
}

/// How remote pages are replicated across simulated memory nodes.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationConfig {
    /// Number of memory nodes replicas spread across (clamped to ≥ 2).
    /// Each page keeps two replicas: the primary on node `rpn % nodes`,
    /// the backup on the next node.
    pub nodes: usize,
    /// Poll interval of the crash monitor / background repair task, ns.
    /// Must be at most the shortest configured outage window, or an
    /// outage could fall entirely between two polls and never degrade
    /// the replicas it wiped.
    pub repair_poll_ns: Nanos,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            nodes: 2,
            repair_poll_ns: 10_000,
        }
    }
}

/// The paper's testbed backend: one-sided RDMA verbs to a single passive
/// memory node, with the remote-slot policy taken from
/// [`RemoteAllocKind`] (VMA direct mapping for DiLOS/MAGE, a swap-slot
/// bitmap behind a global lock for Hermit).
pub struct RdmaBackend {
    nic: Rc<Nic>,
    node: MemoryNode,
    slots: RemoteAllocator,
}

impl RdmaBackend {
    /// Builds the backend from the system's NIC config and remote-slot
    /// policy.
    pub fn new(sim: SimHandle, cfg: &SystemConfig, remote_pages: u64) -> Self {
        let slots = match cfg.remote_alloc {
            RemoteAllocKind::DirectMap => RemoteAllocator::DirectMap,
            RemoteAllocKind::SwapLock => RemoteAllocator::Swap(Box::new(SwapBitmap::new(
                sim.clone(),
                remote_pages,
                cfg.costs.swap_slot_ns,
            ))),
        };
        RdmaBackend {
            nic: Rc::new(Nic::with_node_faults(
                sim,
                cfg.nic.clone(),
                cfg.faults.clone(),
                cfg.node_faults.clone(),
            )),
            node: MemoryNode::new(
                remote_pages
                    .checked_mul(PAGE_SIZE)
                    .expect("remote capacity (remote_pages * PAGE_SIZE) overflows u64"),
            ),
            slots,
        }
    }
}

impl FarBackend for RdmaBackend {
    fn name(&self) -> &'static str {
        "rdma"
    }

    fn read_page(&self, bytes: u64) -> Completion {
        self.nic.post_read(bytes)
    }

    fn write_page(&self, bytes: u64) -> Completion {
        self.nic.post_write(bytes)
    }

    fn alloc_slot<'a>(&'a self, direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>> {
        Box::pin(self.slots.alloc_for(direct_rpn))
    }

    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()> {
        Box::pin(self.slots.release(rpn))
    }

    fn seed_slot(&self, direct_rpn: u64) -> Option<u64> {
        match &self.slots {
            RemoteAllocator::DirectMap => Some(direct_rpn),
            RemoteAllocator::Swap(bitmap) => bitmap.seed_alloc(),
        }
    }

    fn writes_clean_pages(&self) -> bool {
        self.slots.is_synchronized()
    }

    fn link(&self) -> &Rc<Nic> {
        &self.nic
    }

    fn node(&self) -> &MemoryNode {
        &self.node
    }
}

/// A disaggregated memory tier reached through a switch hop (pooled
/// CXL-/fabric-attached memory rather than a directly-cabled RDMA node).
///
/// Differences from [`RdmaBackend`], all expressed through the trait seam
/// with no engine changes:
///
/// - every transfer pays an extra `hop_ns` each way on top of the link's
///   base latency (folded into the link model at construction);
/// - placement is dynamic: the pool is shared, so slots are allocated
///   from a bitmap on eviction and freed on fault-in — there is no
///   address-derived home, which also means clean pages must be
///   re-written on every eviction ([`FarBackend::writes_clean_pages`]).
pub struct DisaggTier {
    nic: Rc<Nic>,
    node: MemoryNode,
    slots: SwapBitmap,
}

impl DisaggTier {
    /// Builds the tier from the system's NIC config, adding `hop_ns` of
    /// switch latency per direction.
    pub fn new(sim: SimHandle, cfg: &SystemConfig, remote_pages: u64, hop_ns: u64) -> Self {
        let link = NicConfig {
            base_read_ns: cfg.nic.base_read_ns + 2 * hop_ns,
            base_write_ns: cfg.nic.base_write_ns + 2 * hop_ns,
            ..cfg.nic.clone()
        };
        DisaggTier {
            nic: Rc::new(Nic::with_node_faults(
                sim.clone(),
                link,
                cfg.faults.clone(),
                cfg.node_faults.clone(),
            )),
            node: MemoryNode::new(
                remote_pages
                    .checked_mul(PAGE_SIZE)
                    .expect("remote capacity (remote_pages * PAGE_SIZE) overflows u64"),
            ),
            // Pool-side slot table: cheap (the tier's controller owns it),
            // but a real allocation nonetheless.
            slots: SwapBitmap::new(sim, remote_pages, cfg.costs.swap_slot_ns / 4),
        }
    }
}

impl FarBackend for DisaggTier {
    fn name(&self) -> &'static str {
        "disagg-tier"
    }

    fn read_page(&self, bytes: u64) -> Completion {
        self.nic.post_read(bytes)
    }

    fn write_page(&self, bytes: u64) -> Completion {
        self.nic.post_write(bytes)
    }

    fn alloc_slot<'a>(&'a self, _direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>> {
        Box::pin(self.slots.alloc())
    }

    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()> {
        Box::pin(self.slots.free(rpn))
    }

    fn seed_slot(&self, _direct_rpn: u64) -> Option<u64> {
        self.slots.seed_alloc()
    }

    fn writes_clean_pages(&self) -> bool {
        true
    }

    fn link(&self) -> &Rc<Nic> {
        &self.nic
    }

    fn node(&self) -> &MemoryNode {
        &self.node
    }
}

/// Shared replica bookkeeping of [`ReplicatedBackend`]: a sparse
/// rpn-keyed [`PageMap`] of per-replica states plus the replication
/// counters.
///
/// Sparse on purpose: with VMA-direct mapping the slot number *is* the
/// remote page number, so a single access to a high vpn produces a high
/// rpn — a dense `Vec` indexed by rpn (the previous representation)
/// would resize to the max touched rpn and allocate gigabytes of `None`s
/// for one page. The map costs O(tracked slots) instead. Iteration
/// (crash marks, repair scans) is over [`PageMap::iter_sorted`] —
/// explicitly ascending-rpn, matching the old dense-vector index order —
/// because repair order is part of the deterministic schedule and must
/// not depend on hash-bucket layout.
struct ReplicaTable {
    nodes: u32,
    states: RefCell<PageMap<[ReplicaState; 2]>>,
    stats: ReplicationStats,
    stop: Cell<bool>,
    break_rereplication: bool,
}

impl ReplicaTable {
    /// Home node of replica `slot` of page `rpn`: primaries spread across
    /// all nodes, the backup lives on the next node over, so every node
    /// carries both roles and a single outage degrades both kinds.
    fn home(&self, rpn: u64, slot: usize) -> NodeId {
        NodeId(((rpn + slot as u64) % self.nodes as u64) as u32)
    }

    fn get(&self, rpn: u64) -> Option<[ReplicaState; 2]> {
        self.states.borrow().get(rpn).copied()
    }

    /// Starts tracking `rpn` with `init` states; keeps existing states if
    /// the slot is already tracked (direct-mapped backends reuse the same
    /// slot across evict/fault cycles and its remote copies stay valid).
    fn track(&self, rpn: u64, init: [ReplicaState; 2]) {
        let mut states = self.states.borrow_mut();
        states.get_or_insert_with(rpn, || init);
    }

    fn untrack(&self, rpn: u64) {
        self.states.borrow_mut().remove(rpn);
    }

    /// Slots currently tracked (the table's entire host footprint).
    fn entries(&self) -> u64 {
        self.states.borrow().len() as u64
    }

    /// Legality-checked state write; same-state writes are no-ops. All
    /// replica-state movement funnels through here, so the mage-check
    /// oracle can read `illegal_transitions` as "the machine was obeyed".
    fn set(&self, rpn: u64, slot: usize, to: ReplicaState) {
        let mut states = self.states.borrow_mut();
        let Some(entry) = states.get_mut(rpn) else {
            return;
        };
        let from = entry[slot];
        if from == to {
            return;
        }
        if !ReplicaState::legal_transition(from, to) {
            self.stats.illegal_transitions.inc();
        }
        if to == ReplicaState::Degraded {
            self.stats.degraded_marks.inc();
        }
        entry[slot] = to;
    }

    /// Guarded state write: moves `slot` to `to` only if it still holds
    /// `expect`. The repair task uses this so a completion racing with a
    /// crash mark or a fresh mirrored writeback never clobbers it.
    fn set_if(&self, rpn: u64, slot: usize, expect: ReplicaState, to: ReplicaState) -> bool {
        let holds = self.get(rpn).is_some_and(|s| s[slot] == expect);
        if holds {
            self.set(rpn, slot, to);
        }
        holds
    }

    /// Marks every Synced/Rebuilding replica homed on `node` as Degraded:
    /// memory nodes are volatile, so an outage wipes what they held.
    /// Iterates in ascending-rpn order ([`PageMap::iter_sorted`]): mark
    /// order feeds the stats counters and must stay deterministic.
    fn degrade_node(&self, node: NodeId) {
        let mut marks = Vec::new();
        {
            let states = self.states.borrow();
            for (rpn, s) in states.iter_sorted() {
                for (slot, st) in s.iter().enumerate() {
                    if self.home(rpn, slot) == node && *st != ReplicaState::Degraded {
                        marks.push((rpn, slot));
                    }
                }
            }
        }
        for (rpn, slot) in marks {
            self.set(rpn, slot, ReplicaState::Degraded);
        }
    }

    /// Degraded replicas that can be repaired right now: their home node
    /// is reachable and the page still has a Synced copy to read from.
    /// The planted `break_rereplication` bug silently skips backup-slot
    /// repairs — exactly the "works until the other node also blinks"
    /// failure the ≥1-synced-replica invariant exists to catch.
    /// Repair order is part of the schedule: the scan walks tracked
    /// slots in ascending-rpn order ([`PageMap::iter_sorted`]) — the
    /// same order the old dense vector's index walk produced — so the
    /// repair batch (and every completion it awaits) is a pure function
    /// of the tracked set, never of hash-bucket layout.
    fn scan_repairs(&self, nic: &Nic) -> Vec<(u64, usize)> {
        let states = self.states.borrow();
        let mut out = Vec::new();
        for (rpn, s) in states.iter_sorted() {
            if !s.contains(&ReplicaState::Synced) {
                continue;
            }
            for (slot, st) in s.iter().enumerate() {
                if *st != ReplicaState::Degraded {
                    continue;
                }
                if self.break_rereplication && slot == 1 {
                    continue;
                }
                if nic.node_reachable(self.home(rpn, slot)) {
                    out.push((rpn, slot));
                }
            }
        }
        out
    }

    fn degraded_pages(&self) -> u64 {
        self.states
            .borrow()
            .iter_sorted()
            .iter()
            .filter(|(_, s)| s.contains(&ReplicaState::Degraded))
            .count() as u64
    }
}

/// Crash monitor + background repair: polls node reachability, degrades
/// replicas wiped by an outage, and re-replicates them from a surviving
/// synced copy once their home node is back.
async fn replication_monitor(
    sim: SimHandle,
    table: Rc<ReplicaTable>,
    nic: Rc<Nic>,
    poll_ns: Nanos,
) {
    loop {
        sim.sleep(poll_ns).await;
        if table.stop.get() {
            return;
        }
        for n in 0..table.nodes {
            let node = NodeId(n);
            if nic.node_injector(node).is_some() && !nic.node_reachable(node) {
                table.degrade_node(node);
            }
        }
        // Post the whole repair pass in one batch: re-replication is
        // bandwidth-bound, not latency-bound. Copying serially would let
        // a large pass (every page the dead node held) outlive the gap to
        // the *next* node's outage — exactly the window where the last
        // synced replica dies and the page is unrecoverable.
        let mut in_flight = Vec::new();
        for (rpn, slot) in table.scan_repairs(&nic) {
            if !table.set_if(rpn, slot, ReplicaState::Degraded, ReplicaState::Rebuilding) {
                continue;
            }
            in_flight.push((rpn, slot, nic.post_write_to(table.home(rpn, slot), PAGE_SIZE)));
        }
        for (rpn, slot, c) in in_flight {
            match c.await {
                Ok(_) => {
                    // Guarded: a crash mark while the copy was in flight
                    // wins (the node lost the fresh copy too).
                    if table.set_if(rpn, slot, ReplicaState::Rebuilding, ReplicaState::Synced) {
                        table.stats.rereplicated_pages.inc();
                    }
                }
                Err(_) => {
                    table.set_if(rpn, slot, ReplicaState::Rebuilding, ReplicaState::Degraded);
                }
            }
        }
    }
}

/// Replicates any [`FarBackend`] across ≥ 2 simulated memory nodes:
/// writebacks are mirrored to a primary + backup replica, reads route to
/// a synced replica and fail over when the primary's node is mid-crash,
/// and a background task re-replicates degraded pages after the node's
/// recovery window — so a node crash costs failover latency instead of
/// `aborted_faults`.
///
/// Kept deliberately primary/backup-simple (bounded retry, no consensus):
/// the simulation has a single initiator per page at a time, so the
/// agreement problems that push real RDMA systems toward replicated state
/// machines never arise here.
pub struct ReplicatedBackend {
    sim: SimHandle,
    inner: Box<dyn FarBackend>,
    table: Rc<ReplicaTable>,
}

impl ReplicatedBackend {
    /// Wraps `inner`, spawning the crash monitor / repair task on `sim`.
    /// The task runs until [`FarBackend::shutdown`].
    pub fn new(
        sim: SimHandle,
        inner: Box<dyn FarBackend>,
        cfg: ReplicationConfig,
        break_rereplication: bool,
    ) -> Self {
        let table = Rc::new(ReplicaTable {
            nodes: cfg.nodes.max(2) as u32,
            states: RefCell::new(PageMap::new()),
            stats: ReplicationStats::default(),
            stop: Cell::new(false),
            break_rereplication,
        });
        let nic = Rc::clone(inner.link());
        let monitor_sim = sim.clone();
        let monitor_table = Rc::clone(&table);
        sim.spawn(replication_monitor(
            monitor_sim,
            monitor_table,
            nic,
            cfg.repair_poll_ns.max(1),
        ));
        ReplicatedBackend { sim, inner, table }
    }

    /// First slot holding a synced replica, in slot order; falls back to
    /// the primary so an (illegal) zero-synced page still produces a wire
    /// op rather than a panic.
    fn synced_slot(&self, rpn: u64) -> usize {
        self.table
            .get(rpn)
            .and_then(|s| (0..2).find(|&i| s[i] == ReplicaState::Synced))
            .unwrap_or(0)
    }
}

impl FarBackend for ReplicatedBackend {
    fn name(&self) -> &'static str {
        "replicated"
    }

    fn read_page(&self, bytes: u64) -> Completion {
        self.inner.read_page(bytes)
    }

    fn write_page(&self, bytes: u64) -> Completion {
        self.inner.write_page(bytes)
    }

    fn read_page_at(&self, rpn: u64, bytes: u64) -> Completion {
        // Route by replica state only — reachability is *not* consulted,
        // so a crash the monitor has not yet observed genuinely surfaces
        // as NodeUnreachable to the retry layer, which then fails over.
        let slot = self.synced_slot(rpn);
        self.inner
            .link()
            .post_read_to(self.table.home(rpn, slot), bytes)
    }

    fn write_page_at(&self, rpn: u64, bytes: u64) -> Completion {
        let nic = self.inner.link();
        let now = self.sim.now();
        let c0 = nic.post_write_to(self.table.home(rpn, 0), bytes);
        let c1 = nic.post_write_to(self.table.home(rpn, 1), bytes);
        let oks = [c0.outcome().is_ok(), c1.outcome().is_ok()];
        for (slot, ok) in oks.iter().enumerate() {
            let to = if *ok {
                ReplicaState::Synced
            } else {
                ReplicaState::Degraded
            };
            self.table.set(rpn, slot, to);
        }
        // One durable copy settles the writeback; the degraded side is
        // the repair task's problem. Both sides failing falls through to
        // the engine's ordinary write-retry / requeue path.
        let at = c0.completes_at().max(c1.completes_at());
        let result = if oks[0] || oks[1] {
            Ok(())
        } else {
            Err(c0.outcome().unwrap_err())
        };
        Completion::compose(&self.sim, now, at, result, c0.node())
    }

    fn failover_read(&self, rpn: u64, bytes: u64) -> Option<Completion> {
        let s = self.table.get(rpn)?;
        let nic = self.inner.link();
        let slot = (0..2).find(|&i| {
            s[i] == ReplicaState::Synced && nic.node_reachable(self.table.home(rpn, i))
        })?;
        Some(nic.post_read_to(self.table.home(rpn, slot), bytes))
    }

    fn alloc_slot<'a>(&'a self, direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>> {
        Box::pin(async move {
            let rpn = self.inner.alloc_slot(direct_rpn).await?;
            // Fresh slots hold no data yet; the mirrored writeback that
            // follows promotes both replicas. Already-tracked slots (a
            // direct-mapped page re-evicted clean) keep their states.
            self.table
                .track(rpn, [ReplicaState::Degraded, ReplicaState::Degraded]);
            Some(rpn)
        })
    }

    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()> {
        Box::pin(async move {
            self.inner.release_slot(rpn).await;
            if self.inner.writes_clean_pages() {
                // The slot returns to a pool; its replicas die with it.
                self.table.untrack(rpn);
            }
        })
    }

    fn seed_slot(&self, direct_rpn: u64) -> Option<u64> {
        let rpn = self.inner.seed_slot(direct_rpn)?;
        // Setup-time seeding is wire-free and lands on every replica.
        self.table
            .track(rpn, [ReplicaState::Synced, ReplicaState::Synced]);
        Some(rpn)
    }

    fn writes_clean_pages(&self) -> bool {
        self.inner.writes_clean_pages()
    }

    fn link(&self) -> &Rc<Nic> {
        self.inner.link()
    }

    fn node(&self) -> &MemoryNode {
        self.inner.node()
    }

    fn replica_states(&self, rpn: u64) -> Option<[ReplicaState; 2]> {
        self.table.get(rpn)
    }

    fn replication_stats(&self) -> Option<&ReplicationStats> {
        Some(&self.table.stats)
    }

    fn degraded_pages(&self) -> u64 {
        self.table.degraded_pages()
    }

    fn replica_entries(&self) -> u64 {
        self.table.entries()
    }

    fn shutdown(&self) {
        self.table.stop.set(true);
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;

    #[test]
    fn rdma_backend_direct_map_is_free() {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib();
        let be = Rc::new(RdmaBackend::new(sim.handle(), &cfg, 1_024));
        let b = Rc::clone(&be);
        sim.block_on(async move {
            assert_eq!(b.alloc_slot(77).await, Some(77), "address-derived slot");
            b.release_slot(77).await;
        });
        assert_eq!(sim.run().as_nanos(), 0, "no virtual time consumed");
        assert!(!be.writes_clean_pages());
        assert_eq!(be.seed_slot(5), Some(5));
    }

    #[test]
    fn rdma_backend_swap_lock_allocates() {
        let sim = Simulation::new();
        let cfg = SystemConfig::hermit();
        let be = Rc::new(RdmaBackend::new(sim.handle(), &cfg, 8));
        let b = Rc::clone(&be);
        sim.block_on(async move {
            let slot = b.alloc_slot(999).await.expect("capacity");
            assert_ne!(slot, 999, "bitmap slot, not the direct rpn");
        });
        assert!(be.writes_clean_pages());
    }

    #[test]
    fn disagg_tier_pays_the_hop() {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib();
        let hop = 1_500;
        let be = Rc::new(DisaggTier::new(sim.handle(), &cfg, 1_024, hop));
        let base = cfg.nic.base_read_ns;
        let b = Rc::clone(&be);
        let h = sim.handle();
        let latency = sim.block_on(async move {
            let t0 = h.now();
            b.read_page(PAGE_SIZE).await.unwrap();
            h.now().saturating_since(t0)
        });
        assert!(
            latency >= base + 2 * hop,
            "tier read {latency} must include the switch hop"
        );
        assert!(be.writes_clean_pages(), "pooled slots are fresh every time");
    }

    #[test]
    fn disagg_tier_recycles_slots() {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib();
        let be = Rc::new(DisaggTier::new(sim.handle(), &cfg, 4, 0));
        let b = Rc::clone(&be);
        sim.block_on(async move {
            let mut slots = Vec::new();
            for _ in 0..4 {
                slots.push(b.alloc_slot(0).await.expect("capacity"));
            }
            assert!(b.alloc_slot(0).await.is_none(), "pool exhausted");
            b.release_slot(slots[1]).await;
            assert_eq!(b.alloc_slot(0).await, Some(slots[1]), "slot recycled");
        });
    }

    use mage_fabric::{FaultPlan, TransferError};

    fn replicated(
        sim: &Simulation,
        node_plans: Vec<FaultPlan>,
        break_rereplication: bool,
    ) -> Rc<ReplicatedBackend> {
        let cfg = SystemConfig::mage_lib().with_node_faults(node_plans);
        let inner = Box::new(RdmaBackend::new(sim.handle(), &cfg, 1_024));
        Rc::new(ReplicatedBackend::new(
            sim.handle(),
            inner,
            ReplicationConfig::default(),
            break_rereplication,
        ))
    }

    #[test]
    fn replica_state_machine_legality() {
        use ReplicaState::*;
        for (from, to, legal) in [
            (Synced, Degraded, true),
            (Degraded, Synced, true),
            (Degraded, Rebuilding, true),
            (Rebuilding, Synced, true),
            (Rebuilding, Degraded, true),
            (Synced, Rebuilding, false),
        ] {
            assert_eq!(ReplicaState::legal_transition(from, to), legal, "{from:?}→{to:?}");
        }
    }

    #[test]
    fn mirrored_writeback_promotes_both_replicas() {
        let sim = Simulation::new();
        let be = replicated(&sim, Vec::new(), false);
        let b = Rc::clone(&be);
        sim.block_on(async move {
            let rpn = b.alloc_slot(6).await.expect("capacity");
            assert_eq!(
                b.replica_states(rpn),
                Some([ReplicaState::Degraded, ReplicaState::Degraded]),
                "fresh slot holds no data yet"
            );
            let c = b.write_page_at(rpn, PAGE_SIZE);
            assert!(c.outcome().is_ok(), "mirror merged Ok");
            c.await.unwrap();
            assert_eq!(
                b.replica_states(rpn),
                Some([ReplicaState::Synced, ReplicaState::Synced])
            );
            b.shutdown();
        });
        sim.run();
        assert_eq!(be.degraded_pages(), 0);
    }

    #[test]
    fn seeded_slots_start_fully_synced() {
        let sim = Simulation::new();
        let be = replicated(&sim, Vec::new(), false);
        let rpn = be.seed_slot(9).expect("capacity");
        assert_eq!(
            be.replica_states(rpn),
            Some([ReplicaState::Synced, ReplicaState::Synced])
        );
        assert!(be.failover_read(12_345, PAGE_SIZE).is_none(), "untracked slot");
    }

    #[test]
    fn failover_read_survives_a_primary_outage() {
        let sim = Simulation::new();
        // Node 0 is down for the first 50 µs of every 1 ms period; node 1
        // never blinks.
        let plans = vec![
            FaultPlan::staggered_node_crash(7, 0, 2, 1_000_000, 50_000),
            FaultPlan::none(),
        ];
        let be = replicated(&sim, plans, false);
        let b = Rc::clone(&be);
        sim.block_on(async move {
            // rpn 0: primary homes on node 0 (down), backup on node 1.
            let rpn = b.seed_slot(0).expect("capacity");
            let primary = b.read_page_at(rpn, PAGE_SIZE);
            assert_eq!(
                primary.outcome(),
                Err(TransferError::NodeUnreachable),
                "reads route by state, so the crash surfaces to the caller"
            );
            let alt = b.failover_read(rpn, PAGE_SIZE).expect("backup replica reachable");
            alt.await.expect("failover read completes");
            b.shutdown();
        });
        sim.run();
    }

    #[test]
    fn monitor_degrades_and_repairs_after_recovery() {
        let sim = Simulation::new();
        let plans = vec![
            FaultPlan::staggered_node_crash(7, 0, 2, 1_000_000, 50_000),
            FaultPlan::none(),
        ];
        let be = replicated(&sim, plans, false);
        let b = Rc::clone(&be);
        let h = sim.handle();
        sim.block_on(async move {
            let rpn = b.seed_slot(0).expect("capacity");
            // Mid-outage: the monitor has marked node 0's replica wiped.
            h.sleep(30_000).await;
            assert_eq!(
                b.replica_states(rpn),
                Some([ReplicaState::Degraded, ReplicaState::Synced])
            );
            assert_eq!(b.degraded_pages(), 1);
            // Well past recovery (+ repair poll + copy): re-replicated.
            h.sleep(200_000).await;
            assert_eq!(
                b.replica_states(rpn),
                Some([ReplicaState::Synced, ReplicaState::Synced])
            );
            assert_eq!(b.degraded_pages(), 0);
            let stats = b.replication_stats().unwrap();
            assert!(stats.rereplicated_pages.get() >= 1);
            assert_eq!(stats.illegal_transitions.get(), 0);
            b.shutdown();
        });
        sim.run();
    }

    #[test]
    fn broken_rereplication_leaves_backup_slots_degraded() {
        let sim = Simulation::new();
        // Node 1 blinks once: rpn 0's *backup* replica (slot 1) homes
        // there and gets wiped.
        let plans = vec![
            FaultPlan::none(),
            FaultPlan::staggered_node_crash(7, 0, 2, 1_000_000, 50_000),
        ];
        let be = replicated(&sim, plans, true);
        let b = Rc::clone(&be);
        let h = sim.handle();
        sim.block_on(async move {
            let rpn = b.seed_slot(0).expect("capacity");
            h.sleep(400_000).await;
            assert_eq!(
                b.replica_states(rpn),
                Some([ReplicaState::Synced, ReplicaState::Degraded]),
                "planted bug: backup-slot repairs are silently skipped"
            );
            assert_eq!(b.replication_stats().unwrap().rereplicated_pages.get(), 0);
            b.shutdown();
        });
        sim.run();
    }
}
