//! The far-memory backend seam: where evicted pages live and how bytes
//! move there.
//!
//! The engine's fault and eviction paths do not talk to a NIC, a memory
//! node or a slot allocator directly — they go through [`FarBackend`],
//! which bundles the three concerns every backend must answer:
//!
//! - **data movement** ([`FarBackend::read_page`] / [`FarBackend::write_page`]):
//!   posting a transfer returns a [`Completion`] future whose resolution
//!   time is fixed at post time, which is what lets the pipelined evictor
//!   (§4.1) post a batch of writes and harvest completions later;
//! - **placement** ([`FarBackend::alloc_slot`] / [`FarBackend::release_slot`] /
//!   [`FarBackend::seed_slot`]): mapping an evicted page to a backend slot,
//!   either address-derived (VMA direct mapping, §4.2.3) or dynamically
//!   allocated (swap-style);
//! - **capacity** ([`FarBackend::node`]): region registration against the
//!   passive node's exported bytes.
//!
//! Two implementations ship with the engine: [`RdmaBackend`] (the paper's
//! testbed — one-sided RDMA to a single passive memory node) and
//! [`DisaggTier`] (a higher-latency disaggregated tier behind a switch
//! hop with dynamic slot placement), selected via
//! [`BackendKind`](crate::config::BackendKind). Adding a backend is a new
//! file implementing this trait plus a `BackendKind::Custom` constructor —
//! no engine edits.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use mage_fabric::{Completion, MemoryNode, Nic, NicConfig};
use mage_mmu::PAGE_SIZE;
use mage_palloc::{RemoteAllocator, SwapBitmap};
use mage_sim::SimHandle;

use crate::config::{RemoteAllocKind, SystemConfig};

/// A boxed local future, the dyn-compatible shape of the backend's async
/// placement operations (the simulator is single-threaded, so no `Send`).
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Everything a far-memory backend must provide to the engine.
pub trait FarBackend {
    /// Display name (for reports and examples).
    fn name(&self) -> &'static str;

    /// Posts a one-sided read of `bytes` from far memory; the completion
    /// resolves when the data has arrived.
    fn read_page(&self, bytes: u64) -> Completion;

    /// Posts a one-sided write of `bytes` to far memory; the completion
    /// resolves when the write is durable.
    fn write_page(&self, bytes: u64) -> Completion;

    /// Resolves the backend slot for an eviction of a page whose VMA
    /// direct-maps it to `direct_rpn`. Returns `None` when the backend is
    /// out of capacity (the engine then skips the candidate).
    fn alloc_slot<'a>(&'a self, direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>>;

    /// Releases a slot when its page is faulted back in. Direct-mapping
    /// backends keep the address-derived slot reserved and do nothing.
    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()>;

    /// Synchronously allocates a slot during setup (no virtual time).
    fn seed_slot(&self, direct_rpn: u64) -> Option<u64>;

    /// Whether clean pages must be written on eviction because their
    /// previous backend copy is no longer addressable (fresh slot per
    /// eviction). Direct mapping keeps clean copies valid and skips the
    /// write.
    fn writes_clean_pages(&self) -> bool;

    /// The transfer link (bandwidth/latency model and transfer stats).
    fn link(&self) -> &Rc<Nic>;

    /// The passive node's capacity bookkeeping.
    fn node(&self) -> &MemoryNode;
}

/// The paper's testbed backend: one-sided RDMA verbs to a single passive
/// memory node, with the remote-slot policy taken from
/// [`RemoteAllocKind`] (VMA direct mapping for DiLOS/MAGE, a swap-slot
/// bitmap behind a global lock for Hermit).
pub struct RdmaBackend {
    nic: Rc<Nic>,
    node: MemoryNode,
    slots: RemoteAllocator,
}

impl RdmaBackend {
    /// Builds the backend from the system's NIC config and remote-slot
    /// policy.
    pub fn new(sim: SimHandle, cfg: &SystemConfig, remote_pages: u64) -> Self {
        let slots = match cfg.remote_alloc {
            RemoteAllocKind::DirectMap => RemoteAllocator::DirectMap,
            RemoteAllocKind::SwapLock => RemoteAllocator::Swap(Box::new(SwapBitmap::new(
                sim.clone(),
                remote_pages,
                cfg.costs.swap_slot_ns,
            ))),
        };
        RdmaBackend {
            nic: Rc::new(Nic::with_faults(sim, cfg.nic.clone(), cfg.faults.clone())),
            node: MemoryNode::new(remote_pages * PAGE_SIZE),
            slots,
        }
    }
}

impl FarBackend for RdmaBackend {
    fn name(&self) -> &'static str {
        "rdma"
    }

    fn read_page(&self, bytes: u64) -> Completion {
        self.nic.post_read(bytes)
    }

    fn write_page(&self, bytes: u64) -> Completion {
        self.nic.post_write(bytes)
    }

    fn alloc_slot<'a>(&'a self, direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>> {
        Box::pin(self.slots.alloc_for(direct_rpn))
    }

    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()> {
        Box::pin(self.slots.release(rpn))
    }

    fn seed_slot(&self, direct_rpn: u64) -> Option<u64> {
        match &self.slots {
            RemoteAllocator::DirectMap => Some(direct_rpn),
            RemoteAllocator::Swap(bitmap) => bitmap.seed_alloc(),
        }
    }

    fn writes_clean_pages(&self) -> bool {
        self.slots.is_synchronized()
    }

    fn link(&self) -> &Rc<Nic> {
        &self.nic
    }

    fn node(&self) -> &MemoryNode {
        &self.node
    }
}

/// A disaggregated memory tier reached through a switch hop (pooled
/// CXL-/fabric-attached memory rather than a directly-cabled RDMA node).
///
/// Differences from [`RdmaBackend`], all expressed through the trait seam
/// with no engine changes:
///
/// - every transfer pays an extra `hop_ns` each way on top of the link's
///   base latency (folded into the link model at construction);
/// - placement is dynamic: the pool is shared, so slots are allocated
///   from a bitmap on eviction and freed on fault-in — there is no
///   address-derived home, which also means clean pages must be
///   re-written on every eviction ([`FarBackend::writes_clean_pages`]).
pub struct DisaggTier {
    nic: Rc<Nic>,
    node: MemoryNode,
    slots: SwapBitmap,
}

impl DisaggTier {
    /// Builds the tier from the system's NIC config, adding `hop_ns` of
    /// switch latency per direction.
    pub fn new(sim: SimHandle, cfg: &SystemConfig, remote_pages: u64, hop_ns: u64) -> Self {
        let link = NicConfig {
            base_read_ns: cfg.nic.base_read_ns + 2 * hop_ns,
            base_write_ns: cfg.nic.base_write_ns + 2 * hop_ns,
            ..cfg.nic.clone()
        };
        DisaggTier {
            nic: Rc::new(Nic::with_faults(sim.clone(), link, cfg.faults.clone())),
            node: MemoryNode::new(remote_pages * PAGE_SIZE),
            // Pool-side slot table: cheap (the tier's controller owns it),
            // but a real allocation nonetheless.
            slots: SwapBitmap::new(sim, remote_pages, cfg.costs.swap_slot_ns / 4),
        }
    }
}

impl FarBackend for DisaggTier {
    fn name(&self) -> &'static str {
        "disagg-tier"
    }

    fn read_page(&self, bytes: u64) -> Completion {
        self.nic.post_read(bytes)
    }

    fn write_page(&self, bytes: u64) -> Completion {
        self.nic.post_write(bytes)
    }

    fn alloc_slot<'a>(&'a self, _direct_rpn: u64) -> LocalBoxFuture<'a, Option<u64>> {
        Box::pin(self.slots.alloc())
    }

    fn release_slot<'a>(&'a self, rpn: u64) -> LocalBoxFuture<'a, ()> {
        Box::pin(self.slots.free(rpn))
    }

    fn seed_slot(&self, _direct_rpn: u64) -> Option<u64> {
        self.slots.seed_alloc()
    }

    fn writes_clean_pages(&self) -> bool {
        true
    }

    fn link(&self) -> &Rc<Nic> {
        &self.nic
    }

    fn node(&self) -> &MemoryNode {
        &self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;

    #[test]
    fn rdma_backend_direct_map_is_free() {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib();
        let be = Rc::new(RdmaBackend::new(sim.handle(), &cfg, 1_024));
        let b = Rc::clone(&be);
        sim.block_on(async move {
            assert_eq!(b.alloc_slot(77).await, Some(77), "address-derived slot");
            b.release_slot(77).await;
        });
        assert_eq!(sim.run().as_nanos(), 0, "no virtual time consumed");
        assert!(!be.writes_clean_pages());
        assert_eq!(be.seed_slot(5), Some(5));
    }

    #[test]
    fn rdma_backend_swap_lock_allocates() {
        let sim = Simulation::new();
        let cfg = SystemConfig::hermit();
        let be = Rc::new(RdmaBackend::new(sim.handle(), &cfg, 8));
        let b = Rc::clone(&be);
        sim.block_on(async move {
            let slot = b.alloc_slot(999).await.expect("capacity");
            assert_ne!(slot, 999, "bitmap slot, not the direct rpn");
        });
        assert!(be.writes_clean_pages());
    }

    #[test]
    fn disagg_tier_pays_the_hop() {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib();
        let hop = 1_500;
        let be = Rc::new(DisaggTier::new(sim.handle(), &cfg, 1_024, hop));
        let base = cfg.nic.base_read_ns;
        let b = Rc::clone(&be);
        let h = sim.handle();
        let latency = sim.block_on(async move {
            let t0 = h.now();
            b.read_page(PAGE_SIZE).await.unwrap();
            h.now().saturating_since(t0)
        });
        assert!(
            latency >= base + 2 * hop,
            "tier read {latency} must include the switch hop"
        );
        assert!(be.writes_clean_pages(), "pooled slots are fresh every time");
    }

    #[test]
    fn disagg_tier_recycles_slots() {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib();
        let be = Rc::new(DisaggTier::new(sim.handle(), &cfg, 4, 0));
        let b = Rc::clone(&be);
        sim.block_on(async move {
            let mut slots = Vec::new();
            for _ in 0..4 {
                slots.push(b.alloc_slot(0).await.expect("capacity"));
            }
            assert!(b.alloc_slot(0).await.is_none(), "pool exhausted");
            b.release_slot(slots[1]).await;
            assert_eq!(b.alloc_slot(0).await, Some(slots[1]), "slot recycled");
        });
    }
}
