//! The calibrated cost model: every service time in one place.
//!
//! All values are virtual nanoseconds. Where the paper states a number we
//! use it directly (RDMA latency §3.1, VMexit §3.3.1, fault-handler
//! latencies §6.5); the remainder are calibrated so that the
//! single-thread fault latencies land on the paper's measurements
//! (Hermit ≈ 5.8 µs, DiLOS ≈ 4.7 µs with a 3.9 µs RDMA read inside,
//! §6.5 "Regression test").

use mage_mmu::IpiCostModel;
use mage_sim::time::Nanos;

/// Per-fault and per-eviction OS work profile of a system.
///
/// These are fixed-work CPU costs; *where* they are spent (inside which
/// lock, on which path) is decided by the engine, which is what makes
/// them scale differently per system.
#[derive(Clone, Debug)]
pub struct OsProfile {
    /// Trap entry, exception dispatch, fault bookkeeping.
    pub fault_entry_ns: Nanos,
    /// Page-table walk on a TLB miss.
    pub pt_walk_ns: Nanos,
    /// PTE read-modify-write (map or unmap one page).
    pub pte_update_ns: Nanos,
    /// Linux reverse-mapping + cgroup accounting per page (zero on
    /// unikernels; §3.2 "complex memory management functionality").
    pub rmap_cgroup_ns: Nanos,
    /// Swap-cache maintenance per fault/evict (zero when the unified page
    /// table replaces the swap cache, §5.2).
    pub swapcache_ns: Nanos,
    /// CPU cost to post one RDMA work request (driver + doorbell). The
    /// Linux RDMA stack (MAGE-Lnx) pays more than the microkernel-style
    /// driver of DiLOS/MAGE-Lib (§6.4).
    pub rdma_post_cpu_ns: Nanos,
    /// Multiplicative inflation of application compute under
    /// virtualization (EPT translations, Table 2), in percent.
    pub compute_inflation_pct: u32,
}

impl OsProfile {
    /// Linux bare-metal profile (Hermit).
    pub fn linux_bare_metal() -> Self {
        OsProfile {
            fault_entry_ns: 700,
            pt_walk_ns: 150,
            pte_update_ns: 150,
            rmap_cgroup_ns: 500,
            swapcache_ns: 400,
            rdma_post_cpu_ns: 300,
            compute_inflation_pct: 0,
        }
    }

    /// Linux-in-VM profile (MAGE-Lnx): Linux data paths minus the layers
    /// MAGE bypasses (swap layer skipped, rmap shortcuts adopted from
    /// Hermit, §5.1), plus virtualization and the slower kernel RDMA
    /// stack.
    pub fn mage_lnx() -> Self {
        OsProfile {
            fault_entry_ns: 700,
            pt_walk_ns: 150,
            pte_update_ns: 150,
            rmap_cgroup_ns: 150, // Hermit's rmap bypasses + interval shards
            swapcache_ns: 0,     // Linux swap layer skipped entirely
            rdma_post_cpu_ns: 600,
            compute_inflation_pct: 4,
        }
    }

    /// Unikernel-in-VM profile (DiLOS, MAGE-Lib): thin fault entry, no
    /// rmap/cgroup/swap-cache, fast userspace RDMA driver.
    pub fn unikernel() -> Self {
        OsProfile {
            fault_entry_ns: 250,
            pt_walk_ns: 150,
            pte_update_ns: 150,
            rmap_cgroup_ns: 0,
            swapcache_ns: 0,
            rdma_post_cpu_ns: 200,
            compute_inflation_pct: 4,
        }
    }

    /// The zero-overhead profile of the analytic "ideal" system (§3.1).
    pub fn ideal() -> Self {
        OsProfile {
            fault_entry_ns: 0,
            pt_walk_ns: 0,
            pte_update_ns: 0,
            rmap_cgroup_ns: 0,
            swapcache_ns: 0,
            rdma_post_cpu_ns: 0,
            compute_inflation_pct: 0,
        }
    }

    /// Total fixed CPU work on the fault path outside locks.
    pub fn fault_fixed_ns(&self) -> Nanos {
        self.fault_entry_ns + self.pt_walk_ns + self.pte_update_ns + self.swapcache_ns
    }
}

/// Bundles every substrate cost model for one simulated system.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// OS work profile.
    pub os: OsProfile,
    /// IPI / TLB shootdown costs.
    pub ipi: IpiCostModel,
    /// Local allocator service times.
    pub alloc: mage_palloc::local::LocalAllocCosts,
    /// Page-accounting service times.
    pub accounting: mage_accounting::AccountingCosts,
    /// Swap-slot allocation critical section (Hermit only).
    pub swap_slot_ns: Nanos,
    /// VMA/address-space lock hold time per fault.
    pub vma_lock_hold_ns: Nanos,
    /// Hardware page-table walk on a TLB miss with a present PTE (no OS
    /// involvement).
    pub hw_walk_ns: Nanos,
    /// Per-page CPU cost of posting doorbell-batched eviction writes
    /// (much cheaper than a standalone post).
    pub evict_post_per_page_ns: Nanos,
    /// Evictor idle backoff: how long an evictor sleeps when it finds no
    /// work (no deficit / empty scan / stalled pipeline). A polling
    /// cadence, not a service time — it must stay non-zero even in the
    /// ideal model or idle evictors would spin without advancing time.
    pub evictor_idle_ns: Nanos,
    /// Sleep of a parked evictor (beyond the active pool) between checks
    /// for having been scaled back in.
    pub evictor_parked_ns: Nanos,
    /// Poll interval of the feedback-directed scaling controller
    /// (Hermit-style dynamic evictor pools).
    pub scaling_poll_ns: Nanos,
}

impl CostModel {
    /// Cost model for a given OS profile on bare metal or in a VM.
    pub fn new(os: OsProfile, virtualized: bool) -> Self {
        CostModel {
            os,
            ipi: if virtualized {
                IpiCostModel::virtualized()
            } else {
                IpiCostModel::bare_metal()
            },
            alloc: mage_palloc::local::LocalAllocCosts::default(),
            accounting: mage_accounting::AccountingCosts::default(),
            swap_slot_ns: 800,
            vma_lock_hold_ns: 120,
            hw_walk_ns: 60,
            evict_post_per_page_ns: 50,
            evictor_idle_ns: 10_000,
            evictor_parked_ns: 100_000,
            scaling_poll_ns: 100_000,
        }
    }

    /// The all-zero cost model of the ideal system.
    pub fn ideal() -> Self {
        CostModel {
            os: OsProfile::ideal(),
            ipi: IpiCostModel {
                send_ns: 0,
                wire_same_socket_ns: 0,
                wire_cross_socket_ns: 0,
                vmexit_ns: 0,
                handler_base_ns: 0,
                invlpg_ns: 0,
                full_flush_threshold: u32::MAX,
                full_flush_ns: 0,
            },
            alloc: mage_palloc::local::LocalAllocCosts {
                cache_op_ns: 0,
                queue_op_ns: 0,
                buddy_op_ns: 0,
                buddy_bulk_per_frame_ns: 0,
                batch: 64,
            },
            accounting: mage_accounting::AccountingCosts {
                list_op_ns: 0,
                pop_per_page_ns: 0,
                scan_per_page_ns: 0,
            },
            swap_slot_ns: 0,
            vma_lock_hold_ns: 0,
            hw_walk_ns: 0,
            evict_post_per_page_ns: 0,
            // Polling cadences, not costs: identical to the calibrated
            // model so the ideal system's evictors neither spin nor drift
            // from the default schedule.
            evictor_idle_ns: 10_000,
            evictor_parked_ns: 100_000,
            scaling_poll_ns: 100_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_weight() {
        let linux = OsProfile::linux_bare_metal();
        let uni = OsProfile::unikernel();
        assert!(linux.fault_fixed_ns() > uni.fault_fixed_ns());
        assert_eq!(OsProfile::ideal().fault_fixed_ns(), 0);
    }

    #[test]
    fn virtualization_selects_vmexit() {
        let bare = CostModel::new(OsProfile::linux_bare_metal(), false);
        let virt = CostModel::new(OsProfile::unikernel(), true);
        assert_eq!(bare.ipi.vmexit_ns, 0);
        assert!(virt.ipi.vmexit_ns > 0);
    }

    #[test]
    fn ideal_model_is_all_zero() {
        let m = CostModel::ideal();
        assert_eq!(m.os.fault_fixed_ns(), 0);
        assert_eq!(m.ipi.handler_cost(256), 0);
        assert_eq!(m.alloc.buddy_op_ns, 0);
    }
}
