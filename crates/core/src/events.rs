//! Page-lifecycle event stream, for external observers.
//!
//! The engine emits one [`PageEvent`] at every point where a page's
//! abstract state changes: initial placement, fetch (fault or prefetch)
//! start/install/abort, eviction staging, cancellation, requeue and
//! reclaim. A registered [`EventSink`] sees the events in program order,
//! synchronously, at the exact instant the corresponding PTE mutation
//! happens — there is no buffering and no await between the state change
//! and the notification, so a sink always observes a consistent machine.
//!
//! The stream exists for differential checking: the `mage-check` crate
//! replays it through an abstract per-page state machine
//! (Local/Remote/InFlight/Evicting) and cross-checks the abstract state
//! against the concrete PTE/TLB contents at quiescent points. With no
//! sink registered the tap is a single `is_empty()` test per event site,
//! so the default path stays schedule-identical.

use std::rc::Rc;

/// One page-lifecycle transition, identified by virtual page number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageEvent {
    /// Setup-time placement by `populate`/`populate_all_remote`.
    Placed {
        /// Virtual page number.
        vpn: u64,
        /// True if placed resident, false if placed in far memory.
        local: bool,
    },
    /// A fault or prefetch acquired the PTE lock on a non-present page
    /// and will fetch it.
    FetchStart {
        /// Virtual page number.
        vpn: u64,
    },
    /// The in-flight fetch installed the page.
    Installed {
        /// Virtual page number.
        vpn: u64,
        /// Local frame now backing the page.
        frame: u64,
    },
    /// The in-flight fetch rolled back (transfer failure, or a prefetch
    /// that found no free frame); the page is remote and unlocked again.
    FetchAborted {
        /// Virtual page number.
        vpn: u64,
    },
    /// Eviction staged the page: PTE remote + locked, frame parked in
    /// the `evicting` table until settlement.
    Unmapped {
        /// Virtual page number.
        vpn: u64,
        /// Frame parked for this eviction.
        frame: u64,
    },
    /// A refault cancelled the in-flight eviction and re-mapped the
    /// still-intact frame (swap-cache refault).
    EvictCancelled {
        /// Virtual page number.
        vpn: u64,
        /// Frame returned to the page.
        frame: u64,
    },
    /// The writeback never became durable; the victim was re-mapped
    /// local (dirty) and re-inserted into accounting.
    Requeued {
        /// Virtual page number.
        vpn: u64,
        /// Frame returned to the page.
        frame: u64,
    },
    /// Eviction settled: the frame was reclaimed and the page is fully
    /// remote and unlocked.
    Reclaimed {
        /// Virtual page number.
        vpn: u64,
        /// Frame returned to the free pool.
        frame: u64,
    },
}

impl PageEvent {
    /// The virtual page number this event concerns.
    pub fn vpn(&self) -> u64 {
        match *self {
            PageEvent::Placed { vpn, .. }
            | PageEvent::FetchStart { vpn }
            | PageEvent::Installed { vpn, .. }
            | PageEvent::FetchAborted { vpn }
            | PageEvent::Unmapped { vpn, .. }
            | PageEvent::EvictCancelled { vpn, .. }
            | PageEvent::Requeued { vpn, .. }
            | PageEvent::Reclaimed { vpn, .. } => vpn,
        }
    }
}

/// Observer of the page-lifecycle event stream.
///
/// Sinks are called synchronously from inside the engine; they must not
/// re-enter the engine (read-only inspection of the page table is fine).
pub trait EventSink {
    /// Called once per transition, in program order.
    fn on_event(&self, event: PageEvent);
}

/// The tap: an ordered list of registered sinks.
#[derive(Default)]
pub(crate) struct EventTap {
    sinks: std::cell::RefCell<Vec<Rc<dyn EventSink>>>,
}

impl EventTap {
    pub(crate) fn register(&self, sink: Rc<dyn EventSink>) {
        self.sinks.borrow_mut().push(sink);
    }

    #[inline]
    pub(crate) fn emit(&self, event: PageEvent) {
        let sinks = self.sinks.borrow();
        for sink in sinks.iter() {
            sink.on_event(event);
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.sinks.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    struct Collect(RefCell<Vec<PageEvent>>);
    impl EventSink for Collect {
        fn on_event(&self, event: PageEvent) {
            self.0.borrow_mut().push(event);
        }
    }

    #[test]
    fn tap_delivers_in_order_to_every_sink() {
        let tap = EventTap::default();
        assert!(tap.is_empty());
        let a = Rc::new(Collect(RefCell::new(Vec::new())));
        let b = Rc::new(Collect(RefCell::new(Vec::new())));
        tap.register(Rc::clone(&a) as Rc<dyn EventSink>);
        tap.register(Rc::clone(&b) as Rc<dyn EventSink>);
        assert!(!tap.is_empty());
        let events = [
            PageEvent::Placed { vpn: 1, local: true },
            PageEvent::Unmapped { vpn: 1, frame: 9 },
            PageEvent::Reclaimed { vpn: 1, frame: 9 },
        ];
        for e in events {
            tap.emit(e);
        }
        assert_eq!(*a.0.borrow(), events);
        assert_eq!(*b.0.borrow(), events);
    }

    #[test]
    fn vpn_accessor_covers_every_variant() {
        let all = [
            PageEvent::Placed { vpn: 7, local: false },
            PageEvent::FetchStart { vpn: 7 },
            PageEvent::Installed { vpn: 7, frame: 1 },
            PageEvent::FetchAborted { vpn: 7 },
            PageEvent::Unmapped { vpn: 7, frame: 1 },
            PageEvent::EvictCancelled { vpn: 7, frame: 1 },
            PageEvent::Requeued { vpn: 7, frame: 1 },
            PageEvent::Reclaimed { vpn: 7, frame: 1 },
        ];
        for e in all {
            assert_eq!(e.vpn(), 7);
        }
    }
}
