//! System configurations: one engine, many far-memory systems.
//!
//! Every system the paper evaluates is a configuration of the same engine
//! (DESIGN.md §4.4), so ablations toggle exactly one knob at a time:
//!
//! | knob | Hermit | DiLOS | MAGE-Lib | MAGE-Lnx |
//! |---|---|---|---|---|
//! | accounting | global LRU | global LRU | partitioned LRU | FIFO queues |
//! | local alloc | per-CPU cache | global buddy | multi-layer | multi-layer |
//! | remote alloc | swap lock | direct map | direct map | direct map |
//! | VMA lock | global | none | none | sharded |
//! | sync eviction | yes | yes | **no** | **no** |
//! | pipelined EP | no | no | **yes** | **yes** |
//! | evictors | dynamic ≤32 | 4 | 4 fixed | 4 fixed |
//! | prefetch | readahead | readahead | readahead | none |
//! | virtualized | no (bare metal) | yes | yes | yes |

use mage_accounting::AccountingKind;
use mage_fabric::{FaultPlan, NicConfig};
use mage_mmu::VmaLockModel;
use mage_palloc::LocalAllocatorKind;
use mage_sim::time::Nanos;
use mage_sim::SimHandle;

use crate::backend::{DisaggTier, FarBackend, RdmaBackend, ReplicationConfig};
use crate::costs::{CostModel, OsProfile};
use crate::reclaim::{AgingClock, ApproxLru, EvictionPolicy, Fifo, S3Fifo, SecondChance};
use crate::retry::RetryPolicy;

/// Remote-slot allocation policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteAllocKind {
    /// VMA-level direct mapping (§4.2.3).
    DirectMap,
    /// Linux swap-slot bitmap behind a global lock.
    SwapLock,
}

/// Victim-selection policy selector (`EP₁`); see
/// [`EvictionPolicy`].
#[derive(Clone, Copy, Debug)]
pub enum EvictionPolicyKind {
    /// The paper's second-chance accessed-bit test (default everywhere).
    SecondChance,
    /// Strict FIFO: no reference recheck at the policy level.
    Fifo,
    /// Aging-counter CLOCK: each hit grants `hot_rounds` grace rounds.
    AgingClock {
        /// Grace rounds granted per hit (1 behaves like second chance).
        hot_rounds: u8,
    },
    /// S3-FIFO (SOSP '23): frequency-capped filter at the policy level,
    /// fed re-fault signals from the accounting ghost list. Selecting
    /// this kind also switches the accounting structure to
    /// [`AccountingKind::S3Fifo`] at launch (preserving the configured
    /// partition count) — the small/main/ghost queues *are* the
    /// accounting structure, so the two halves ship as a pair.
    S3Fifo,
    /// NFU-with-aging LRU approximation: an 8-bit age byte per page,
    /// shifted each scan. Keeps the configured accounting structure.
    ApproxLru,
    /// A user-provided policy; `build` is called once at machine launch.
    Custom {
        /// Display name.
        name: &'static str,
        /// Policy constructor.
        build: fn() -> Box<dyn EvictionPolicy>,
    },
}

impl EvictionPolicyKind {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn EvictionPolicy> {
        match *self {
            EvictionPolicyKind::SecondChance => Box::new(SecondChance),
            EvictionPolicyKind::Fifo => Box::new(Fifo),
            EvictionPolicyKind::AgingClock { hot_rounds } => Box::new(AgingClock::new(hot_rounds)),
            EvictionPolicyKind::S3Fifo => Box::new(S3Fifo::default()),
            EvictionPolicyKind::ApproxLru => Box::new(ApproxLru::default()),
            EvictionPolicyKind::Custom { build, .. } => build(),
        }
    }

    /// Display name of the selected policy.
    pub fn name(&self) -> &'static str {
        match *self {
            EvictionPolicyKind::SecondChance => "second-chance",
            EvictionPolicyKind::Fifo => "fifo",
            EvictionPolicyKind::AgingClock { .. } => "aging-clock",
            EvictionPolicyKind::S3Fifo => "s3-fifo",
            EvictionPolicyKind::ApproxLru => "approx-lru",
            EvictionPolicyKind::Custom { name, .. } => name,
        }
    }
}

/// Far-memory backend selector; see [`FarBackend`].
#[derive(Clone, Copy, Debug)]
pub enum BackendKind {
    /// One-sided RDMA to a single passive memory node (the paper's
    /// testbed; default everywhere). Slot placement follows
    /// [`SystemConfig::remote_alloc`].
    Rdma,
    /// A disaggregated memory tier behind a switch hop: higher latency,
    /// dynamic pool-side slot placement, clean pages re-written on every
    /// eviction.
    DisaggTier {
        /// Extra switch latency per direction, ns.
        hop_ns: Nanos,
    },
    /// A user-provided backend; `build` is called once at machine launch
    /// with the simulation handle, the full config and the far-memory
    /// capacity in pages.
    Custom {
        /// Display name.
        name: &'static str,
        /// Backend constructor.
        build: fn(SimHandle, &SystemConfig, u64) -> Box<dyn FarBackend>,
    },
}

impl BackendKind {
    /// Instantiates the backend for a machine with `remote_pages` of far
    /// memory.
    pub fn build(
        &self,
        sim: SimHandle,
        cfg: &SystemConfig,
        remote_pages: u64,
    ) -> Box<dyn FarBackend> {
        match *self {
            BackendKind::Rdma => Box::new(RdmaBackend::new(sim, cfg, remote_pages)),
            BackendKind::DisaggTier { hop_ns } => {
                Box::new(DisaggTier::new(sim, cfg, remote_pages, hop_ns))
            }
            BackendKind::Custom { build, .. } => build(sim, cfg, remote_pages),
        }
    }
}

/// Prefetching policy on the fault-in path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetching.
    None,
    /// Sequential-pattern readahead with the given maximum window.
    Readahead {
        /// Maximum pages prefetched per trigger.
        max_window: usize,
    },
}

/// Full configuration of one simulated far-memory system.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Display name.
    pub name: &'static str,
    /// Page-accounting structure (`EP₁`/`FP₃`).
    pub accounting: AccountingKind,
    /// Local frame-allocator stack (`FP₁`).
    pub local_alloc: LocalAllocatorKind,
    /// Remote-slot policy (`EP₃`), consumed by the RDMA backend.
    pub remote_alloc: RemoteAllocKind,
    /// Victim-selection policy (`EP₁`).
    pub eviction_policy: EvictionPolicyKind,
    /// Far-memory backend (data movement + slot placement).
    pub backend: BackendKind,
    /// Address-space lock granularity.
    pub vma_lock: VmaLockModel,
    /// Number of dedicated evictor threads.
    pub evictors: usize,
    /// Upper bound for feedback-directed evictor scaling (Hermit); equal
    /// to `evictors` when scaling is off.
    pub max_evictors: usize,
    /// Whether the fault path may perform synchronous eviction when no
    /// free page is available (disallowed by MAGE's P1).
    pub sync_eviction: bool,
    /// Cross-batch pipelined eviction (MAGE's P2) vs. sequential batches.
    pub pipelined_eviction: bool,
    /// Pages per eviction batch / shootdown (256 for MAGE, §4.2.1).
    pub eviction_batch: usize,
    /// Pages per synchronous (fault-path) eviction batch.
    pub sync_eviction_batch: usize,
    /// Prefetch policy.
    pub prefetch: PrefetchPolicy,
    /// Whether the system runs in a VM (VMexit on IPIs, compute
    /// inflation).
    pub virtualized: bool,
    /// Whether TLB coherence is maintained at all (false only for the
    /// "ideal" baseline, which has no software overhead by definition).
    pub tlb_coherence: bool,
    /// NIC / link configuration.
    pub nic: NicConfig,
    /// Deterministic transport-fault schedule ([`FaultPlan::none`] — a
    /// perfect network — by default).
    pub faults: FaultPlan,
    /// Per-node fault schedules for multi-node fabrics: `node_faults[i]`
    /// governs operations targeted at memory node `i` (node-kill chaos
    /// plans for replicated runs). Empty — a single-node view — by
    /// default; untargeted operations always follow `faults`.
    pub node_faults: Vec<FaultPlan>,
    /// Replicate remote pages across simulated memory nodes with
    /// transparent read failover and background re-replication. `None`
    /// (the default) keeps the single-copy backend bit-identical to
    /// before the replication layer existed.
    pub replication: Option<ReplicationConfig>,
    /// Transfer retry/timeout policy for recovering from injected faults.
    pub retry: RetryPolicy,
    /// Service-time model.
    pub costs: CostModel,
    /// Test-only fault: resurrect the historical finalize-batch counting
    /// bug (evicted pages double-counted), violating the settlement
    /// identity `evicted + sync + cancelled + requeued ≤ unmapped`. Used
    /// by the mage-check harness to prove its oracle catches and shrinks
    /// a real, historically observed bug class. Never set in presets.
    #[doc(hidden)]
    pub break_settlement: bool,
    /// Test-only fault: after a reclaim batch is finalized (PTEs
    /// unlocked, waiters woken), redundantly re-publish the settled PTE
    /// words *without* holding their lock bits. The rewritten values are
    /// identical, so no functional test can see it — but the unlocked
    /// writes race with the next faulter's install or the next unmap of
    /// the same page. Used by the simsan tests to prove the race
    /// detector catches an ordering bug end-to-end. Never set in
    /// presets.
    #[doc(hidden)]
    pub break_publish: bool,
    /// Test-only fault: the background repair task silently skips
    /// backup-slot replicas, so a page degraded on its backup node is
    /// never re-replicated — invisible until the *primary's* node also
    /// crashes, at which point the page has no synced copy left. Used by
    /// the mage-check harness to prove the ≥1-synced-replica invariant
    /// catches and shrinks this bug class. Never set in presets.
    #[doc(hidden)]
    pub break_rereplication: bool,
}

impl SystemConfig {
    /// MAGE-Lib: the libOS variant (§5.2).
    pub fn mage_lib() -> Self {
        SystemConfig {
            name: "MageLib",
            accounting: AccountingKind::PartitionedLru { partitions: 8 },
            local_alloc: LocalAllocatorKind::MultiLayer,
            remote_alloc: RemoteAllocKind::DirectMap,
            eviction_policy: EvictionPolicyKind::SecondChance,
            backend: BackendKind::Rdma,
            vma_lock: VmaLockModel::None,
            evictors: 4,
            max_evictors: 4,
            sync_eviction: false,
            pipelined_eviction: true,
            eviction_batch: 256,
            sync_eviction_batch: 64,
            prefetch: PrefetchPolicy::None,
            virtualized: true,
            tlb_coherence: true,
            nic: NicConfig::bluefield2_200g(),
            faults: FaultPlan::none(),
            node_faults: Vec::new(),
            replication: None,
            break_settlement: false,
            break_publish: false,
            break_rereplication: false,
            retry: RetryPolicy::default(),
            costs: CostModel::new(OsProfile::unikernel(), true),
        }
    }

    /// MAGE-Lnx: the Linux-kernel variant (§5.1). No prefetch support;
    /// the Linux RDMA stack caps effective bandwidth at ~139 Gbps (§6.4).
    pub fn mage_lnx() -> Self {
        SystemConfig {
            name: "MageLnx",
            accounting: AccountingKind::FifoQueues { partitions: 8 },
            local_alloc: LocalAllocatorKind::MultiLayer,
            remote_alloc: RemoteAllocKind::DirectMap,
            eviction_policy: EvictionPolicyKind::SecondChance,
            backend: BackendKind::Rdma,
            vma_lock: VmaLockModel::Sharded(16),
            evictors: 4,
            max_evictors: 4,
            sync_eviction: false,
            pipelined_eviction: true,
            eviction_batch: 256,
            sync_eviction_batch: 64,
            prefetch: PrefetchPolicy::None,
            virtualized: true,
            tlb_coherence: true,
            nic: NicConfig {
                bandwidth_bytes_per_ns: 17.4, // 139 Gbps ceiling (§6.4)
                ..NicConfig::bluefield2_200g()
            },
            faults: FaultPlan::none(),
            node_faults: Vec::new(),
            replication: None,
            break_settlement: false,
            break_publish: false,
            break_rereplication: false,
            retry: RetryPolicy::default(),
            costs: CostModel::new(OsProfile::mage_lnx(), true),
        }
    }

    /// Hermit (NSDI '23): Linux with feedback-directed asynchrony, run on
    /// bare metal (§6.1).
    pub fn hermit() -> Self {
        SystemConfig {
            name: "Hermit",
            accounting: AccountingKind::GlobalLru,
            local_alloc: LocalAllocatorKind::PcpuCache,
            remote_alloc: RemoteAllocKind::SwapLock,
            eviction_policy: EvictionPolicyKind::SecondChance,
            backend: BackendKind::Rdma,
            vma_lock: VmaLockModel::Global,
            evictors: 4,
            max_evictors: 32,
            sync_eviction: true,
            pipelined_eviction: false,
            eviction_batch: 64,
            sync_eviction_batch: 32,
            prefetch: PrefetchPolicy::Readahead { max_window: 8 },
            virtualized: false,
            tlb_coherence: true,
            nic: NicConfig::bluefield2_200g(),
            faults: FaultPlan::none(),
            node_faults: Vec::new(),
            replication: None,
            break_settlement: false,
            break_publish: false,
            break_rereplication: false,
            retry: RetryPolicy::default(),
            costs: CostModel::new(OsProfile::linux_bare_metal(), false),
        }
    }

    /// DiLOS (EuroSys '23): far-memory unikernel, extended (as in the
    /// paper, §3.2) with multiple eviction threads and synchronous
    /// eviction.
    pub fn dilos() -> Self {
        SystemConfig {
            name: "DiLOS",
            accounting: AccountingKind::GlobalLru,
            local_alloc: LocalAllocatorKind::GlobalBuddy,
            remote_alloc: RemoteAllocKind::DirectMap,
            eviction_policy: EvictionPolicyKind::SecondChance,
            backend: BackendKind::Rdma,
            vma_lock: VmaLockModel::None,
            evictors: 4,
            max_evictors: 4,
            sync_eviction: true,
            pipelined_eviction: false,
            eviction_batch: 64,
            sync_eviction_batch: 32,
            prefetch: PrefetchPolicy::Readahead { max_window: 8 },
            virtualized: true,
            tlb_coherence: true,
            nic: NicConfig::bluefield2_200g(),
            faults: FaultPlan::none(),
            node_faults: Vec::new(),
            replication: None,
            break_settlement: false,
            break_publish: false,
            break_rereplication: false,
            retry: RetryPolicy::default(),
            costs: CostModel::new(OsProfile::unikernel(), true),
        }
    }

    /// The analytic "ideal" system (§3.1): only data-movement costs.
    pub fn ideal() -> Self {
        SystemConfig {
            name: "Ideal",
            // Zero-cost partitioned LRU: the ideal system has perfect
            // (software-free) replacement, so it must keep second-chance
            // accuracy rather than FIFO's approximation.
            accounting: AccountingKind::PartitionedLru { partitions: 8 },
            local_alloc: LocalAllocatorKind::MultiLayer,
            remote_alloc: RemoteAllocKind::DirectMap,
            eviction_policy: EvictionPolicyKind::SecondChance,
            backend: BackendKind::Rdma,
            vma_lock: VmaLockModel::None,
            evictors: 4,
            max_evictors: 4,
            sync_eviction: false,
            pipelined_eviction: true,
            eviction_batch: 256,
            sync_eviction_batch: 64,
            prefetch: PrefetchPolicy::None,
            virtualized: false,
            tlb_coherence: false,
            nic: NicConfig::bluefield2_200g(),
            faults: FaultPlan::none(),
            node_faults: Vec::new(),
            replication: None,
            break_settlement: false,
            break_publish: false,
            break_rereplication: false,
            retry: RetryPolicy::default(),
            costs: CostModel::ideal(),
        }
    }

    /// Enables readahead prefetching (used by MAGE-Lib in §6.2's
    /// sequential-scan experiment).
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = PrefetchPolicy::Readahead { max_window: 8 };
        self
    }

    /// Overrides the eviction batch size (Fig. 18a sweep).
    pub fn with_eviction_batch(mut self, batch: usize) -> Self {
        self.eviction_batch = batch;
        self
    }

    /// Swaps the backend's link model (§8: the design applies to any fast
    /// swap backend — RDMA memory, NVMe SSDs, compressed RAM).
    pub fn with_backend(mut self, nic: NicConfig) -> Self {
        self.nic = nic;
        self
    }

    /// Swaps the far-memory backend implementation (data movement + slot
    /// placement), e.g. to the disaggregated tier.
    pub fn with_backend_kind(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Swaps the victim-selection policy.
    pub fn with_eviction_policy(mut self, policy: EvictionPolicyKind) -> Self {
        self.eviction_policy = policy;
        self
    }

    /// Installs a deterministic transport-fault schedule on the backend
    /// link (the degraded-link experiments and the chaos suite).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Installs per-node fault schedules: `plans[i]` governs operations
    /// targeted at memory node `i` (the node-kill chaos suite).
    pub fn with_node_faults(mut self, plans: Vec<FaultPlan>) -> Self {
        self.node_faults = plans;
        self
    }

    /// Replicates remote pages across simulated memory nodes (primary +
    /// backup, transparent read failover, background re-replication).
    pub fn with_replication(mut self, replication: ReplicationConfig) -> Self {
        self.replication = Some(replication);
        self
    }

    /// Overrides the transfer retry/timeout policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Test-only: deliberately breaks the settlement-identity accounting
    /// (see [`SystemConfig::break_settlement`]). For the mage-check
    /// oracle tests; never use in experiments.
    #[doc(hidden)]
    pub fn with_broken_settlement(mut self) -> Self {
        self.break_settlement = true;
        self
    }

    /// Test-only: deliberately re-publishes settled PTEs without their
    /// lock bits held (see [`SystemConfig::break_publish`]). For the
    /// simsan oracle tests; never use in experiments.
    #[doc(hidden)]
    pub fn with_broken_publish(mut self) -> Self {
        self.break_publish = true;
        self
    }

    /// Test-only: deliberately skips backup-slot re-replication (see
    /// [`SystemConfig::break_rereplication`]). For the mage-check oracle
    /// tests; never use in experiments.
    #[doc(hidden)]
    pub fn with_broken_rereplication(mut self) -> Self {
        self.break_rereplication = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_table() {
        let lib = SystemConfig::mage_lib();
        assert!(!lib.sync_eviction && lib.pipelined_eviction);
        assert_eq!(lib.evictors, 4);
        assert_eq!(lib.remote_alloc, RemoteAllocKind::DirectMap);

        let hermit = SystemConfig::hermit();
        assert!(hermit.sync_eviction && !hermit.pipelined_eviction);
        assert_eq!(hermit.max_evictors, 32);
        assert_eq!(hermit.remote_alloc, RemoteAllocKind::SwapLock);
        assert!(!hermit.virtualized, "Hermit runs on bare metal (§6.1)");

        let dilos = SystemConfig::dilos();
        assert_eq!(dilos.local_alloc, LocalAllocatorKind::GlobalBuddy);
        assert_eq!(dilos.vma_lock, VmaLockModel::None);

        let lnx = SystemConfig::mage_lnx();
        assert!(matches!(lnx.accounting, AccountingKind::FifoQueues { .. }));
        assert!(lnx.nic.gbps() < 150.0, "Linux stack bandwidth ceiling");
        assert_eq!(lnx.prefetch, PrefetchPolicy::None);
    }

    #[test]
    fn ideal_has_no_coherence_cost() {
        let ideal = SystemConfig::ideal();
        assert!(!ideal.tlb_coherence);
        assert_eq!(ideal.costs.os.fault_fixed_ns(), 0);
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::mage_lib()
            .with_prefetch()
            .with_eviction_batch(128)
            .with_faults(FaultPlan::degraded_link(3))
            .with_retry(RetryPolicy {
                max_retries: 5,
                ..RetryPolicy::default()
            });
        assert_eq!(cfg.eviction_batch, 128);
        assert!(matches!(cfg.prefetch, PrefetchPolicy::Readahead { .. }));
        assert!(cfg.faults.is_active());
        assert_eq!(cfg.retry.max_retries, 5);
    }

    #[test]
    fn presets_default_to_a_perfect_network() {
        for cfg in [
            SystemConfig::mage_lib(),
            SystemConfig::mage_lnx(),
            SystemConfig::hermit(),
            SystemConfig::dilos(),
            SystemConfig::ideal(),
        ] {
            assert!(!cfg.faults.is_active(), "{}: faults on by default", cfg.name);
            assert_eq!(cfg.retry.op_timeout_ns, 0, "{}: timeout on by default", cfg.name);
        }
    }
}
