//! Transfer retry policy: bounded retries with deterministic exponential
//! backoff, seeded jitter and a per-op virtual-time timeout.
//!
//! The fabric reports *what* went wrong ([`TransferError`]); this module
//! decides *what to do about it*. Placement follows the paper's layering:
//! the NIC model stays a pure timing device, while recovery policy lives
//! with the engine that owns the page state being recovered — the fault
//! path can abort a fault cleanly (FP₂ holds only a frame and a PTE
//! lock), and the eviction path can re-insert a victim through the same
//! bookkeeping the refault-cancellation path uses.
//!
//! All jitter is drawn from a [`SplitMix64`] owned by the engine, so a
//! given (machine seed, fault seed) pair replays the exact backoff
//! schedule — chaos failures reproduce from their printed seed.

use mage_fabric::{Completion, TransferError};
use mage_sim::rng::SplitMix64;
use mage_sim::time::Nanos;
use mage_sim::trace::TRACK_RETRY;

use crate::machine::FarMemory;

/// Which transfer direction an operation was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOp {
    /// Fault-in read (remote → local).
    Read,
    /// Eviction writeback (local → remote).
    Write,
}

/// A transfer that remained failed after every configured retry. This is
/// the typed error the engine surfaces instead of panicking; the page
/// state has already been rolled back when a caller sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// The failed direction.
    pub op: TransferOp,
    /// Total attempts made (first try + retries).
    pub attempts: u32,
    /// The last transport error observed.
    pub last: TransferError,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} failed after {} attempts: {}",
            self.op, self.attempts, self.last
        )
    }
}

/// Retry policy for far-memory transfers.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// First backoff delay, ns; doubles each retry.
    pub backoff_base_ns: Nanos,
    /// Backoff ceiling, ns.
    pub backoff_cap_ns: Nanos,
    /// Virtual-time budget per attempt, ns; an op whose completion lies
    /// further out is abandoned with [`TransferError::Timeout`]. 0
    /// disables the timeout (the default: congestion on a healthy link
    /// must never be misread as failure).
    pub op_timeout_ns: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ns: 2_000,
            backoff_cap_ns: 200_000,
            op_timeout_ns: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based): exponential from
    /// `backoff_base_ns`, capped, plus up to 50% seeded jitter. Fully
    /// determined by the policy and the RNG state.
    pub fn backoff_ns(&self, attempt: u32, rng: &SplitMix64) -> Nanos {
        let shift = attempt.saturating_sub(1).min(20);
        let base = self
            .backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ns.max(self.backoff_base_ns));
        base + rng.next_below(base / 2 + 1)
    }
}

impl FarMemory {
    /// Awaits a posted completion under the configured per-op timeout.
    /// With the timeout disabled this is exactly `completion.await` — no
    /// extra timers, no schedule perturbation. With a timeout, abandoning
    /// an op does not un-post it: its wire time stays consumed.
    pub(crate) async fn await_op(&self, c: Completion) -> Result<Nanos, TransferError> {
        let timeout = self.cfg.retry.op_timeout_ns;
        if timeout > 0 && c.completes_at().saturating_since(self.sim.now()) > timeout {
            // The completion instant is fixed at post time, so the verdict
            // is known immediately; sleep out the budget and give up.
            self.sim.sleep(timeout).await;
            return Err(TransferError::Timeout);
        }
        c.await
    }

    /// Posts one transfer. With a known backend slot the slot-addressed
    /// entry points are used, which replication-aware backends route to
    /// replicas; the defaults delegate straight to the plain posts, so
    /// unreplicated behaviour is unchanged.
    fn post_transfer(&self, op: TransferOp, bytes: u64, rpn: Option<u64>) -> Completion {
        match (op, rpn) {
            (TransferOp::Read, Some(rpn)) => self.backend.read_page_at(rpn, bytes),
            (TransferOp::Read, None) => self.backend.read_page(bytes),
            (TransferOp::Write, Some(rpn)) => self.backend.write_page_at(rpn, bytes),
            (TransferOp::Write, None) => self.backend.write_page(bytes),
        }
    }

    /// Posts one transfer and drives it through the retry policy.
    pub(crate) async fn transfer_with_retry(
        &self,
        op: TransferOp,
        bytes: u64,
        rpn: Option<u64>,
    ) -> Result<Nanos, FaultError> {
        let c = self.post_transfer(op, bytes, rpn);
        let first = self.await_op(c).await;
        self.retry_transfer(op, bytes, rpn, first).await
    }

    /// Applies the retry policy to an already-observed first attempt:
    /// bounded re-posts with exponential backoff and seeded jitter. An
    /// `Ok` first attempt returns immediately with no RNG draw and no
    /// await, keeping the fault-free schedule untouched.
    pub(crate) async fn retry_transfer(
        &self,
        op: TransferOp,
        bytes: u64,
        rpn: Option<u64>,
        first: Result<Nanos, TransferError>,
    ) -> Result<Nanos, FaultError> {
        let mut last = match first {
            Ok(lat) => return Ok(lat),
            Err(e) => e,
        };
        // Transparent failover: a node-unreachable read on a replicated
        // backend re-routes to a surviving synced replica before any
        // backoff — the crash costs one extra read, not an abort.
        // Unreplicated backends answer `None` here without an await or an
        // RNG draw, leaving their fault schedules untouched.
        if last == TransferError::NodeUnreachable && op == TransferOp::Read {
            if let Some(c) = rpn.and_then(|rpn| self.backend.failover_read(rpn, bytes)) {
                if let Ok(lat) = self.await_op(c).await {
                    self.stats.failover_reads.inc();
                    return Ok(lat);
                }
            }
        }
        let policy = self.cfg.retry.clone();
        let t0 = self.sim.now();
        // Trace spans live on the dedicated retry track and are emitted
        // only on this error path, so a clean run (no active FaultPlan,
        // no timeouts) contains no `retry` events at all.
        let trace_name = match op {
            TransferOp::Read => "read",
            TransferOp::Write => "write",
        };
        for attempt in 1..=policy.max_retries {
            self.stats.transfer_retries.inc();
            self.sim
                .sleep(policy.backoff_ns(attempt, &self.retry_rng))
                .await;
            // Re-posting costs CPU like the original post did.
            self.sim.sleep(self.cfg.costs.os.rdma_post_cpu_ns).await;
            let c = self.post_transfer(op, bytes, rpn);
            match self.await_op(c).await {
                Ok(lat) => {
                    self.stats
                        .retry_latency
                        .record(self.sim.now().saturating_since(t0));
                    self.trace_evt(
                        TRACK_RETRY,
                        "retry",
                        trace_name,
                        t0,
                        Some(("attempts", attempt as u64 + 1)),
                    );
                    return Ok(lat);
                }
                Err(e) => last = e,
            }
        }
        self.stats.transfer_failures.inc();
        self.trace_evt(
            TRACK_RETRY,
            "retry",
            trace_name,
            t0,
            Some(("attempts", policy.max_retries as u64 + 1)),
        );
        Err(FaultError {
            op,
            attempts: policy.max_retries + 1,
            last,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use mage_fabric::FaultPlan;
    use mage_mmu::{CoreId, Topology};
    use mage_sim::rng::SplitMix64;
    use mage_sim::Simulation;

    use super::*;
    use crate::machine::{Access, FarMemory, MachineParams};
    use crate::SystemConfig;

    #[test]
    fn backoff_schedule_is_seed_reproducible() {
        let policy = RetryPolicy::default();
        let a = SplitMix64::new(42);
        let b = SplitMix64::new(42);
        let sched_a: Vec<Nanos> = (1..=8).map(|i| policy.backoff_ns(i, &a)).collect();
        let sched_b: Vec<Nanos> = (1..=8).map(|i| policy.backoff_ns(i, &b)).collect();
        assert_eq!(sched_a, sched_b, "same seed, same schedule");

        let c = SplitMix64::new(43);
        let sched_c: Vec<Nanos> = (1..=8).map(|i| policy.backoff_ns(i, &c)).collect();
        assert_ne!(sched_a, sched_c, "different seed must diverge");

        // Exponential shape under the jitter: every delay is in
        // [base·2^(i-1), 1.5·base·2^(i-1)] until the cap bites.
        for (i, &d) in sched_a.iter().enumerate() {
            let lo = (policy.backoff_base_ns << i).min(policy.backoff_cap_ns);
            assert!(d >= lo && d <= lo + lo / 2, "retry {i}: {d} outside [{lo}, 1.5·{lo}]");
        }
    }

    fn failing_machine(plan: FaultPlan, retry: RetryPolicy) -> (Simulation, Rc<FarMemory>, u64) {
        let sim = Simulation::new();
        let cfg = SystemConfig::mage_lib().with_faults(plan).with_retry(retry);
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 2,
            local_pages: 256,
            remote_pages: 2_048,
            tlb_entries: 64,
            seed: 11,
        };
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(64);
        engine.populate_all_remote(&vma);
        (sim, engine, vma.start_vpn)
    }

    #[test]
    fn timeout_fires_in_virtual_time() {
        // Node permanently down: every op would complete (with an error)
        // after one base latency, but a 500 ns budget gives up first.
        let plan = FaultPlan {
            seed: 2,
            crash_period_ns: u64::MAX / 2,
            crash_duration_ns: u64::MAX / 2,
            crash_rate: 1.0,
            ..FaultPlan::none()
        };
        // Identical machines; only the op timeout differs. Without it the
        // access waits the full 3 900 ns base latency for the error; with
        // a 500 ns budget it gives up after exactly 500 ns of virtual
        // time, so the end-to-end difference is exactly 3 400 ns.
        let mut elapsed = Vec::new();
        let mut errors = Vec::new();
        for timeout in [0, 500] {
            let retry = RetryPolicy {
                max_retries: 0,
                op_timeout_ns: timeout,
                ..RetryPolicy::default()
            };
            let (sim, engine, vpn) = failing_machine(plan.clone(), retry);
            let e = Rc::clone(&engine);
            let (t, access) = sim.block_on(async move {
                let t0 = e.sim.now();
                let a = e.access(CoreId(0), vpn, false).await;
                (e.sim.now().saturating_since(t0), a)
            });
            engine.shutdown();
            let Access::Failed { error } = access else {
                panic!("expected a failed access, got {access:?}");
            };
            assert_eq!(error.attempts, 1);
            elapsed.push(t);
            errors.push(error.last);
        }
        assert_eq!(errors[0], mage_fabric::TransferError::NodeUnreachable);
        assert_eq!(errors[1], mage_fabric::TransferError::Timeout);
        assert_eq!(
            elapsed[0] - elapsed[1],
            3_900 - 500,
            "timeout must cut the wait from the 3 900 ns detection latency to 500 ns"
        );
    }

    #[test]
    fn retry_exhaustion_leaks_nothing() {
        // Every transfer errors; retries are exhausted and the fault
        // aborts. The PTE must be unlocked and still remote, the frame
        // returned to the allocator, and the abort counted.
        let plan = FaultPlan {
            seed: 9,
            error_rate: 1.0,
            ..FaultPlan::none()
        };
        let retry = RetryPolicy {
            max_retries: 2,
            backoff_base_ns: 100,
            backoff_cap_ns: 1_000,
            op_timeout_ns: 0,
        };
        let (sim, engine, vpn) = failing_machine(plan, retry);
        let free_before = engine.allocator().free_frames();
        let e = Rc::clone(&engine);
        let access = sim.block_on(async move { e.access(CoreId(0), vpn, false).await });
        engine.shutdown();
        let Access::Failed { error } = access else {
            panic!("expected a failed access, got {access:?}");
        };
        assert_eq!(error.op, TransferOp::Read);
        assert_eq!(error.attempts, 3);
        assert_eq!(error.last, mage_fabric::TransferError::Cq);
        let pte = engine.page_table().get(vpn);
        assert!(pte.is_remote(), "failed fault must leave the page remote");
        assert!(!pte.locked(), "failed fault must release the page lock");
        assert_eq!(
            engine.allocator().free_frames(),
            free_before,
            "failed fault must return its frame"
        );
        assert_eq!(engine.stats().aborted_faults.get(), 1);
        assert_eq!(engine.stats().transfer_retries.get(), 2);
        assert_eq!(engine.stats().transfer_failures.get(), 1);
        assert_eq!(engine.stats().major_faults.get(), 0, "aborts are not faults");
        assert_eq!(access.paging_latency(), 0);
    }

    #[test]
    fn transient_errors_are_absorbed_by_retries() {
        // 40% error rate with generous retries: accesses must all succeed
        // and the retry counters must show the recovered attempts.
        let plan = FaultPlan {
            seed: 4,
            error_rate: 0.4,
            ..FaultPlan::none()
        };
        let retry = RetryPolicy {
            max_retries: 8,
            backoff_base_ns: 200,
            backoff_cap_ns: 5_000,
            op_timeout_ns: 0,
        };
        let (sim, engine, start_vpn) = failing_machine(plan, retry);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            for i in 0..64 {
                let a = e.access(CoreId(0), start_vpn + i, false).await;
                assert!(
                    matches!(a, Access::Major { .. }),
                    "page {i}: expected recovery, got {a:?}"
                );
            }
        });
        engine.shutdown();
        assert!(engine.stats().transfer_retries.get() > 0, "errors were injected");
        assert_eq!(engine.stats().aborted_faults.get(), 0);
        assert!(engine.stats().retry_latency.count() > 0);
    }
}
