//! Sequential-pattern readahead prefetching.
//!
//! DiLOS, Hermit and MAGE-Lib record past fault-in virtual addresses to
//! detect sequential access patterns and proactively fetch upcoming pages
//! (§6.2, "Applications with regular access patterns"). The window grows
//! with the streak length up to the configured maximum. Prefetches run as
//! detached tasks: they consume NIC bandwidth and free pages but add no
//! latency to the faulting thread — which is exactly why prefetching only
//! pays off when the eviction path can sustain the extra fault-in
//! pressure (the paper's Fig. 10 observation).

use std::rc::Rc;

use mage_mmu::{CoreId, Pte, PAGE_SIZE};

use crate::config::PrefetchPolicy;
use crate::events::PageEvent;
use crate::machine::FarMemory;

/// Per-core sequential-stream detector.
pub(crate) struct StreamDetector {
    last_vpn: u64,
    streak: u32,
    prefetched_until: u64,
}

impl StreamDetector {
    pub(crate) fn new() -> Self {
        StreamDetector {
            last_vpn: u64::MAX - 1,
            streak: 0,
            prefetched_until: 0,
        }
    }

    /// Feeds a fault address; returns how many pages ahead to prefetch.
    fn observe(&mut self, vpn: u64, max_window: usize) -> u64 {
        if vpn == self.last_vpn + 1 {
            self.streak += 1;
        } else {
            self.streak = 0;
            self.prefetched_until = vpn;
        }
        self.last_vpn = vpn;
        if self.streak < 2 {
            return 0;
        }
        // Exponential ramp-up capped at the window, like Linux readahead.
        let window = (1u64 << self.streak.min(10)).min(max_window as u64);
        let target = vpn + window;
        if target <= self.prefetched_until {
            return 0;
        }
        let from = self.prefetched_until.max(vpn) + 1;
        self.prefetched_until = target;
        target - from + 1
    }
}

impl FarMemory {
    /// Called at the end of a major fault: detect streams, spawn
    /// prefetches.
    pub(crate) fn maybe_prefetch(&self, core: CoreId, vpn: u64) {
        let PrefetchPolicy::Readahead { max_window } = self.cfg.prefetch else {
            return;
        };
        let count = {
            let mut detectors = self.prefetchers.borrow_mut();
            detectors[core.index()].observe(vpn, max_window)
        };
        if count == 0 {
            return;
        }
        let Some(engine) = self.self_ref.borrow().upgrade() else {
            return;
        };
        let vma_end = {
            let asp = self.asp.borrow();
            match asp.find(vpn) {
                Some(v) => v.end_vpn(),
                None => return,
            }
        };
        // Prefetch the next `count` *remote* pages, skipping already-
        // resident ones (swap-cluster-readahead style) within a bounded
        // lookahead so the window stays meaningfully ahead of the scan.
        let mut issued = 0;
        let mut target = vpn + 1;
        let lookahead_end = (vpn + 8 * count).min(vma_end);
        while issued < count && target < lookahead_end {
            if self.pt.get(target).is_remote() {
                let e = Rc::clone(&engine);
                let t = target;
                self.sim
                    .spawn(async move { e.prefetch_page(core, t).await });
                issued += 1;
            }
            target += 1;
        }
        {
            let mut detectors = self.prefetchers.borrow_mut();
            let d = &mut detectors[core.index()];
            d.prefetched_until = d.prefetched_until.max(target);
        }
    }

    /// Asynchronously faults in one page without blocking any app thread.
    async fn prefetch_page(self: Rc<Self>, core: CoreId, vpn: u64) {
        // Never compete with real faults for the last free pages.
        if self.alloc.free_frames() <= self.low_watermark {
            return;
        }
        let pte = self.pt.get(vpn);
        if !pte.is_remote() || pte.locked() {
            return;
        }
        if !self.pt.try_lock(vpn) {
            return;
        }
        self.emit(PageEvent::FetchStart { vpn });
        let rpn = pte.payload();
        let Some(frame) = self.alloc.alloc(core.index()).await else {
            self.pt.unlock(vpn);
            self.wake_page(vpn);
            self.emit(PageEvent::FetchAborted { vpn });
            return;
        };
        self.sim.sleep(self.cfg.costs.os.rdma_post_cpu_ns).await;
        if self
            .await_op(self.backend.read_page_at(rpn, PAGE_SIZE))
            .await
            .is_err()
        {
            // Prefetches are speculative: no retries, just roll back and
            // let a real fault (with its retry budget) fetch the page.
            self.pt.unlock(vpn);
            self.wake_page(vpn);
            self.alloc.free_batch(core.index(), &[frame]).await;
            self.free_waiters.wake_all();
            self.emit(PageEvent::FetchAborted { vpn });
            return;
        }
        self.backend.release_slot(rpn).await;
        self.sim.sleep(self.cfg.costs.os.pte_update_ns).await;
        // Installed with one referenced round (like swap-cache readahead
        // pages): enough grace not to be reclaimed before first touch,
        // while a wrong guess still ages out on the next scan.
        self.pt.set(vpn, Pte::present(frame).with_accessed(true));
        self.pt.shadow_unlock(vpn);
        self.emit(PageEvent::Installed { vpn, frame });
        self.acct.insert(core.index(), vpn).await;
        self.wake_page(vpn);
        self.stats.prefetches.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_needs_a_streak() {
        let mut d = StreamDetector::new();
        assert_eq!(d.observe(100, 8), 0);
        assert_eq!(d.observe(101, 8), 0);
        // Third sequential fault triggers readahead.
        assert!(d.observe(102, 8) > 0);
    }

    #[test]
    fn detector_resets_on_random_jump() {
        let mut d = StreamDetector::new();
        for v in 100..105 {
            d.observe(v, 8);
        }
        assert_eq!(d.observe(9_000, 8), 0, "jump resets the streak");
        assert_eq!(d.observe(9_001, 8), 0);
    }

    #[test]
    fn window_does_not_refetch_covered_pages() {
        let mut d = StreamDetector::new();
        d.observe(10, 8);
        d.observe(11, 8);
        let first = d.observe(12, 8);
        assert!(first >= 1);
        // The next sequential fault extends, not repeats, the window.
        let second = d.observe(13, 8);
        assert!(second <= first + 1);
        let total_covered = d.prefetched_until;
        assert!(total_covered > 13);
    }

    #[test]
    fn window_caps_at_max() {
        let mut d = StreamDetector::new();
        let mut max_step = 0;
        for v in 0..64 {
            max_step = max_step.max(d.observe(v, 8));
        }
        assert!(max_step <= 8, "window {max_step} exceeded cap");
    }
}
