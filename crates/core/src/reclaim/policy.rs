//! Pluggable victim-selection policies (`EP₁`).
//!
//! A policy answers one question — *is this candidate worth keeping
//! resident for another round?* — by testing **and aging** the page's
//! reference state. The accounting structures decide *which* candidates
//! are inspected and in what order; the policy decides their fate. The
//! split mirrors Linux: `isolate_lru_pages` picks candidates, the
//! reference check decides reactivation.
//!
//! Implementations ship for the paper's second-chance test (default), a
//! pure FIFO (no recheck at the policy level) and an aging-counter CLOCK
//! that grants recently-hot pages extra grace rounds. New policies are a
//! new file implementing [`EvictionPolicy`] plus an
//! [`EvictionPolicyKind::Custom`](crate::config::EvictionPolicyKind)
//! constructor — no engine edits.

use std::cell::RefCell;
use std::collections::BTreeMap;

use mage_mmu::PageTable;

/// Victim-selection policy: test-and-age one eviction candidate.
pub trait EvictionPolicy {
    /// Display name (for reports and examples).
    fn name(&self) -> &'static str;

    /// Tests candidate `vpn` and ages its reference state; `true` keeps
    /// the page resident for another round (it is reactivated by the
    /// accounting structure), `false` hands it to the evictor.
    ///
    /// Implementations that consult the hardware-accessed bit must clear
    /// it here, so the next round observes only newer accesses.
    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool;
}

/// The paper's second-chance test: a page whose accessed bit is set since
/// the last scan survives once; the test clears the bit.
#[derive(Default)]
pub struct SecondChance;

impl EvictionPolicy for SecondChance {
    fn name(&self) -> &'static str {
        "second-chance"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        let old = pt.update(vpn, |p| p.with_accessed(false));
        old.accessed()
    }
}

/// Strict FIFO: candidates are evicted in scan order with no reference
/// recheck at all (the policy-level analogue of MAGE-Lnx's FIFO queues —
/// usable with any accounting structure). Accessed bits are still cleared
/// so a later switch of policy starts from aged state.
#[derive(Default)]
pub struct Fifo;

impl EvictionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        pt.update(vpn, |p| p.with_accessed(false));
        false
    }
}

/// Aging-counter CLOCK: a hit recharges the page's counter to
/// `hot_rounds`; every miss decays it by one, and the page is evicted
/// only once the counter is exhausted. `hot_rounds = 1` degenerates to
/// [`SecondChance`]; larger values keep the warm set resident through
/// short cold spells at the price of slower reclaim of truly-dead pages.
pub struct AgingClock {
    hot_rounds: u8,
    /// Remaining grace rounds per page. Deterministic iteration order is
    /// irrelevant (keyed point lookups only) but BTreeMap keeps the
    /// no-hash-collections rule trivially satisfied.
    counters: RefCell<BTreeMap<u64, u8>>,
}

impl AgingClock {
    /// A clock granting `hot_rounds` grace rounds after each hit.
    pub fn new(hot_rounds: u8) -> Self {
        AgingClock {
            hot_rounds: hot_rounds.max(1),
            counters: RefCell::new(BTreeMap::new()),
        }
    }
}

impl EvictionPolicy for AgingClock {
    fn name(&self) -> &'static str {
        "aging-clock"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        let old = pt.update(vpn, |p| p.with_accessed(false));
        let mut counters = self.counters.borrow_mut();
        if old.accessed() {
            counters.insert(vpn, self.hot_rounds);
            return true;
        }
        match counters.get_mut(&vpn) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                counters.remove(&vpn);
                false
            }
            None => false,
        }
    }
}

/// Adapter presenting an [`EvictionPolicy`] to the accounting crate's
/// [`VictimProbe`](mage_accounting::VictimProbe) seam.
pub(crate) struct PolicyProbe<'a> {
    pub(crate) pt: &'a PageTable,
    pub(crate) policy: &'a dyn EvictionPolicy,
}

impl mage_accounting::VictimProbe for PolicyProbe<'_> {
    fn test_and_age(&self, vpn: u64) -> bool {
        self.policy.test_and_age(self.pt, vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_mmu::Pte;

    fn table_with(vpn: u64, accessed: bool) -> PageTable {
        let pt = PageTable::new();
        pt.set(vpn, Pte::present(1).with_accessed(accessed));
        pt
    }

    #[test]
    fn second_chance_clears_and_reports() {
        let pt = table_with(9, true);
        let p = SecondChance;
        assert!(p.test_and_age(&pt, 9), "hot on first test");
        assert!(!pt.get(9).accessed(), "bit cleared by the test");
        assert!(!p.test_and_age(&pt, 9), "cold on second test");
    }

    #[test]
    fn fifo_never_reactivates() {
        let pt = table_with(9, true);
        let p = Fifo;
        assert!(!p.test_and_age(&pt, 9), "no recheck");
        assert!(!pt.get(9).accessed(), "bit still aged");
    }

    #[test]
    fn aging_clock_grants_grace_rounds() {
        let pt = table_with(9, true);
        let p = AgingClock::new(3);
        assert!(p.test_and_age(&pt, 9), "hit: recharged");
        // Two further cold scans survive on the counter, the third evicts
        // (three survivals per hit in total with hot_rounds = 3).
        assert!(p.test_and_age(&pt, 9));
        assert!(p.test_and_age(&pt, 9));
        assert!(!p.test_and_age(&pt, 9), "grace exhausted");
        assert!(!p.test_and_age(&pt, 9), "stays cold");
    }

    #[test]
    fn aging_clock_recharges_on_rehit() {
        let pt = table_with(9, true);
        let p = AgingClock::new(2);
        assert!(p.test_and_age(&pt, 9));
        pt.set(9, pt.get(9).with_accessed(true)); // page touched again
        assert!(p.test_and_age(&pt, 9), "recharged by the new hit");
        assert!(p.test_and_age(&pt, 9), "counter full again");
        assert!(!p.test_and_age(&pt, 9));
    }
}
