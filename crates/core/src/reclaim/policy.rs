//! Pluggable victim-selection policies (`EP₁`).
//!
//! A policy answers one question — *is this candidate worth keeping
//! resident for another round?* — by testing **and aging** the page's
//! reference state. The accounting structures decide *which* candidates
//! are inspected and in what order; the policy decides their fate. The
//! split mirrors Linux: `isolate_lru_pages` picks candidates, the
//! reference check decides reactivation.
//!
//! Implementations ship for the paper's second-chance test (default), a
//! pure FIFO (no recheck at the policy level), an aging-counter CLOCK
//! that grants recently-hot pages extra grace rounds, a frequency-capped
//! [`S3Fifo`] filter fed by the accounting ghost list's re-fault signal,
//! and an NFU/aging [`ApproxLru`] baseline. New policies are a new file
//! implementing [`EvictionPolicy`] plus an
//! [`EvictionPolicyKind::Custom`](crate::config::EvictionPolicyKind)
//! constructor — no engine edits.
//!
//! ## Ghost-feedback contract
//!
//! The engine notifies the policy via [`EvictionPolicy::note_refault`]
//! whenever a fault-in (or an eviction cancel) hits the accounting
//! ghost list — i.e. the page was evicted recently enough that evicting
//! it was probably a mistake. Policies may use the signal to bias victim
//! selection away from such pages; the default is a no-op, so policies
//! that ignore it (and the pinned default paths) pay nothing.

use std::cell::RefCell;
use std::collections::BTreeMap;

use mage_mmu::PageTable;

/// Victim-selection policy: test-and-age one eviction candidate.
pub trait EvictionPolicy {
    /// Display name (for reports and examples).
    fn name(&self) -> &'static str;

    /// Tests candidate `vpn` and ages its reference state; `true` keeps
    /// the page resident for another round (it is reactivated by the
    /// accounting structure), `false` hands it to the evictor.
    ///
    /// Implementations that consult the hardware-accessed bit must clear
    /// it here, so the next round observes only newer accesses.
    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool;

    /// Called when a fault-in for `vpn` hits the accounting ghost list
    /// (the page is back shortly after being evicted). Policies may bias
    /// future [`test_and_age`](Self::test_and_age) decisions in its
    /// favour; the default ignores the signal.
    fn note_refault(&self, _vpn: u64) {}
}

/// The paper's second-chance test: a page whose accessed bit is set since
/// the last scan survives once; the test clears the bit.
#[derive(Default)]
pub struct SecondChance;

impl EvictionPolicy for SecondChance {
    fn name(&self) -> &'static str {
        "second-chance"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        let old = pt.update(vpn, |p| p.with_accessed(false));
        old.accessed()
    }
}

/// Strict FIFO: candidates are evicted in scan order with no reference
/// recheck at all (the policy-level analogue of MAGE-Lnx's FIFO queues —
/// usable with any accounting structure). Accessed bits are still cleared
/// so a later switch of policy starts from aged state.
#[derive(Default)]
pub struct Fifo;

impl EvictionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        pt.update(vpn, |p| p.with_accessed(false));
        false
    }
}

/// Aging-counter CLOCK: a hit recharges the page's counter to
/// `hot_rounds`; every miss decays it by one, and the page is evicted
/// only once the counter is exhausted. `hot_rounds = 1` degenerates to
/// [`SecondChance`]; larger values keep the warm set resident through
/// short cold spells at the price of slower reclaim of truly-dead pages.
pub struct AgingClock {
    hot_rounds: u8,
    /// Remaining grace rounds per page. Deterministic iteration order is
    /// irrelevant (keyed point lookups only) but BTreeMap keeps the
    /// no-hash-collections rule trivially satisfied.
    counters: RefCell<BTreeMap<u64, u8>>,
}

impl AgingClock {
    /// A clock granting `hot_rounds` grace rounds after each hit.
    pub fn new(hot_rounds: u8) -> Self {
        AgingClock {
            hot_rounds: hot_rounds.max(1),
            counters: RefCell::new(BTreeMap::new()),
        }
    }
}

impl EvictionPolicy for AgingClock {
    fn name(&self) -> &'static str {
        "aging-clock"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        let old = pt.update(vpn, |p| p.with_accessed(false));
        let mut counters = self.counters.borrow_mut();
        if old.accessed() {
            counters.insert(vpn, self.hot_rounds);
            return true;
        }
        match counters.get_mut(&vpn) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                counters.remove(&vpn);
                false
            }
            None => false,
        }
    }
}

/// S3-FIFO's frequency filter (SOSP '23), honestly degraded to the page
/// table's one-bit accessed signal as the paper's §4.2.2 argues it must
/// be: each observed hit raises a per-page frequency (capped at
/// [`S3Fifo::FREQ_CAP`]), each cold scan decays it, and the page is
/// evicted only at frequency zero. The queue structure itself (small /
/// main / ghost) lives in `mage_accounting::AccountingKind::S3Fifo`;
/// selecting [`EvictionPolicyKind::S3Fifo`](crate::config::EvictionPolicyKind)
/// pairs the two at launch. The ghost re-fault signal arrives through
/// [`EvictionPolicy::note_refault`] and recharges the page to the cap —
/// this is the "biases victim selection away from recently re-faulted
/// pages" half of the feedback loop.
#[derive(Default)]
pub struct S3Fifo {
    /// Per-page access frequency, capped at [`Self::FREQ_CAP`]. BTreeMap
    /// for the no-hash-collections rule; keyed point lookups only.
    freq: RefCell<BTreeMap<u64, u8>>,
}

impl S3Fifo {
    /// Frequency cap — S3-FIFO uses 2 bits (0..=3).
    pub const FREQ_CAP: u8 = 3;
}

impl EvictionPolicy for S3Fifo {
    fn name(&self) -> &'static str {
        "s3-fifo"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        let old = pt.update(vpn, |p| p.with_accessed(false));
        let mut freq = self.freq.borrow_mut();
        if old.accessed() {
            let f = freq.entry(vpn).or_insert(0);
            *f = (*f + 1).min(Self::FREQ_CAP);
            return true;
        }
        match freq.get_mut(&vpn) {
            Some(f) if *f > 1 => {
                *f -= 1;
                true
            }
            Some(_) => {
                freq.remove(&vpn);
                true // last unit of grace: survive this scan, evict next
            }
            None => false,
        }
    }

    fn note_refault(&self, vpn: u64) {
        // A ghost hit means this page was evicted too early — give it the
        // full frequency budget so the next scans keep it resident.
        self.freq.borrow_mut().insert(vpn, Self::FREQ_CAP);
    }
}

/// NFU-with-aging LRU approximation (the classic software LRU stand-in):
/// each scan shifts the page's age byte right and ORs the accessed bit
/// into the top bit, so recently-touched pages carry large values and a
/// page is evicted only once its byte decays to zero (8 cold scans after
/// the last hit). A deliberately *stateful-but-cheap* baseline between
/// [`SecondChance`] (1 bit) and a true LRU ordering.
#[derive(Default)]
pub struct ApproxLru {
    /// Per-page age byte. BTreeMap for the no-hash-collections rule.
    age: RefCell<BTreeMap<u64, u8>>,
}

impl EvictionPolicy for ApproxLru {
    fn name(&self) -> &'static str {
        "approx-lru"
    }

    fn test_and_age(&self, pt: &PageTable, vpn: u64) -> bool {
        let old = pt.update(vpn, |p| p.with_accessed(false));
        let mut ages = self.age.borrow_mut();
        let slot = ages.entry(vpn).or_insert(0);
        *slot = (*slot >> 1) | if old.accessed() { 0x80 } else { 0 };
        if *slot == 0 {
            ages.remove(&vpn);
            false
        } else {
            true
        }
    }
}

/// Adapter presenting an [`EvictionPolicy`] to the accounting crate's
/// [`VictimProbe`](mage_accounting::VictimProbe) seam.
pub(crate) struct PolicyProbe<'a> {
    pub(crate) pt: &'a PageTable,
    pub(crate) policy: &'a dyn EvictionPolicy,
}

impl mage_accounting::VictimProbe for PolicyProbe<'_> {
    fn test_and_age(&self, vpn: u64) -> bool {
        self.policy.test_and_age(self.pt, vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_mmu::Pte;

    fn table_with(vpn: u64, accessed: bool) -> PageTable {
        let pt = PageTable::new();
        pt.set(vpn, Pte::present(1).with_accessed(accessed));
        pt
    }

    #[test]
    fn second_chance_clears_and_reports() {
        let pt = table_with(9, true);
        let p = SecondChance;
        assert!(p.test_and_age(&pt, 9), "hot on first test");
        assert!(!pt.get(9).accessed(), "bit cleared by the test");
        assert!(!p.test_and_age(&pt, 9), "cold on second test");
    }

    #[test]
    fn fifo_never_reactivates() {
        let pt = table_with(9, true);
        let p = Fifo;
        assert!(!p.test_and_age(&pt, 9), "no recheck");
        assert!(!pt.get(9).accessed(), "bit still aged");
    }

    #[test]
    fn aging_clock_grants_grace_rounds() {
        let pt = table_with(9, true);
        let p = AgingClock::new(3);
        assert!(p.test_and_age(&pt, 9), "hit: recharged");
        // Two further cold scans survive on the counter, the third evicts
        // (three survivals per hit in total with hot_rounds = 3).
        assert!(p.test_and_age(&pt, 9));
        assert!(p.test_and_age(&pt, 9));
        assert!(!p.test_and_age(&pt, 9), "grace exhausted");
        assert!(!p.test_and_age(&pt, 9), "stays cold");
    }

    #[test]
    fn s3fifo_caps_frequency_and_decays() {
        let pt = table_with(9, true);
        let p = S3Fifo::default();
        assert!(p.test_and_age(&pt, 9), "hit: freq -> 1");
        assert!(!pt.get(9).accessed(), "bit cleared by the test");
        assert!(p.test_and_age(&pt, 9), "cold: last grace unit spent");
        assert!(!p.test_and_age(&pt, 9), "cold again: evicted");
        // Repeated hits saturate at FREQ_CAP instead of growing forever.
        for _ in 0..10 {
            pt.set(9, pt.get(9).with_accessed(true));
            assert!(p.test_and_age(&pt, 9));
        }
        let survives = (0..8).take_while(|_| p.test_and_age(&pt, 9)).count();
        assert_eq!(survives, 3, "decay bounded by the 2-bit cap");
    }

    #[test]
    fn s3fifo_refault_signal_recharges() {
        let pt = table_with(9, false);
        let p = S3Fifo::default();
        assert!(!p.test_and_age(&pt, 9), "unknown cold page evicts");
        p.note_refault(9);
        assert!(p.test_and_age(&pt, 9), "ghost hit grants full grace");
        assert!(p.test_and_age(&pt, 9));
        assert!(p.test_and_age(&pt, 9));
        assert!(!p.test_and_age(&pt, 9), "grace exhausted");
    }

    #[test]
    fn approx_lru_age_byte_decays_over_eight_scans() {
        let pt = table_with(9, true);
        let p = ApproxLru::default();
        assert!(p.test_and_age(&pt, 9), "hit: byte = 0x80");
        let survives = (0..10).take_while(|_| p.test_and_age(&pt, 9)).count();
        assert_eq!(survives, 7, "seven further survivals as the byte shifts out");
        assert!(!p.test_and_age(&pt, 9), "stays cold");
    }

    #[test]
    fn approx_lru_ranks_recent_over_stale() {
        let pt = PageTable::new();
        pt.set(1, Pte::present(1).with_accessed(true));
        pt.set(2, Pte::present(2).with_accessed(true));
        let p = ApproxLru::default();
        // Page 1 touched long ago, page 2 touched every scan: after a few
        // rounds page 1 decays out first.
        assert!(p.test_and_age(&pt, 1));
        for _ in 0..8 {
            assert!(p.test_and_age(&pt, 2));
            pt.set(2, pt.get(2).with_accessed(true));
            if !p.test_and_age(&pt, 1) {
                return; // page 1 evicted while page 2 still protected
            }
        }
        panic!("stale page never decayed out");
    }

    #[test]
    fn default_note_refault_is_a_no_op() {
        let pt = table_with(9, false);
        let p = SecondChance;
        p.note_refault(9);
        assert!(!p.test_and_age(&pt, 9), "second-chance ignores the signal");
    }

    #[test]
    fn aging_clock_recharges_on_rehit() {
        let pt = table_with(9, true);
        let p = AgingClock::new(2);
        assert!(p.test_and_age(&pt, 9));
        pt.set(9, pt.get(9).with_accessed(true)); // page touched again
        assert!(p.test_and_age(&pt, 9), "recharged by the new hit");
        assert!(p.test_and_age(&pt, 9), "counter full again");
        assert!(!p.test_and_age(&pt, 9));
    }
}
