//! One eviction batch: victim selection, unmap, shootdown, writeback,
//! reclaim (steps ①–⑦ of §4.1), shared by the sequential evictor, the
//! synchronous fault-path fallback, `madvise(MADV_PAGEOUT)`-style forced
//! pageout and the pipelined evictor.

use mage_fabric::Completion;
use mage_mmu::{CoreId, FlushTicket, Pte, PAGE_SIZE};
use mage_sim::time::{Nanos, SimTime};
use mage_sim::trace::TRACK_WRITEBACK;

use crate::events::PageEvent;
use crate::machine::FarMemory;
use crate::reclaim::policy::PolicyProbe;
use crate::retry::TransferOp;

/// One page moving through the eviction pipeline.
#[derive(Clone, Copy)]
pub(crate) struct EvictPage {
    pub(crate) vpn: u64,
    pub(crate) frame: u64,
    /// Backend slot the page writes back to (replicated backends route
    /// the mirror writes by this).
    pub(crate) rpn: u64,
    pub(crate) dirty: bool,
    /// Generation tag matching this page's entry in `FarMemory::evicting`.
    pub(crate) gen: u64,
}

/// The posted writebacks of one eviction batch, each tagged with its
/// page's index in the batch so failures map back to their victims.
pub(crate) struct WritebackSet {
    completions: Vec<(usize, Completion)>,
}

impl WritebackSet {
    /// When every posted write has completed (successfully or not), or
    /// `None` if the batch was all-clean and posted nothing. Injected
    /// latency spikes can reorder completions, so this is the maximum
    /// over the set, not the last posted.
    pub(crate) fn done_at(&self) -> Option<SimTime> {
        self.completions.iter().map(|(_, c)| c.completes_at()).max()
    }
}

/// Timing contributions of one (possibly synchronous) eviction batch.
pub(crate) struct EvictOutcome {
    /// Pages evicted.
    pub pages: usize,
    /// Time spent waiting on the TLB shootdown.
    pub tlb_ns: Nanos,
    /// Time spent in accounting scans.
    pub acct_ns: Nanos,
}

impl FarMemory {
    /// Allocates a backend slot for candidate `vpn` and unmaps it,
    /// leaving the PTE `remote + locked` so concurrent faults wait until
    /// the writeback is durable. Returns the staged page, or `None` if
    /// the candidate must be skipped (raced with a fault/unmap, VMA gone,
    /// or far memory exhausted).
    ///
    /// This is the single unmap implementation behind both the scan-driven
    /// batches ([`FarMemory::scan_and_unmap`]) and forced pageout
    /// ([`FarMemory::pageout`]).
    async fn unmap_candidate(&self, vpn: u64) -> Option<EvictPage> {
        let pte = self.pt.get(vpn);
        if !pte.is_present() || pte.locked() {
            return None; // raced with an unmap or an in-flight fault
        }
        let direct_rpn = {
            let asp = self.asp.borrow();
            match asp.find(vpn) {
                Some(vma) => vma.remote_page(vpn),
                None => return None,
            }
        };
        let unmap_cost = self.cfg.costs.os.pte_update_ns
            + self.cfg.costs.os.rmap_cgroup_ns
            + self.cfg.costs.os.swapcache_ns;
        self.sim.sleep(unmap_cost).await;
        let rpn = self.backend.alloc_slot(direct_rpn).await?;
        let frame = pte.payload();
        let dirty = pte.dirty();
        // The set below both rewrites the word and takes its lock bit:
        // tell the detector the lock edge comes first so the write is
        // inside the critical section.
        self.pt.shadow_lock(vpn);
        self.pt.set(vpn, Pte::remote(rpn).with_locked(true));
        let gen = self.evict_gen.get();
        self.evict_gen.set(gen + 1);
        self.evicting.borrow_mut().insert(vpn, (frame, gen));
        // Publish the evicting-map entry: the fault path's cancel branch
        // reads it without holding the PTE lock.
        self.pt.shadow_publish(vpn);
        self.stats.unmapped_pages.inc();
        self.emit(PageEvent::Unmapped { vpn, frame });
        Some(EvictPage {
            vpn,
            frame,
            rpn,
            dirty,
            gen,
        })
    }

    /// Steps ① of §4.1: select victims through the accounting structure
    /// and the configured [`EvictionPolicy`](crate::reclaim::EvictionPolicy),
    /// allocate backend slots and unmap.
    ///
    /// Returns the unmapped batch and the accounting-scan time.
    pub(crate) async fn scan_and_unmap(
        &self,
        evictor_id: usize,
        round: usize,
        want: usize,
    ) -> (Vec<EvictPage>, Nanos) {
        let t0 = self.sim.now();
        let mut victims = Vec::new();
        let probe = PolicyProbe {
            pt: &self.pt,
            policy: &*self.policy,
        };
        self.acct
            .take_victims(evictor_id, round, want, &probe, &mut victims)
            .await;
        let acct_ns = self.sim.now().saturating_since(t0);
        let mut batch = Vec::with_capacity(victims.len());
        for vpn in victims {
            if let Some(page) = self.unmap_candidate(vpn).await {
                batch.push(page);
            }
        }
        (batch, acct_ns)
    }

    /// Steps ②–③ initiation: send the batched shootdown IPIs.
    pub(crate) async fn send_shootdown(&self, core: CoreId, batch: &[EvictPage]) -> FlushTicket {
        let vpns: Vec<u64> = batch.iter().map(|p| p.vpn).collect();
        self.ic.send_flush(core, &self.app_cores, &vpns).await
    }

    /// Steps ④–⑤: post the writebacks for flushed pages.
    ///
    /// Clean pages whose backend copy is still valid (direct mapping)
    /// skip the write; backends with per-eviction slot allocation report
    /// [`writes_clean_pages`](crate::backend::FarBackend::writes_clean_pages),
    /// so every page is written.
    pub(crate) async fn post_writebacks(&self, batch: &[EvictPage]) -> WritebackSet {
        let t_post = self.sim.now();
        let must_write_clean = self.backend.writes_clean_pages();
        let mut completions = Vec::new();
        for (idx, page) in batch.iter().enumerate() {
            if page.dirty || must_write_clean {
                completions.push((idx, self.backend.write_page_at(page.rpn, PAGE_SIZE)));
            } else {
                self.stats.clean_reclaims.inc();
            }
        }
        let wrote = completions.len() as u64;
        if wrote > 0 {
            // Doorbell-batched posting cost for the whole group.
            self.sim
                .sleep(
                    self.cfg.costs.os.rdma_post_cpu_ns
                        + self.cfg.costs.evict_post_per_page_ns * (wrote - 1),
                )
                .await;
            self.stats.writebacks.add(wrote);
        }
        let wb = WritebackSet { completions };
        if let (Some(t), Some(done)) = (self.tracer(), wb.done_at()) {
            // The in-flight window is known at post time (completion
            // instants are fixed when posted), so the whole batch is one
            // predicted event on the writeback track.
            t.record(
                TRACK_WRITEBACK,
                "evict",
                "writeback",
                t_post.as_nanos(),
                done.saturating_since(t_post),
                Some(("pages", wrote)),
            );
        }
        wb
    }

    /// Step ⑥ settlement: inspect the completed writebacks of a batch,
    /// retry the failed ones, and re-insert victims whose write could not
    /// be made durable. Returns the pages that may proceed to reclaim.
    ///
    /// Must be called only after [`WritebackSet::done_at`]: outcomes are
    /// read synchronously, so the fault-free path adds no awaits (and no
    /// schedule perturbation) here.
    pub(crate) async fn settle_writebacks(
        &self,
        core: CoreId,
        batch: &[EvictPage],
        wb: &WritebackSet,
    ) -> Vec<EvictPage> {
        let mut failed = Vec::new();
        for (idx, c) in &wb.completions {
            if let Err(e) = c.outcome() {
                if self
                    .retry_transfer(TransferOp::Write, PAGE_SIZE, Some(batch[*idx].rpn), Err(e))
                    .await
                    .is_err()
                {
                    failed.push(*idx);
                }
            }
        }
        if failed.is_empty() {
            return batch.to_vec();
        }
        let mut survivors = Vec::with_capacity(batch.len() - failed.len());
        for (idx, page) in batch.iter().enumerate() {
            if failed.contains(&idx) {
                self.requeue_victim(core, page).await;
            } else {
                survivors.push(*page);
            }
        }
        survivors
    }

    /// Re-inserts a victim whose writeback exhausted its retries: the
    /// remote copy never became durable, so the frame (still intact —
    /// reclaim happens strictly after settlement) is re-mapped dirty.
    /// This reuses the refault-cancellation bookkeeping: the page leaves
    /// `evicting` under its generation tag, so the settlement identity
    /// `evicted + sync + cancelled + requeued ≤ unmapped` is preserved.
    async fn requeue_victim(&self, core: CoreId, page: &EvictPage) {
        {
            let mut evicting = self.evicting.borrow_mut();
            match evicting.get(page.vpn) {
                Some(&(_, gen)) if gen == page.gen => {
                    evicting.remove(page.vpn);
                }
                _ => {
                    // A concurrent refault already cancelled this eviction
                    // and owns the frame; nothing left to roll back.
                    self.stats.evict_cancelled_pages.inc();
                    return;
                }
            }
        }
        let pte = self.pt.get(page.vpn);
        debug_assert!(pte.is_remote() && pte.locked(), "requeue of a settled page");
        let rpn = pte.payload();
        self.sim.sleep(self.cfg.costs.os.pte_update_ns).await;
        // Dirty: the only valid copy is local again. The set rewrites the
        // word while the lock bit (held since unmap) clears: unlock after.
        self.pt.set(
            page.vpn,
            Pte::present(page.frame).with_accessed(true).with_dirty(true),
        );
        self.pt.shadow_unlock(page.vpn);
        if self.acct.insert(core.index(), page.vpn).await {
            // Not a fault — the victim came straight back because its
            // writeback failed — so only the ghost-hit counter moves.
            self.stats.ghost_hits.inc();
        }
        self.wake_page(page.vpn);
        self.backend.release_slot(rpn).await;
        self.stats.requeued_victims.inc();
        self.emit(PageEvent::Requeued {
            vpn: page.vpn,
            frame: page.frame,
        });
    }

    /// Step ⑦: reclaim the frames, release the page locks and wake both
    /// page waiters and threads stalled on the free list. Returns the
    /// number of frames actually reclaimed (cancelled pages excluded).
    pub(crate) async fn finalize_batch(
        &self,
        core: CoreId,
        batch: &[EvictPage],
        sync: bool,
    ) -> usize {
        let t0 = self.sim.now();
        let mut frames = Vec::with_capacity(batch.len());
        let mut settled = Vec::new();
        for page in batch {
            // A concurrent refault may have cancelled this page's
            // eviction and reclaimed the frame — and the page may even be
            // mid-eviction again under a *newer* batch. Only the batch
            // whose generation still owns the entry may reclaim.
            {
                let mut evicting = self.evicting.borrow_mut();
                match evicting.get(page.vpn) {
                    Some(&(_, gen)) if gen == page.gen => {
                        evicting.remove(page.vpn);
                    }
                    _ => {
                        self.stats.evict_cancelled_pages.inc();
                        continue;
                    }
                }
            }
            #[cfg(debug_assertions)]
            for c in self.topo.cores() {
                debug_assert!(
                    !self.ic.tlb(c).translates(page.vpn),
                    "frame reclaim with live translation: vpn {:#x} core {c:?}",
                    page.vpn
                );
            }
            self.pt.update(page.vpn, |p| p.with_locked(false));
            self.pt.shadow_unlock(page.vpn);
            self.wake_page(page.vpn);
            self.emit(PageEvent::Reclaimed {
                vpn: page.vpn,
                frame: page.frame,
            });
            if self.cfg.break_publish {
                settled.push(page.vpn);
            }
            frames.push(page.frame);
        }
        self.alloc.free_batch(core.index(), &frames).await;
        self.free_waiters.wake_all();
        // Planted bug (test-only, `break_publish`): redundantly re-publish
        // the settled PTE words *after* dropping their lock bits and
        // waking waiters. The rewritten values are identical, so no
        // functional test can tell — but each `set` is an unlocked plain
        // write that races with the next fault-in install (or unmap) of
        // the same page. Only the race detector can see it.
        if self.cfg.break_publish {
            for &vpn in &settled {
                self.pt.set(vpn, self.pt.get(vpn));
            }
        }
        self.stats.eviction_batches.inc();
        // Count only frames actually reclaimed: pages cancelled mid-batch
        // by a refault are accounted under `evict_cancelled_pages`, never
        // under the evicted counters. `break_settlement` resurrects the
        // historical double-count (a deliberate, test-only bug for the
        // mage-check oracle to catch).
        let counted = if self.cfg.break_settlement {
            2 * frames.len() as u64
        } else {
            frames.len() as u64
        };
        if sync {
            self.stats.sync_evicted_pages.add(counted);
        } else {
            self.stats.evicted_pages.add(counted);
        }
        self.trace_evt(
            core.0,
            "evict",
            "finalize",
            t0,
            Some(("frames", frames.len() as u64)),
        );
        frames.len()
    }

    /// Steps ②–⑦ with blocking waits: shootdown, writeback, reclaim.
    /// Returns the TLB-shootdown wait time.
    async fn flush_batch_sync(&self, core: CoreId, batch: &[EvictPage], sync: bool) -> Nanos {
        let t_tlb = self.sim.now();
        let ticket = self.send_shootdown(core, batch).await;
        ticket.wait().await;
        let tlb_ns = self.sim.now().saturating_since(t_tlb);
        let wb = self.post_writebacks(batch).await;
        if let Some(done) = wb.done_at() {
            self.sim.sleep_until(done).await;
        }
        let survivors = self.settle_writebacks(core, batch, &wb).await;
        self.finalize_batch(core, &survivors, sync).await;
        tlb_ns
    }

    /// Force-evicts the given present pages (an `madvise(MADV_PAGEOUT)`
    /// analogue, the mechanism the paper's §3.2 microbenchmarks use to
    /// pre-evict pages). Runs the full unmap → shootdown → writeback →
    /// reclaim sequence synchronously on the calling core and returns the
    /// number of pages actually paged out.
    pub async fn pageout(&self, core: CoreId, vpns: &[u64]) -> usize {
        let mut batch = Vec::new();
        for &vpn in vpns {
            if let Some(page) = self.unmap_candidate(vpn).await {
                batch.push(page);
            }
        }
        if batch.is_empty() {
            return 0;
        }
        self.flush_batch_sync(core, &batch, false).await;
        batch.len()
    }

    /// A full sequential eviction batch (steps ①–⑦ with blocking waits).
    ///
    /// Used by the background evictors of non-pipelined systems and by
    /// the synchronous-eviction fallback on the fault path (`sync`).
    pub(crate) async fn evict_batch(
        &self,
        core: CoreId,
        evictor_id: usize,
        round: usize,
        want: usize,
        sync: bool,
    ) -> EvictOutcome {
        if sync {
            self.stats.sync_evictions.inc();
        }
        let t_scan = self.sim.now();
        let (batch, acct_ns) = self.scan_and_unmap(evictor_id, round, want).await;
        self.trace_evt(
            core.0,
            "evict",
            "scan",
            t_scan,
            Some(("pages", batch.len() as u64)),
        );
        if batch.is_empty() {
            return EvictOutcome {
                pages: 0,
                tlb_ns: 0,
                acct_ns,
            };
        }
        let tlb_ns = self.flush_batch_sync(core, &batch, sync).await;
        EvictOutcome {
            pages: batch.len(),
            tlb_ns,
            acct_ns,
        }
    }
}
