//! Background evictor threads: the sequential loop, MAGE's cross-batch
//! pipelined evictor (P2) and Hermit's feedback-directed scaling
//! controller.
//!
//! The **sequential** evictor (Hermit/DiLOS) performs steps ①–⑦ of §4.1
//! for one batch before starting the next. The **pipelined** evictor
//! (MAGE) uses the waiting periods of steps ③ and ⑥ to advance other
//! batches: up to three batches are in flight, and the evictor's event
//! loop harvests whichever stage completed first.
//!
//! Safety invariant (checked in debug builds in
//! [`finalize_batch`](super::batch)): a frame is reclaimed only after
//! every core's TLB entry for the page is gone *and* the page's backend
//! copy is durable.

use std::collections::VecDeque;
use std::rc::Rc;

use mage_mmu::{CoreId, FlushTicket};

use crate::machine::FarMemory;
use crate::reclaim::batch::{EvictPage, WritebackSet};

/// In-flight state of a pipelined evictor: the TSB and RSB of §4.1.
pub(crate) struct Pipeline {
    /// Batches whose shootdown is in flight (TLB staging buffer).
    tsb: VecDeque<(Vec<EvictPage>, FlushTicket)>,
    /// Batches whose writebacks are in flight (RDMA staging buffer).
    rsb: VecDeque<(Vec<EvictPage>, WritebackSet)>,
}

impl Pipeline {
    pub(crate) fn new() -> Self {
        Pipeline {
            tsb: VecDeque::new(),
            rsb: VecDeque::new(),
        }
    }

    fn depth(&self) -> usize {
        self.tsb.len() + self.rsb.len()
    }

    /// Pages currently unmapped but not yet reclaimed.
    fn in_flight_pages(&self) -> usize {
        self.tsb.iter().map(|(b, _)| b.len()).sum::<usize>()
            + self.rsb.iter().map(|(b, _)| b.len()).sum::<usize>()
    }
}

impl FarMemory {
    /// Background evictor thread `id`. Only the first
    /// `active_evictors` threads do work (feedback-directed scaling).
    pub(crate) async fn evictor_main(self: Rc<Self>, id: usize) {
        let core = self.evictor_cores[id % self.evictor_cores.len()];
        let mut round = id; // staggered start (§4.2.2)
        let mut pipe = Pipeline::new();
        let idle_ns = self.cfg.costs.evictor_idle_ns;
        let parked_ns = self.cfg.costs.evictor_parked_ns;
        loop {
            if self.stop_flag.get() {
                break;
            }
            if id >= self.active_evictors.get() {
                self.sim.sleep(parked_ns).await;
                continue;
            }
            // A stalled allocator is a deficit even above the watermark:
            // `free_frames` counts frames stranded in *other* cores'
            // per-CPU caches, which the waiter cannot reach. Without this
            // (the Linux failed-allocation-wakes-kswapd rule) a thread
            // can park on the free list forever while the evictors idle —
            // a liveness bug found by mage-check's schedule exploration.
            let deficit = self.alloc.free_frames() < self.high_watermark
                || !self.free_waiters.is_empty();
            if self.cfg.pipelined_eviction {
                let progressed = self
                    .pipeline_step(core, id, &mut round, &mut pipe, deficit)
                    .await;
                if !progressed {
                    self.sim.sleep(idle_ns).await;
                }
            } else {
                if !deficit {
                    self.sim.sleep(idle_ns).await;
                    continue;
                }
                let outcome = self
                    .evict_batch(core, id, round, self.cfg.eviction_batch, false)
                    .await;
                round += 1;
                if outcome.pages == 0 {
                    self.sim.sleep(idle_ns).await;
                }
            }
        }
    }

    /// Hermit's feedback-directed controller: doubles the evictor pool
    /// when free pages run low, halves it when pressure subsides.
    pub(crate) async fn scaling_controller(self: Rc<Self>) {
        let poll_ns = self.cfg.costs.scaling_poll_ns;
        loop {
            if self.stop_flag.get() {
                break;
            }
            self.sim.sleep(poll_ns).await;
            let free = self.alloc.free_frames();
            let active = self.active_evictors.get();
            if free < self.low_watermark && active < self.cfg.max_evictors {
                self.active_evictors
                    .set((active * 2).min(self.cfg.max_evictors));
            } else if free > self.high_watermark && active > self.cfg.evictors {
                self.active_evictors
                    .set((active / 2).max(self.cfg.evictors));
            }
        }
    }

    /// One event-loop step of the pipelined evictor. Returns whether any
    /// stage made progress (if not, the caller idles briefly).
    pub(crate) async fn pipeline_step(
        &self,
        core: CoreId,
        evictor_id: usize,
        round: &mut usize,
        pipe: &mut Pipeline,
        deficit: bool,
    ) -> bool {
        let now = self.sim.now();
        let mut progressed = false;

        // Steps ⑥–⑦: settle and harvest write-complete batches from the
        // RSB (retrying failed writebacks and requeueing victims whose
        // write could not be made durable).
        while pipe
            .rsb
            .front()
            .is_some_and(|(_, wb)| wb.done_at().is_none_or(|t| t <= now))
        {
            let (batch, wb) = pipe.rsb.pop_front().expect("checked non-empty");
            let survivors = self.settle_writebacks(core, &batch, &wb).await;
            self.finalize_batch(core, &survivors, false).await;
            progressed = true;
        }

        // Steps ④–⑤: move TLB-acked batches from the TSB to the RSB.
        while pipe.tsb.front().is_some_and(|(_, t)| t.done_at() <= now) {
            let (batch, _) = pipe.tsb.pop_front().expect("checked non-empty");
            let wb = self.post_writebacks(&batch).await;
            pipe.rsb.push_back((batch, wb));
            progressed = true;
        }

        // Steps ①–②: start a fresh batch while there is memory pressure
        // and pipeline capacity (three batches in flight, §4.1). Pace the
        // refill to the actual free-page deficit: firing the whole
        // pipeline the instant the watermark is crossed produces periodic
        // IPI storms that needlessly spike application tail latency.
        let mut shortfall = self.high_watermark.saturating_sub(self.alloc.free_frames()) as usize;
        if !self.free_waiters.is_empty() {
            // Stalled allocators need reclaimed frames routed through the
            // shared queue no matter what the raw free count says.
            shortfall = shortfall.max(self.cfg.eviction_batch);
        }
        if deficit && pipe.depth() < 3 && pipe.in_flight_pages() < shortfall {
            let t_scan = self.sim.now();
            let (batch, _acct) = self
                .scan_and_unmap(evictor_id, *round, self.cfg.eviction_batch)
                .await;
            self.trace_evt(
                core.0,
                "evict",
                "scan",
                t_scan,
                Some(("pages", batch.len() as u64)),
            );
            *round += 1;
            if !batch.is_empty() {
                let ticket = self.send_shootdown(core, &batch).await;
                pipe.tsb.push_back((batch, ticket));
                progressed = true;
            }
        }

        if !progressed {
            // Steps ③/⑥: sleep until the earliest in-flight completion
            // instead of spinning.
            let next_tlb = pipe.tsb.front().map(|(_, t)| t.done_at());
            let next_rdma = pipe.rsb.front().and_then(|(_, wb)| wb.done_at());
            let next = match (next_tlb, next_rdma) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if let Some(t) = next {
                self.sim.sleep_until(t).await;
                return true;
            }
        }
        progressed
    }
}
