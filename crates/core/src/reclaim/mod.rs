//! The eviction path (`EP₁`–`EP₃`), layered:
//!
//! - [`policy`] — pluggable victim-selection policies (the second-chance
//!   test of `EP₁` and its alternatives), behind the [`EvictionPolicy`]
//!   trait;
//! - `batch` — the life of one batch: unmap, shootdown, writeback,
//!   reclaim (steps ①–⑦ of §4.1), shared by every eviction flavour;
//! - `pipeline` — the background evictor threads: sequential loop,
//!   MAGE's cross-batch pipelined evictor (P2) and Hermit's scaling
//!   controller.
//!
//! The split keeps one `scan_and_unmap`/`finalize_batch` implementation
//! under all four entry points (background sequential, background
//! pipelined, synchronous fault-path fallback, forced pageout); policies
//! and backends extend the path through traits instead of engine edits.

pub mod policy;

pub(crate) mod batch;
pub(crate) mod pipeline;

pub use policy::{AgingClock, ApproxLru, EvictionPolicy, Fifo, S3Fifo, SecondChance};

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use mage_mmu::{CoreId, Topology};
    use mage_sim::Simulation;

    use crate::machine::{Access, FarMemory, MachineParams};
    use crate::reclaim::batch::EvictPage;
    use crate::SystemConfig;

    fn rig(cfg: SystemConfig, local_pages: u64) -> (Simulation, Rc<FarMemory>, mage_mmu::Vma) {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages,
            remote_pages: 8_192,
            tlb_entries: 128,
            seed: 11,
        };
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(2_048);
        engine.populate(&vma);
        (sim, engine, vma)
    }

    #[test]
    fn refault_cancels_inflight_eviction() {
        let (sim, engine, vma) = rig(SystemConfig::mage_lib(), 512);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            let vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_present())
                .expect("local page");
            let frame = e.pt.get(vpn).payload();
            // Simulate the page being mid-eviction (unmapped, locked,
            // shootdown/writeback pending).
            e.pt.set(vpn, mage_mmu::Pte::remote(7).with_locked(true));
            e.evicting.borrow_mut().insert(vpn, (frame, 424242));
            let access = e.access(CoreId(0), vpn, false).await;
            assert!(matches!(access, Access::Major { .. }));
            assert_eq!(e.stats.evict_cancels.get(), 1);
            let pte = e.pt.get(vpn);
            assert!(pte.is_present(), "cancelled page must be re-mapped");
            assert_eq!(pte.payload(), frame, "same frame reclaimed");
            assert!(pte.dirty(), "remote copy may be stale => dirty");
            assert!(e.evicting.borrow().is_empty(), "cancel consumed the entry");
        });
    }

    #[test]
    fn stale_generation_is_not_reclaimed_by_old_batch() {
        // A cancelled-and-re-evicted page must only be finalized by the
        // batch that currently owns it (ABA protection).
        let (sim, engine, vma) = rig(SystemConfig::mage_lib(), 512);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            let vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_present())
                .expect("local page");
            let frame = e.pt.get(vpn).payload();
            e.pt.set(vpn, mage_mmu::Pte::remote(7).with_locked(true));
            // Newer generation owns the entry.
            e.evicting.borrow_mut().insert(vpn, (frame, 2));
            let old_batch = vec![EvictPage {
                vpn,
                frame,
                rpn: 7,
                dirty: false,
                gen: 1,
            }];
            let free_before = e.alloc.free_frames();
            let reclaimed = e.finalize_batch(CoreId(4), &old_batch, false).await;
            assert_eq!(reclaimed, 0, "stale batch reclaims nothing");
            assert_eq!(
                e.alloc.free_frames(),
                free_before,
                "stale batch must not free the frame"
            );
            assert_eq!(e.stats.evict_cancelled_pages.get(), 1);
            assert_eq!(
                e.stats.evicted_pages.get(),
                0,
                "cancelled pages are not counted as evicted"
            );
            assert!(e.pt.get(vpn).locked(), "newer owner's lock intact");
        });
    }

    #[test]
    fn hermit_scaling_controller_reacts_to_pressure() {
        let (sim, engine, vma) = rig(SystemConfig::hermit(), 512);
        assert_eq!(engine.active_evictors.get(), 4);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Hammer faults so free pages stay scarce for a while.
            for round in 0..3 {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, round == 0)
                        .await;
                }
            }
        });
        assert!(
            engine.active_evictors.get() > 4 || engine.stats.sync_evictions.get() > 0,
            "pressure must either scale evictors or trigger sync eviction"
        );
    }

    #[test]
    fn sequential_and_pipelined_agree_on_conservation() {
        for pipelined in [false, true] {
            let mut cfg = SystemConfig::mage_lib();
            cfg.pipelined_eviction = pipelined;
            let (sim, engine, vma) = rig(cfg, 512);
            let e = Rc::clone(&engine);
            sim.block_on(async move {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, i % 3 == 0)
                        .await;
                }
            });
            engine.shutdown();
            let resident = engine.acct.resident_pages();
            let free = engine.alloc.free_frames();
            assert!(resident + free <= 512, "pipelined={pipelined}: over-commit");
            assert!(engine.stats.evicted_pages.get() > 0);
        }
    }

    #[test]
    fn evicted_and_cancelled_pages_account_for_every_unmap() {
        // Every page that enters the eviction machinery (unmapped) must
        // leave it as exactly one of: evicted, sync-evicted, cancelled —
        // or still be in flight at shutdown.
        let (sim, engine, vma) = rig(SystemConfig::mage_lib(), 512);
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            for round in 0..2 {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, round == 0)
                        .await;
                }
            }
        });
        engine.shutdown();
        let s = engine.stats();
        // Each unmapped page settles as exactly one of evicted,
        // sync-evicted or cancelled-at-finalize (a fault-side cancel is
        // observed by its owning batch as a cancelled page later).
        let settled = s.evicted_pages.get()
            + s.sync_evicted_pages.get()
            + s.evict_cancelled_pages.get();
        let unmapped = s.unmapped_pages.get();
        assert!(unmapped > 0);
        assert!(settled <= unmapped, "settled {settled} > unmapped {unmapped}");
        let in_flight = unmapped - settled;
        assert!(
            in_flight <= 3 * 256 * 4,
            "{in_flight} pages unaccounted beyond pipeline capacity"
        );
        assert!(
            s.evict_cancelled_pages.get() <= s.evict_cancels.get(),
            "a batch observed more cancellations than faults performed"
        );
    }
}
