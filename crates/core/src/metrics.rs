//! Measurement windows over every stat source of a running machine.
//!
//! A [`MetricsRegistry`] composes the engine, NIC, interrupt and
//! accounting statistics into one façade with two operations:
//! [`snapshot`](MetricsRegistry::snapshot) captures a cheap start line
//! ([`MetricsSnapshot`]), and
//! [`window_since`](MetricsRegistry::window_since) computes the
//! *end − start* deltas ([`MetricsWindow`]). Reports are derived from a
//! window, never from cumulative counters, so the "warmup reset missed a
//! counter" bug class is structurally impossible: a counter that exists
//! in the registry is windowed by construction, and one that doesn't
//! cannot appear in a report at all.
//!
//! The destructive `EngineStats::reset` shim this replaces (since
//! removed) cleared only
//! the engine's own counters — NIC byte counts and IPI histograms kept
//! their warmup samples and were then divided by the post-warmup runtime,
//! inflating `read_gbps`/`write_gbps` and skewing `shootdown_mean_ns`.

use mage_accounting::AccountingStats;
use mage_fabric::NicStats;
use mage_mmu::IpiStats;
use mage_sim::stats::{CounterSnapshot, HistogramDelta, HistogramSnapshot, TimeStatDelta, TimeStatSnapshot};
use mage_sim::time::Nanos;

use crate::backend::ReplicationStats;
use crate::stats::{BreakdownMeans, EngineStats};

/// Borrowed view of every stat source of one machine; the entry point for
/// snapshot/delta measurement windows. Obtain via
/// [`FarMemory::metrics`](crate::machine::FarMemory::metrics).
pub struct MetricsRegistry<'a> {
    /// Engine-level counters and distributions.
    pub engine: &'a EngineStats,
    /// NIC transfer counters and latency distributions.
    pub nic: &'a NicStats,
    /// IPI / TLB-shootdown counters and distributions.
    pub interrupts: &'a IpiStats,
    /// Page-accounting counters.
    pub accounting: &'a AccountingStats,
    /// Replica-repair counters, present only when the machine runs a
    /// [`ReplicatedBackend`](crate::backend::ReplicatedBackend).
    pub replication: Option<&'a ReplicationStats>,
}

/// Start line of a measurement window: a point-in-time capture of every
/// registered stat source. Cheap to take (a few hundred plain copies, no
/// virtual time passes).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    // Engine counters.
    accesses: CounterSnapshot,
    tlb_hits: CounterSnapshot,
    minor_walks: CounterSnapshot,
    major_faults: CounterSnapshot,
    page_lock_waits: CounterSnapshot,
    sync_evictions: CounterSnapshot,
    evicted_pages: CounterSnapshot,
    sync_evicted_pages: CounterSnapshot,
    writebacks: CounterSnapshot,
    clean_reclaims: CounterSnapshot,
    eviction_batches: CounterSnapshot,
    unmapped_pages: CounterSnapshot,
    evict_cancels: CounterSnapshot,
    evict_cancelled_pages: CounterSnapshot,
    prefetches: CounterSnapshot,
    prefetch_inflight_hits: CounterSnapshot,
    transfer_retries: CounterSnapshot,
    transfer_failures: CounterSnapshot,
    aborted_faults: CounterSnapshot,
    requeued_victims: CounterSnapshot,
    failover_reads: CounterSnapshot,
    re_faults: CounterSnapshot,
    ghost_hits: CounterSnapshot,
    fault_latency: HistogramSnapshot,
    retry_latency: HistogramSnapshot,
    breakdown_rdma: TimeStatSnapshot,
    breakdown_tlb: TimeStatSnapshot,
    breakdown_accounting: TimeStatSnapshot,
    breakdown_circulation: TimeStatSnapshot,
    breakdown_other: TimeStatSnapshot,
    free_wait: TimeStatSnapshot,
    // NIC.
    nic_reads: CounterSnapshot,
    nic_writes: CounterSnapshot,
    nic_read_bytes: CounterSnapshot,
    nic_write_bytes: CounterSnapshot,
    nic_read_latency: HistogramSnapshot,
    nic_write_latency: HistogramSnapshot,
    // Interrupts.
    ipis: CounterSnapshot,
    shootdowns: CounterSnapshot,
    ipi_latency: HistogramSnapshot,
    shootdown_latency: HistogramSnapshot,
    // Accounting.
    acct_inserts: CounterSnapshot,
    acct_scanned: CounterSnapshot,
    acct_reactivated: CounterSnapshot,
    acct_victims: CounterSnapshot,
    // Replication (zero when the machine has no replicated backend).
    rereplicated_pages: CounterSnapshot,
    degraded_marks: CounterSnapshot,
}

/// The *end − start* deltas of one measurement window. Every field is a
/// windowed value: counters are plain differences, distributions are
/// [`HistogramDelta`]s / [`TimeStatDelta`]s covering only samples recorded
/// inside the window.
pub struct MetricsWindow {
    /// Page accesses in the window.
    pub accesses: u64,
    /// TLB hits in the window.
    pub tlb_hits: u64,
    /// Minor walks in the window.
    pub minor_walks: u64,
    /// Major faults in the window.
    pub major_faults: u64,
    /// Page-lock waits in the window.
    pub page_lock_waits: u64,
    /// Synchronous evictions in the window.
    pub sync_evictions: u64,
    /// Background-evicted pages in the window.
    pub evicted_pages: u64,
    /// Synchronously evicted pages in the window.
    pub sync_evicted_pages: u64,
    /// Writebacks in the window.
    pub writebacks: u64,
    /// Clean reclaims in the window.
    pub clean_reclaims: u64,
    /// Eviction batches in the window.
    pub eviction_batches: u64,
    /// Pages unmapped in the window.
    pub unmapped_pages: u64,
    /// Refault-cancelled evictions in the window.
    pub evict_cancels: u64,
    /// Eviction-batch pages cancelled in the window.
    pub evict_cancelled_pages: u64,
    /// Pages prefetched in the window.
    pub prefetches: u64,
    /// In-flight prefetch hits in the window.
    pub prefetch_inflight_hits: u64,
    /// Transfer retries in the window.
    pub transfer_retries: u64,
    /// Exhausted-retry transfer failures in the window.
    pub transfer_failures: u64,
    /// Aborted faults in the window.
    pub aborted_faults: u64,
    /// Requeued eviction victims in the window.
    pub requeued_victims: u64,
    /// Reads served from a surviving replica in the window.
    pub failover_reads: u64,
    /// Major faults that hit the ghost list in the window (pages evicted
    /// too early — the re-fault-rate numerator).
    pub re_faults: u64,
    /// All ghost-list hits in the window (re-faults plus eviction cancels
    /// and requeues).
    pub ghost_hits: u64,
    /// Fault-latency distribution over the window.
    pub fault_latency: HistogramDelta,
    /// Retry-recovery latency distribution over the window.
    pub retry_latency: HistogramDelta,
    /// RDMA-read component of the fault breakdown, window only.
    pub breakdown_rdma: TimeStatDelta,
    /// In-fault TLB component of the fault breakdown, window only.
    pub breakdown_tlb: TimeStatDelta,
    /// Accounting component of the fault breakdown, window only.
    pub breakdown_accounting: TimeStatDelta,
    /// Circulation component of the fault breakdown, window only.
    pub breakdown_circulation: TimeStatDelta,
    /// Residual component of the fault breakdown, window only.
    pub breakdown_other: TimeStatDelta,
    /// Free-page wait time over the window.
    pub free_wait: TimeStatDelta,
    /// NIC reads completed in the window.
    pub nic_reads: u64,
    /// NIC writes completed in the window.
    pub nic_writes: u64,
    /// Bytes read remote→local in the window.
    pub nic_read_bytes: u64,
    /// Bytes written local→remote in the window.
    pub nic_write_bytes: u64,
    /// NIC read-latency distribution over the window.
    pub nic_read_latency: HistogramDelta,
    /// NIC write-latency distribution over the window.
    pub nic_write_latency: HistogramDelta,
    /// IPIs delivered in the window.
    pub ipis: u64,
    /// Shootdown rounds in the window.
    pub shootdowns: u64,
    /// Per-IPI latency distribution over the window.
    pub ipi_latency: HistogramDelta,
    /// Shootdown (first-send → last-ACK) distribution over the window.
    pub shootdown_latency: HistogramDelta,
    /// Accounting inserts in the window.
    pub acct_inserts: u64,
    /// Accounting pages scanned in the window.
    pub acct_scanned: u64,
    /// Accounting reactivations in the window.
    pub acct_reactivated: u64,
    /// Accounting victims taken in the window.
    pub acct_victims: u64,
    /// Pages copied back to full replication in the window (zero without
    /// a replicated backend).
    pub rereplicated_pages: u64,
    /// Replica slots marked degraded by node outages in the window.
    pub degraded_marks: u64,
}

impl MetricsWindow {
    /// Achieved read bandwidth over the window, in Gbps, for a window of
    /// `elapsed` ns. Counts only bytes moved *inside* the window.
    pub fn read_gbps(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.nic_read_bytes as f64 * 8.0 / elapsed as f64
    }

    /// Achieved write bandwidth over the window, in Gbps.
    pub fn write_gbps(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.nic_write_bytes as f64 * 8.0 / elapsed as f64
    }

    /// Mean per-fault component latencies over the window (the Fig. 6/16
    /// breakdown).
    pub fn breakdown_means(&self) -> BreakdownMeans {
        BreakdownMeans {
            rdma: self.breakdown_rdma.mean(),
            tlb: self.breakdown_tlb.mean(),
            accounting: self.breakdown_accounting.mean(),
            circulation: self.breakdown_circulation.mean(),
            other: self.breakdown_other.mean(),
        }
    }
}

impl MetricsRegistry<'_> {
    /// Captures the start line of a measurement window.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let e = self.engine;
        let b = &e.breakdown;
        MetricsSnapshot {
            accesses: e.accesses.snapshot(),
            tlb_hits: e.tlb_hits.snapshot(),
            minor_walks: e.minor_walks.snapshot(),
            major_faults: e.major_faults.snapshot(),
            page_lock_waits: e.page_lock_waits.snapshot(),
            sync_evictions: e.sync_evictions.snapshot(),
            evicted_pages: e.evicted_pages.snapshot(),
            sync_evicted_pages: e.sync_evicted_pages.snapshot(),
            writebacks: e.writebacks.snapshot(),
            clean_reclaims: e.clean_reclaims.snapshot(),
            eviction_batches: e.eviction_batches.snapshot(),
            unmapped_pages: e.unmapped_pages.snapshot(),
            evict_cancels: e.evict_cancels.snapshot(),
            evict_cancelled_pages: e.evict_cancelled_pages.snapshot(),
            prefetches: e.prefetches.snapshot(),
            prefetch_inflight_hits: e.prefetch_inflight_hits.snapshot(),
            transfer_retries: e.transfer_retries.snapshot(),
            transfer_failures: e.transfer_failures.snapshot(),
            aborted_faults: e.aborted_faults.snapshot(),
            requeued_victims: e.requeued_victims.snapshot(),
            failover_reads: e.failover_reads.snapshot(),
            re_faults: e.re_faults.snapshot(),
            ghost_hits: e.ghost_hits.snapshot(),
            fault_latency: e.fault_latency.snapshot(),
            retry_latency: e.retry_latency.snapshot(),
            breakdown_rdma: b.rdma.borrow().snapshot(),
            breakdown_tlb: b.tlb.borrow().snapshot(),
            breakdown_accounting: b.accounting.borrow().snapshot(),
            breakdown_circulation: b.circulation.borrow().snapshot(),
            breakdown_other: b.other.borrow().snapshot(),
            free_wait: e.free_wait.borrow().snapshot(),
            nic_reads: self.nic.reads.snapshot(),
            nic_writes: self.nic.writes.snapshot(),
            nic_read_bytes: self.nic.read_bytes.snapshot(),
            nic_write_bytes: self.nic.write_bytes.snapshot(),
            nic_read_latency: self.nic.read_latency.snapshot(),
            nic_write_latency: self.nic.write_latency.snapshot(),
            ipis: self.interrupts.ipis.snapshot(),
            shootdowns: self.interrupts.shootdowns.snapshot(),
            ipi_latency: self.interrupts.ipi_latency.snapshot(),
            shootdown_latency: self.interrupts.shootdown_latency.snapshot(),
            acct_inserts: self.accounting.inserts.snapshot(),
            acct_scanned: self.accounting.scanned.snapshot(),
            acct_reactivated: self.accounting.reactivated.snapshot(),
            acct_victims: self.accounting.victims.snapshot(),
            rereplicated_pages: self
                .replication
                .map(|r| r.rereplicated_pages.snapshot())
                .unwrap_or_default(),
            degraded_marks: self
                .replication
                .map(|r| r.degraded_marks.snapshot())
                .unwrap_or_default(),
        }
    }

    /// Computes the *current − start* window over every registered stat.
    pub fn window_since(&self, start: &MetricsSnapshot) -> MetricsWindow {
        let e = self.engine;
        let b = &e.breakdown;
        MetricsWindow {
            accesses: e.accesses.delta(&start.accesses),
            tlb_hits: e.tlb_hits.delta(&start.tlb_hits),
            minor_walks: e.minor_walks.delta(&start.minor_walks),
            major_faults: e.major_faults.delta(&start.major_faults),
            page_lock_waits: e.page_lock_waits.delta(&start.page_lock_waits),
            sync_evictions: e.sync_evictions.delta(&start.sync_evictions),
            evicted_pages: e.evicted_pages.delta(&start.evicted_pages),
            sync_evicted_pages: e.sync_evicted_pages.delta(&start.sync_evicted_pages),
            writebacks: e.writebacks.delta(&start.writebacks),
            clean_reclaims: e.clean_reclaims.delta(&start.clean_reclaims),
            eviction_batches: e.eviction_batches.delta(&start.eviction_batches),
            unmapped_pages: e.unmapped_pages.delta(&start.unmapped_pages),
            evict_cancels: e.evict_cancels.delta(&start.evict_cancels),
            evict_cancelled_pages: e.evict_cancelled_pages.delta(&start.evict_cancelled_pages),
            prefetches: e.prefetches.delta(&start.prefetches),
            prefetch_inflight_hits: e.prefetch_inflight_hits.delta(&start.prefetch_inflight_hits),
            transfer_retries: e.transfer_retries.delta(&start.transfer_retries),
            transfer_failures: e.transfer_failures.delta(&start.transfer_failures),
            aborted_faults: e.aborted_faults.delta(&start.aborted_faults),
            requeued_victims: e.requeued_victims.delta(&start.requeued_victims),
            failover_reads: e.failover_reads.delta(&start.failover_reads),
            re_faults: e.re_faults.delta(&start.re_faults),
            ghost_hits: e.ghost_hits.delta(&start.ghost_hits),
            fault_latency: e.fault_latency.delta(&start.fault_latency),
            retry_latency: e.retry_latency.delta(&start.retry_latency),
            breakdown_rdma: b.rdma.borrow().delta(&start.breakdown_rdma),
            breakdown_tlb: b.tlb.borrow().delta(&start.breakdown_tlb),
            breakdown_accounting: b.accounting.borrow().delta(&start.breakdown_accounting),
            breakdown_circulation: b.circulation.borrow().delta(&start.breakdown_circulation),
            breakdown_other: b.other.borrow().delta(&start.breakdown_other),
            free_wait: e.free_wait.borrow().delta(&start.free_wait),
            nic_reads: self.nic.reads.delta(&start.nic_reads),
            nic_writes: self.nic.writes.delta(&start.nic_writes),
            nic_read_bytes: self.nic.read_bytes.delta(&start.nic_read_bytes),
            nic_write_bytes: self.nic.write_bytes.delta(&start.nic_write_bytes),
            nic_read_latency: self.nic.read_latency.delta(&start.nic_read_latency),
            nic_write_latency: self.nic.write_latency.delta(&start.nic_write_latency),
            ipis: self.interrupts.ipis.delta(&start.ipis),
            shootdowns: self.interrupts.shootdowns.delta(&start.shootdowns),
            ipi_latency: self.interrupts.ipi_latency.delta(&start.ipi_latency),
            shootdown_latency: self.interrupts.shootdown_latency.delta(&start.shootdown_latency),
            acct_inserts: self.accounting.inserts.delta(&start.acct_inserts),
            acct_scanned: self.accounting.scanned.delta(&start.acct_scanned),
            acct_reactivated: self.accounting.reactivated.delta(&start.acct_reactivated),
            acct_victims: self.accounting.victims.delta(&start.acct_victims),
            rereplicated_pages: self
                .replication
                .map(|r| r.rereplicated_pages.delta(&start.rereplicated_pages))
                .unwrap_or(0),
            degraded_marks: self
                .replication
                .map(|r| r.degraded_marks.delta(&start.degraded_marks))
                .unwrap_or(0),
        }
    }
}
