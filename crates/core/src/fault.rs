//! The fault-in path (`FP₁`–`FP₃`).
//!
//! [`FarMemory::access`] is the application-facing entry point: TLB hit,
//! hardware walk, or full page fault. The major-fault path follows §2.1
//! of the paper: trap entry → VMA lock → PTE fault-dedup lock → frame
//! allocation (waiting for the evictors under MAGE's P1, or falling back
//! to synchronous eviction in the baselines) → one-sided read from the
//! backend → PTE install → accounting insert → TLB fill.
//!
//! Every stage is timed into a `FaultCtx`, which carries the per-fault
//! component times and settles them into the Fig. 6/16 breakdown
//! categories exactly once, when the fault completes.

use mage_mmu::{CoreId, Pte, PAGE_SIZE};
use mage_sim::time::{Nanos, SimTime};

use crate::events::PageEvent;
use crate::machine::{Access, FarMemory};
use crate::retry::{FaultError, TransferOp};

/// One timed phase of a fault: the raw interval it occupied.
#[derive(Clone, Copy)]
struct PhaseSpan {
    start: SimTime,
    dur: Nanos,
}

/// Per-fault timing context: phase intervals captured while one major
/// fault traverses `FP₁`–`FP₃`, settled exactly once at the end — into
/// the breakdown stats always, and into trace spans when a tracer is
/// attached. One capture feeds both consumers, so the Fig. 6/16
/// breakdown and the trace can never disagree.
struct FaultCtx {
    /// Virtual time at trap entry.
    t0: SimTime,
    /// TLB-shootdown time from synchronous eviction inside this fault
    /// (accumulated across fallback rounds; traced on the TLB track).
    sync_tlb_ns: Nanos,
    /// Accounting-scan time from synchronous eviction inside this fault.
    sync_acct_ns: Nanos,
    /// Backend read (`FP₂`), including retries.
    rdma: Option<PhaseSpan>,
    /// Remote-slot release (`FP₂`).
    slot: Option<PhaseSpan>,
    /// Memory circulation (`FP₁`): frame allocation + waiting for free
    /// pages, raw (sync-eviction time is carved out at settlement).
    circ: Option<PhaseSpan>,
    /// Accounting insert (`FP₃`), raw.
    acct: Option<PhaseSpan>,
}

impl FaultCtx {
    fn enter(now: SimTime) -> Self {
        FaultCtx {
            t0: now,
            sync_tlb_ns: 0,
            sync_acct_ns: 0,
            rdma: None,
            slot: None,
            circ: None,
            acct: None,
        }
    }

    fn dur(phase: &Option<PhaseSpan>) -> Nanos {
        phase.map_or(0, |p| p.dur)
    }

    fn trace_phase(
        engine: &FarMemory,
        core: CoreId,
        name: &'static str,
        phase: &Option<PhaseSpan>,
    ) {
        if let Some(p) = phase {
            engine.tracer().expect("caller checked").record(
                core.0,
                "fault",
                name,
                p.start.as_nanos(),
                p.dur,
                None,
            );
        }
    }

    /// Settles a fault that short-circuited (resolved by another thread
    /// or by cancelling an in-flight eviction): total latency only, no
    /// component attribution.
    fn settle_early(self, engine: &FarMemory, core: CoreId, vpn: u64) -> Nanos {
        let total = engine.sim.now().saturating_since(self.t0);
        engine.stats.record_fault(total, 0);
        engine.trace_evt(core.0, "fault", "major", self.t0, Some(("vpn", vpn)));
        total
    }

    /// Settles a completed fault into the breakdown categories and, with
    /// a tracer attached, emits the phase spans plus an enclosing
    /// `major` span on the faulting core's track.
    fn settle(self, engine: &FarMemory, core: CoreId, vpn: u64) -> Nanos {
        let rdma_ns = Self::dur(&self.rdma);
        let slot_ns = Self::dur(&self.slot);
        let circ_ns = Self::dur(&self.circ).saturating_sub(self.sync_tlb_ns + self.sync_acct_ns);
        let acct_ns = Self::dur(&self.acct) + self.sync_acct_ns;
        let b = &engine.stats.breakdown;
        b.rdma.borrow_mut().record(rdma_ns);
        b.tlb.borrow_mut().record(self.sync_tlb_ns);
        b.accounting.borrow_mut().record(acct_ns);
        b.circulation.borrow_mut().record(circ_ns + slot_ns);
        let total = engine.sim.now().saturating_since(self.t0);
        engine.stats.record_fault(
            total,
            rdma_ns + self.sync_tlb_ns + acct_ns + circ_ns + slot_ns,
        );
        if engine.tracer().is_some() {
            Self::trace_phase(engine, core, "fp1.circulation", &self.circ);
            Self::trace_phase(engine, core, "fp2.read", &self.rdma);
            Self::trace_phase(engine, core, "fp2.slot", &self.slot);
            Self::trace_phase(engine, core, "fp3.accounting", &self.acct);
            engine.trace_evt(core.0, "fault", "major", self.t0, Some(("vpn", vpn)));
        }
        total
    }
}

impl FarMemory {
    /// Performs one page access from `core`. This is the application-facing
    /// entry point: TLB hit, hardware walk, or full page fault.
    pub async fn access(&self, core: CoreId, vpn: u64, write: bool) -> Access {
        self.stats.accesses.inc();
        // Stats counters model relaxed atomics: merged, never reported.
        mage_sim::racecheck!(self.shadow_stats, atomic 0);
        // Interrupt handling (TLB shootdown IPIs) steals time from this
        // core's thread; account for it before the access proceeds.
        let stolen = self.ic.take_stolen(core);
        if stolen > 0 {
            self.sim.sleep(stolen).await;
        }
        // TLB entries are hardware state: fills and lookups on different
        // cores are racy by design (atomic class).
        mage_sim::racecheck!(self.shadow_tlb, atomic vpn);
        if self.ic.tlb(core).lookup(vpn) {
            self.stats.tlb_hits.inc();
            if write {
                self.pt.update(vpn, |p| p.with_dirty(true));
            }
            return Access::TlbHit;
        }
        self.sim.sleep(self.cfg.costs.hw_walk_ns).await;
        let pte = self.pt.get(vpn);
        if pte.is_present() {
            self.pt.update(vpn, |p| {
                p.with_accessed(true).with_dirty(p.dirty() || write)
            });
            mage_sim::racecheck!(self.shadow_tlb, atomic vpn);
            self.ic.tlb(core).fill(vpn);
            self.stats.minor_walks.inc();
            // Readahead retrigger: the first touch of a prefetched page is
            // a minor walk (it is not TLB-resident yet), which acts as the
            // PG_readahead marker keeping the window ahead of the stream.
            self.maybe_prefetch(core, vpn);
            return Access::Minor;
        }
        match self.fault_in(core, vpn, write).await {
            Ok(latency) => Access::Major { latency },
            Err(error) => Access::Failed { error },
        }
    }

    /// The major-fault path (`FP₁`–`FP₃`). Fails (after the configured
    /// retries) only on transport errors, with every side effect rolled
    /// back: the frame freed, the PTE unlocked and still remote.
    async fn fault_in(&self, core: CoreId, vpn: u64, write: bool) -> Result<Nanos, FaultError> {
        let costs = self.cfg.costs.clone();
        let mut ctx = FaultCtx::enter(self.sim.now());
        self.sim
            .sleep(costs.os.fault_entry_ns + costs.os.pt_walk_ns + costs.os.swapcache_ns)
            .await;

        // Address-space metadata lock (Linux-derived systems only).
        let vma_lock = self.asp.borrow().lock_for(vpn).cloned();
        if let Some(l) = vma_lock {
            let guard = l.lock().await;
            self.sim.sleep(costs.vma_lock_hold_ns).await;
            drop(guard);
        }

        // PTE fault-dedup lock (unified-page-table style, §5.2).
        loop {
            let pte = self.pt.get(vpn);
            if pte.is_present() {
                // Another thread (or a prefetch) resolved the fault.
                self.pt.update(vpn, |p| {
                    p.with_accessed(true).with_dirty(p.dirty() || write)
                });
                mage_sim::racecheck!(self.shadow_tlb, atomic vpn);
                self.ic.tlb(core).fill(vpn);
                self.stats.prefetch_inflight_hits.inc();
                return Ok(ctx.settle_early(self, core, vpn));
            }
            if pte.locked() {
                // Refault on a page mid-eviction: cancel the eviction and
                // re-map the still-intact frame (swap-cache refault).
                let cancelled = self.evicting.borrow_mut().remove(vpn);
                if let Some((frame, _gen)) = cancelled {
                    // Claiming the evicting-map entry transfers ownership
                    // of the PTE lock bit from the evictor to this task.
                    self.pt.shadow_lock(vpn);
                    self.sim.sleep(costs.os.pte_update_ns).await;
                    // The remote copy may be stale, so the page must be
                    // considered dirty from here on.
                    self.pt.set(
                        vpn,
                        Pte::present(frame).with_accessed(true).with_dirty(true),
                    );
                    self.pt.shadow_unlock(vpn);
                    if self.acct.insert(core.index(), vpn).await {
                        // Cancelled *and* ghost-listed: the page bounced
                        // out and back twice in quick succession.
                        self.stats.re_faults.inc();
                        self.stats.ghost_hits.inc();
                        self.policy.note_refault(vpn);
                    }
                    mage_sim::racecheck!(self.shadow_tlb, atomic vpn);
                    self.ic.tlb(core).fill(vpn);
                    self.wake_page(vpn);
                    self.stats.evict_cancels.inc();
                    self.emit(PageEvent::EvictCancelled { vpn, frame });
                    return Ok(ctx.settle_early(self, core, vpn));
                }
                self.stats.page_lock_waits.inc();
                self.wait_for_page(vpn).await;
                continue;
            }
            let locked = self.pt.try_lock(vpn);
            debug_assert!(locked, "PTE lock raced on a single-threaded executor");
            self.emit(PageEvent::FetchStart { vpn });
            break;
        }
        let pte = self.pt.get(vpn);
        let was_remote = pte.is_remote();
        let rpn = pte.payload();

        // FP₁: obtain a free frame. MAGE (P1) never evicts here — it waits
        // for the dedicated evictors; the baselines fall back to
        // synchronous eviction, paying shootdowns on the critical path.
        let t_circ = self.sim.now();
        let frame = loop {
            if let Some(f) = self.alloc.alloc(core.index()).await {
                break f;
            }
            if self.cfg.sync_eviction {
                let outcome = self
                    .evict_batch(core, core.index(), 0, self.cfg.sync_eviction_batch, true)
                    .await;
                ctx.sync_tlb_ns += outcome.tlb_ns;
                ctx.sync_acct_ns += outcome.acct_ns;
                if outcome.pages == 0 {
                    // Nothing evictable right now; let others make progress.
                    self.sim.sleep(1_000).await;
                }
            } else {
                let t_w = self.sim.now();
                self.free_waiters.wait().await;
                self.stats
                    .free_wait
                    .borrow_mut()
                    .record(self.sim.now().saturating_since(t_w));
            }
        };
        ctx.circ = Some(PhaseSpan {
            start: t_circ,
            dur: self.sim.now().saturating_since(t_circ),
        });

        // FP₂: fetch the page contents from the backend (not needed on
        // first touch, which zero-fills).
        if was_remote {
            let t_r = self.sim.now();
            self.sim.sleep(costs.os.rdma_post_cpu_ns).await;
            if let Err(err) = self
                .transfer_with_retry(TransferOp::Read, PAGE_SIZE, Some(rpn))
                .await
            {
                // Abort the fault: the remote copy is the only copy, so
                // the PTE stays remote. Unlock it, return the frame and
                // wake everything that was waiting on this page or on
                // free memory — nothing leaks, nothing panics.
                self.pt.unlock(vpn);
                self.alloc.free_batch(core.index(), &[frame]).await;
                self.free_waiters.wake_all();
                self.wake_page(vpn);
                self.stats.aborted_faults.inc();
                self.emit(PageEvent::FetchAborted { vpn });
                return Err(err);
            }
            ctx.rdma = Some(PhaseSpan {
                start: t_r,
                dur: self.sim.now().saturating_since(t_r),
            });
            // Release the backend slot (Linux frees it on swap-in; direct
            // mapping keeps the address-derived slot reserved).
            let t_s = self.sim.now();
            self.backend.release_slot(rpn).await;
            ctx.slot = Some(PhaseSpan {
                start: t_s,
                dur: self.sim.now().saturating_since(t_s),
            });
        }

        // FP₃: install the mapping and account the page.
        self.sim
            .sleep(costs.os.pte_update_ns + costs.os.rmap_cgroup_ns)
            .await;
        self.pt.set(
            vpn,
            Pte::present(frame)
                .with_accessed(true)
                .with_dirty(write || !was_remote),
        );
        self.pt.shadow_unlock(vpn);
        self.emit(PageEvent::Installed { vpn, frame });
        let t_a = self.sim.now();
        if self.acct.insert(core.index(), vpn).await {
            // Ghost hit: this major fault re-fetched a page evicted so
            // recently it was still on the ghost list — evicting it was a
            // mistake. Tell the policy so it can protect the page.
            self.stats.re_faults.inc();
            self.stats.ghost_hits.inc();
            self.policy.note_refault(vpn);
        }
        ctx.acct = Some(PhaseSpan {
            start: t_a,
            dur: self.sim.now().saturating_since(t_a),
        });
        mage_sim::racecheck!(self.shadow_tlb, atomic vpn);
        self.ic.tlb(core).fill(vpn);
        self.wake_page(vpn);

        // Readahead.
        self.maybe_prefetch(core, vpn);

        Ok(ctx.settle(self, core, vpn))
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use mage_mmu::{CoreId, Topology, Vma};
    use mage_sim::Simulation;

    use crate::machine::{Access, FarMemory, MachineParams};
    use crate::SystemConfig;

    fn small_machine(cfg: SystemConfig) -> (Simulation, Rc<FarMemory>, Vma) {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages: 512,
            remote_pages: 4_096,
            tlb_entries: 64,
            seed: 7,
        };
        let engine = FarMemory::launch(sim.handle(), cfg, params);
        let vma = engine.mmap(1_024);
        engine.populate(&vma);
        (sim, engine, vma)
    }

    #[test]
    fn local_access_is_cheap_remote_access_faults() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Find one local and one remote page.
            let local_vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_present())
                .expect("some local page");
            let remote_vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_remote())
                .expect("some remote page");

            let a = e.access(CoreId(0), local_vpn, false).await;
            assert_eq!(a, Access::Minor, "first touch walks");
            let a = e.access(CoreId(0), local_vpn, false).await;
            assert_eq!(a, Access::TlbHit);

            let t0 = e.sim.now();
            let a = e.access(CoreId(1), remote_vpn, false).await;
            let lat = e.sim.now() - t0;
            assert!(matches!(a, Access::Major { .. }));
            assert!(lat >= 3_900, "must include the RDMA read: {lat}");
            // Now present and hot.
            let a = e.access(CoreId(1), remote_vpn, false).await;
            assert_eq!(a, Access::TlbHit);
        });
        assert_eq!(engine.stats().major_faults.get(), 1);
        assert_eq!(engine.nic().stats().reads.get(), 1);
    }

    #[test]
    fn write_sets_dirty_through_tlb() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            let remote_vpn = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .find(|&v| e.pt.get(v).is_remote())
                .expect("some remote page");
            e.access(CoreId(0), remote_vpn, false).await;
            assert!(!e.pt.get(remote_vpn).dirty(), "clean after read fault");
            e.access(CoreId(0), remote_vpn, true).await;
            assert!(e.pt.get(remote_vpn).dirty(), "TLB-hit write sets dirty");
        });
    }

    #[test]
    fn fault_dedup_single_rdma_read() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        let remote_vpn = (0..vma.pages)
            .map(|i| vma.start_vpn + i)
            .find(|&v| e.pt.get(v).is_remote())
            .expect("some remote page");
        // Four threads fault the same page concurrently.
        let mut joins = Vec::new();
        for c in 0..4u32 {
            let e = Rc::clone(&engine);
            joins.push(sim.spawn(async move { e.access(CoreId(c), remote_vpn, false).await }));
        }
        let results = sim.block_on(async move {
            let mut out = Vec::new();
            for j in joins {
                out.push(j.await);
            }
            out
        });
        assert!(results.iter().all(|a| matches!(a, Access::Major { .. })));
        assert_eq!(
            engine.nic().stats().reads.get(),
            1,
            "dedup: one RDMA read for four concurrent faults"
        );
        assert!(engine.stats().page_lock_waits.get() >= 1);
    }

    #[test]
    fn eviction_sustains_fault_streams() {
        // Touch far more pages than fit locally; the background evictors
        // must keep the fault path supplied with frames.
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            for i in 0..vma.pages {
                e.access(CoreId(0), vma.start_vpn + i, false).await;
            }
        });
        assert!(engine.stats().major_faults.get() > 400);
        assert_eq!(engine.stats().sync_evictions.get(), 0, "MAGE P1");
        assert!(engine.stats().evicted_pages.get() > 0);
        // Conservation: frames in flight + free == local quota.
        assert!(engine.allocator().free_frames() <= 512);
    }

    #[test]
    fn hermit_uses_sync_eviction_under_pressure() {
        let (sim, engine, vma) = small_machine(SystemConfig::hermit());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            for i in 0..vma.pages {
                e.access(CoreId(0), vma.start_vpn + i, false).await;
            }
        });
        assert!(engine.stats().major_faults.get() > 400);
    }

    #[test]
    fn pageout_forces_pages_remote() {
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Find a handful of local pages and page them out.
            let local: Vec<u64> = (0..vma.pages)
                .map(|i| vma.start_vpn + i)
                .filter(|&v| e.pt.get(v).is_present())
                .take(16)
                .collect();
            let n = e.pageout(CoreId(0), &local).await;
            assert_eq!(n, 16);
            for &vpn in &local {
                assert!(e.pt.get(vpn).is_remote(), "page {vpn:#x} still local");
                assert!(!e.pt.get(vpn).locked(), "page {vpn:#x} left locked");
            }
            // Accessing a paged-out page faults it back in.
            let a = e.access(CoreId(1), local[0], false).await;
            assert!(matches!(a, Access::Major { .. }));
        });
        // Populate marks local pages dirty, so all 16 were written back.
        assert!(engine.stats().writebacks.get() >= 16);
    }

    #[test]
    fn stale_tlb_never_survives_eviction() {
        // After a page is evicted and reclaimed, accessing it again must
        // fault (not hit a stale TLB entry).
        let (sim, engine, vma) = small_machine(SystemConfig::mage_lib());
        let e = Rc::clone(&engine);
        sim.block_on(async move {
            // Touch every page twice (fills TLBs), forcing evictions.
            for round in 0..2 {
                for i in 0..vma.pages {
                    e.access(CoreId((i % 4) as u32), vma.start_vpn + i, round == 0)
                        .await;
                }
            }
            // Any page that is now remote must not be TLB-resident anywhere.
            for i in 0..vma.pages {
                let vpn = vma.start_vpn + i;
                if e.pt.get(vpn).is_remote() {
                    for c in 0..4u32 {
                        assert!(
                            !e.ic.tlb(CoreId(c)).translates(vpn),
                            "stale TLB entry for evicted page {vpn:#x} on core {c}"
                        );
                    }
                }
            }
        });
    }
}
