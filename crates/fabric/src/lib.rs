//! RDMA fabric simulator: one-sided verbs over a full-duplex serialized
//! link, plus a passive far-memory node.
//!
//! This crate substitutes for the paper's 200 Gbps Mellanox BlueField-2
//! fabric (DESIGN.md §1). For a one-sided RDMA initiator the observable
//! behaviour of the fabric is *latency + serialization + queueing*:
//!
//! - each direction of the link is a FIFO serializer with a configurable
//!   bandwidth (reads consume the remote→local direction, writes the
//!   local→remote direction),
//! - every operation pays a base one-sided latency (3.9 µs in the paper's
//!   testbed, §3.1) on top of its serialization slot,
//! - queueing delay near saturation emerges from the serializer, which is
//!   what produces the congestion-driven tail-latency spikes of Fig. 15.
//!
//! Operations are *posted* ([`Nic::post_read`] / [`Nic::post_write`]),
//! returning a [`Completion`] future; the split lets MAGE's cross-batch
//! pipelined evictor issue a batch of writes and harvest completions later
//! (paper §4.1 steps ⑤–⑦).

//!
//! Transport failure is modeled by an optional deterministic
//! [`FaultPlan`] ([`Nic::with_faults`]): completions then resolve to
//! `Result<Nanos, TransferError>` and the engine above decides how to
//! retry, time out, or degrade.

pub mod faults;
pub mod link;
pub mod node;

pub use faults::{FaultInjector, FaultPlan, FaultStats, TransferError};
pub use link::{Completion, Nic, NicConfig, NicStats};
pub use node::{MemoryNode, NodeId, RemoteAddr, RemoteRegion};
