//! The NIC / link model: full-duplex FIFO serializers with base latency.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mage_sim::executor::Sleep;
use mage_sim::stats::{Counter, Histogram};
use mage_sim::time::{Nanos, SimTime};
use mage_sim::trace::{Tracer, TRACK_NIC};
use mage_sim::SimHandle;

use crate::faults::{FaultInjector, FaultPlan, FaultStats, OpInjection, TransferError};
use crate::node::NodeId;

/// Configuration of a simulated RDMA NIC / link.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Link bandwidth per direction, in bytes per nanosecond.
    /// 200 Gbps ≈ 25 B/ns; the paper measures a 192 Gbps practical ceiling.
    pub bandwidth_bytes_per_ns: f64,
    /// Base one-sided READ latency (wire RTT + NIC processing), ns.
    pub base_read_ns: Nanos,
    /// Base one-sided WRITE (+ACK) latency, ns.
    pub base_write_ns: Nanos,
}

impl NicConfig {
    /// The paper's testbed: 200 Gbps, 3.9 µs one-sided latency (§3.1, §6.1).
    pub fn bluefield2_200g() -> Self {
        NicConfig {
            bandwidth_bytes_per_ns: 24.0, // 192 Gbps practical ceiling (§6.4)
            base_read_ns: 3_900,
            base_write_ns: 3_900,
        }
    }

    /// A fast NVMe SSD used as the swap backend (§8: MAGE's OS-level
    /// optimizations apply to any fast swap backend): ~7 GB/s sequential,
    /// ~10 µs access latency.
    pub fn nvme_ssd() -> Self {
        NicConfig {
            bandwidth_bytes_per_ns: 7.0,
            base_read_ns: 10_000,
            base_write_ns: 12_000,
        }
    }

    /// Compressed-RAM swap (zswap-like): no wire at all — "transfer" is
    /// the compression/decompression cost on the direct path, modeled as
    /// a high-bandwidth, low-latency device.
    pub fn zswap() -> Self {
        NicConfig {
            bandwidth_bytes_per_ns: 12.0,
            base_read_ns: 1_500,
            base_write_ns: 2_500,
        }
    }

    /// Returns the serialization time for `bytes` on one direction.
    pub fn serialize_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as Nanos
    }

    /// Link bandwidth in Gbps (per direction).
    pub fn gbps(&self) -> f64 {
        self.bandwidth_bytes_per_ns * 8.0
    }
}

/// Per-NIC transfer statistics.
#[derive(Default)]
pub struct NicStats {
    /// Completed one-sided reads.
    pub reads: Counter,
    /// Completed one-sided writes.
    pub writes: Counter,
    /// Bytes moved remote→local.
    pub read_bytes: Counter,
    /// Bytes moved local→remote.
    pub write_bytes: Counter,
    /// End-to-end read completion latency (post → completion), ns.
    pub read_latency: Histogram,
    /// End-to-end write completion latency (post → completion), ns.
    pub write_latency: Histogram,
}

struct Direction {
    busy_until: Cell<SimTime>,
}

impl Direction {
    fn new() -> Self {
        Direction {
            busy_until: Cell::new(SimTime::ZERO),
        }
    }

    /// Reserves a serialization slot of `ser` ns starting no earlier than
    /// `now`; returns the slot's end time.
    fn reserve(&self, now: SimTime, ser: Nanos) -> SimTime {
        let start = self.busy_until.get().max(now);
        let end = start + ser;
        self.busy_until.set(end);
        end
    }

    fn backlog(&self, now: SimTime) -> Nanos {
        self.busy_until.get().saturating_since(now)
    }
}

/// A simulated RDMA NIC connected to a far-memory node.
///
/// # Examples
///
/// ```
/// use mage_sim::Simulation;
/// use mage_fabric::{Nic, NicConfig};
/// use std::rc::Rc;
///
/// let sim = Simulation::new();
/// let nic = Rc::new(Nic::new(sim.handle(), NicConfig::bluefield2_200g()));
/// let n2 = Rc::clone(&nic);
/// let h = sim.handle();
/// let latency = sim.block_on(async move {
///     let t0 = h.now();
///     n2.post_read(4096).await.expect("no faults configured");
///     h.now() - t0
/// });
/// // 3.9 µs base latency + ~171 ns of serialization at 24 B/ns.
/// assert!(latency >= 3_900 && latency < 4_200, "latency {latency}");
/// ```
pub struct Nic {
    sim: SimHandle,
    config: NicConfig,
    /// remote→local direction (read data).
    rx: Direction,
    /// local→remote direction (write data).
    tx: Direction,
    stats: NicStats,
    /// Fault injection, absent on a perfect link (the default): the
    /// clean path never consults the plan, so a `FaultPlan::none()`
    /// schedule is bit-identical to a build without this layer.
    injector: Option<FaultInjector>,
    /// Per-node fault injectors for multi-node fabrics (empty on the
    /// default single-node view). Node-targeted posts consult the node's
    /// own injector; nodes without one fall back to the link injector.
    node_injectors: Vec<Option<FaultInjector>>,
    /// Optional trace collector; `None` (the default) costs one branch
    /// per posted operation.
    tracer: RefCell<Option<Rc<Tracer>>>,
}

impl Nic {
    /// Creates a NIC with the given link configuration and no faults.
    pub fn new(sim: SimHandle, config: NicConfig) -> Self {
        Nic::with_faults(sim, config, FaultPlan::none())
    }

    /// Creates a NIC that executes `plan` against every posted operation.
    /// An inactive plan (all rates zero) is dropped entirely.
    pub fn with_faults(sim: SimHandle, config: NicConfig, plan: FaultPlan) -> Self {
        Nic::with_node_faults(sim, config, plan, Vec::new())
    }

    /// Creates a NIC serving a multi-node fabric: `plan` governs untargeted
    /// posts (and targeted posts at nodes without their own plan), while
    /// `node_plans[i]` governs posts targeted at node `i`. Inactive plans
    /// are dropped, keeping those paths bit-identical to the clean build.
    pub fn with_node_faults(
        sim: SimHandle,
        config: NicConfig,
        plan: FaultPlan,
        node_plans: Vec<FaultPlan>,
    ) -> Self {
        let injector = plan.is_active().then(|| FaultInjector::new(plan, 0));
        let node_injectors = node_plans
            .into_iter()
            .enumerate()
            .map(|(i, p)| p.is_active().then(|| FaultInjector::new(p, 1 + i as u64)))
            .collect();
        Nic {
            sim,
            config,
            rx: Direction::new(),
            tx: Direction::new(),
            stats: NicStats::default(),
            injector,
            node_injectors,
            tracer: RefCell::new(None),
        }
    }

    /// Attaches a tracer: every successful transfer is recorded on
    /// [`TRACK_NIC`] at post time (completion instants are fixed at post,
    /// so the whole interval is known synchronously).
    pub fn attach_tracer(&self, tracer: Rc<Tracer>) {
        *self.tracer.borrow_mut() = Some(tracer);
    }

    /// The NIC configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Transfer statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Fault-injection counters, if a plan is active.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// The active fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    fn sample(&self, now: SimTime) -> OpInjection {
        match &self.injector {
            Some(inj) => inj.sample(now),
            None => OpInjection::CLEAN,
        }
    }

    fn sample_node(&self, node: NodeId, now: SimTime) -> OpInjection {
        match self.node_injectors.get(node.index()).and_then(|i| i.as_ref()) {
            Some(inj) => inj.sample(now),
            None => self.sample(now),
        }
    }

    /// Posts a one-sided RDMA read of `bytes`; the returned completion
    /// resolves when the data has fully arrived (or the failure has been
    /// detected, for injected faults).
    pub fn post_read(&self, bytes: u64) -> Completion {
        let now = self.sim.now();
        let inj = self.sample(now);
        self.finish_read(now, bytes, inj, None)
    }

    /// Posts a one-sided RDMA read of `bytes` targeted at `node`: the
    /// node's own fault plan (if any) decides the op's fate and the
    /// completion carries the node id for failover accounting.
    pub fn post_read_to(&self, node: NodeId, bytes: u64) -> Completion {
        let now = self.sim.now();
        let inj = self.sample_node(node, now);
        self.finish_read(now, bytes, inj, Some(node))
    }

    fn finish_read(
        &self,
        now: SimTime,
        bytes: u64,
        inj: OpInjection,
        node: Option<NodeId>,
    ) -> Completion {
        if inj.node_down {
            // No bandwidth consumed: the node never answers and the
            // initiator notices after one base latency.
            let done = now + self.config.base_read_ns;
            return Completion::new(
                self.sim.sleep_until(done),
                now,
                done,
                Err(TransferError::NodeUnreachable),
                node,
            );
        }
        let ser = self.config.serialize_ns(bytes).saturating_mul(inj.ser_factor);
        let slot_end = self.rx.reserve(now, ser);
        let done = slot_end + self.config.base_read_ns + inj.extra_ns;
        let result = match inj.error {
            Some(e) => Err(e),
            None => {
                // Only successful transfers count toward throughput and
                // the latency distribution.
                self.stats.reads.inc();
                self.stats.read_bytes.add(bytes);
                self.stats.read_latency.record(done - now);
                if let Some(t) = self.tracer.borrow().as_ref() {
                    t.record(
                        TRACK_NIC,
                        "nic",
                        "read",
                        now.as_nanos(),
                        done - now,
                        Some(("bytes", bytes)),
                    );
                }
                Ok(())
            }
        };
        Completion::new(self.sim.sleep_until(done), now, done, result, node)
    }

    /// Posts a one-sided RDMA write of `bytes`; the returned completion
    /// resolves when the write is acknowledged (or the failure has been
    /// detected, for injected faults).
    pub fn post_write(&self, bytes: u64) -> Completion {
        let now = self.sim.now();
        let inj = self.sample(now);
        self.finish_write(now, bytes, inj, None)
    }

    /// Posts a one-sided RDMA write of `bytes` targeted at `node` (the
    /// write-side counterpart of [`Nic::post_read_to`]).
    pub fn post_write_to(&self, node: NodeId, bytes: u64) -> Completion {
        let now = self.sim.now();
        let inj = self.sample_node(node, now);
        self.finish_write(now, bytes, inj, Some(node))
    }

    fn finish_write(
        &self,
        now: SimTime,
        bytes: u64,
        inj: OpInjection,
        node: Option<NodeId>,
    ) -> Completion {
        if inj.node_down {
            let done = now + self.config.base_write_ns;
            return Completion::new(
                self.sim.sleep_until(done),
                now,
                done,
                Err(TransferError::NodeUnreachable),
                node,
            );
        }
        let ser = self.config.serialize_ns(bytes).saturating_mul(inj.ser_factor);
        let slot_end = self.tx.reserve(now, ser);
        let done = slot_end + self.config.base_write_ns + inj.extra_ns;
        let result = match inj.error {
            Some(e) => Err(e),
            None => {
                self.stats.writes.inc();
                self.stats.write_bytes.add(bytes);
                self.stats.write_latency.record(done - now);
                if let Some(t) = self.tracer.borrow().as_ref() {
                    t.record(
                        TRACK_NIC,
                        "nic",
                        "write",
                        now.as_nanos(),
                        done - now,
                        Some(("bytes", bytes)),
                    );
                }
                Ok(())
            }
        };
        Completion::new(self.sim.sleep_until(done), now, done, result, node)
    }

    /// Whether `node` is reachable right now. Nodes without a fault plan
    /// (including every node of a single-node fabric) are always up.
    pub fn node_reachable(&self, node: NodeId) -> bool {
        match self.node_injectors.get(node.index()).and_then(|i| i.as_ref()) {
            Some(inj) => !inj.node_down(self.sim.now()),
            None => true,
        }
    }

    /// End of the outage window `node` is currently inside, if any.
    pub fn node_outage_ends_at(&self, node: NodeId) -> Option<SimTime> {
        self.node_injectors
            .get(node.index())
            .and_then(|i| i.as_ref())
            .and_then(|inj| inj.outage_ends_at(self.sim.now()))
    }

    /// The per-node fault injector of `node`, if one is configured.
    pub fn node_injector(&self, node: NodeId) -> Option<&FaultInjector> {
        self.node_injectors.get(node.index()).and_then(|i| i.as_ref())
    }

    /// Number of per-node fault plans this NIC was configured with.
    pub fn node_plan_count(&self) -> usize {
        self.node_injectors.len()
    }

    /// Current backlog (ns of queued serialization) on the read direction.
    pub fn read_backlog_ns(&self) -> Nanos {
        self.rx.backlog(self.sim.now())
    }

    /// Current backlog (ns of queued serialization) on the write direction.
    pub fn write_backlog_ns(&self) -> Nanos {
        self.tx.backlog(self.sim.now())
    }

    /// Achieved read bandwidth in Gbps over `elapsed` ns.
    pub fn read_gbps(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.stats.read_bytes.get() as f64 * 8.0 / elapsed as f64
    }

    /// Achieved write bandwidth in Gbps over `elapsed` ns.
    pub fn write_gbps(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.stats.write_bytes.get() as f64 * 8.0 / elapsed as f64
    }
}

/// A pending RDMA completion; awaiting it suspends until the operation's
/// completion time and yields the completion status with the observed
/// latency.
pub struct Completion {
    sleep: Sleep,
    posted: SimTime,
    at: SimTime,
    result: Result<(), TransferError>,
    node: Option<NodeId>,
}

impl Completion {
    fn new(
        sleep: Sleep,
        posted: SimTime,
        at: SimTime,
        result: Result<(), TransferError>,
        node: Option<NodeId>,
    ) -> Self {
        Completion {
            sleep,
            posted,
            at,
            result,
            node,
        }
    }

    /// Builds a completion from an already-decided (instant, status) pair.
    /// Layered backends (mirrored writes, failover reads) use this to merge
    /// several wire completions into one logical completion whose instant
    /// and outcome are fixed at post time, like the NIC's own.
    pub fn compose(
        sim: &SimHandle,
        posted: SimTime,
        at: SimTime,
        result: Result<(), TransferError>,
        node: Option<NodeId>,
    ) -> Self {
        Completion::new(sim.sleep_until(at), posted, at, result, node)
    }

    /// The (already determined) completion instant.
    pub fn completes_at(&self) -> SimTime {
        self.at
    }

    /// The memory node the operation was targeted at, if it was posted
    /// through a node-addressed entry point.
    pub fn node(&self) -> Option<NodeId> {
        self.node
    }

    /// The completion status with post→completion latency, decided at
    /// post time. Readable synchronously — callers that already know the
    /// completion instant has passed (pipelined harvest) use this instead
    /// of awaiting, which keeps the task schedule untouched.
    pub fn outcome(&self) -> Result<Nanos, TransferError> {
        self.result.map(|()| self.at.saturating_since(self.posted))
    }
}

impl std::future::Future for Completion {
    type Output = Result<Nanos, TransferError>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        // `Sleep` is `Unpin`, so `Completion` is too and re-pinning the
        // field is safe-code-only.
        match std::pin::Pin::new(&mut self.sleep).poll(cx) {
            std::task::Poll::Ready(()) => std::task::Poll::Ready(self.outcome()),
            std::task::Poll::Pending => std::task::Poll::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;
    use std::rc::Rc;

    fn fast_cfg() -> NicConfig {
        NicConfig {
            bandwidth_bytes_per_ns: 4.0, // 1024 ns per 4 KiB page
            base_read_ns: 1_000,
            base_write_ns: 2_000,
        }
    }

    #[test]
    fn single_read_latency_is_base_plus_serialization() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        let lat = sim.block_on(async move {
            let t0 = h.now();
            n.post_read(4096).await.unwrap();
            h.now() - t0
        });
        assert_eq!(lat, 1_000 + 1_024);
    }

    #[test]
    fn reads_serialize_on_shared_link() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        // Two concurrent reads: the second's data queues behind the first.
        let (n1, n2) = (Rc::clone(&nic), Rc::clone(&nic));
        let h1 = h.clone();
        let j1 = sim.spawn(async move {
            n1.post_read(4096).await.unwrap();
            h1.now().as_nanos()
        });
        let h2 = h.clone();
        let j2 = sim.spawn(async move {
            n2.post_read(4096).await.unwrap();
            h2.now().as_nanos()
        });
        let (t1, t2) = sim.block_on(async move { (j1.await, j2.await) });
        assert_eq!(t1, 2_024);
        assert_eq!(t2, 3_048); // queued one extra serialization slot
    }

    #[test]
    fn reads_and_writes_are_full_duplex() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let (n1, n2) = (Rc::clone(&nic), Rc::clone(&nic));
        let h = sim.handle();
        let h2 = h.clone();
        let jr = sim.spawn(async move {
            n1.post_read(4096).await.unwrap();
            h2.now().as_nanos()
        });
        let h3 = h.clone();
        let jw = sim.spawn(async move {
            n2.post_write(4096).await.unwrap();
            h3.now().as_nanos()
        });
        let (tr, tw) = sim.block_on(async move { (jr.await, jw.await) });
        // No queueing across directions.
        assert_eq!(tr, 2_024);
        assert_eq!(tw, 3_024);
    }

    #[test]
    fn sustained_load_is_bandwidth_limited() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        let elapsed = sim.block_on(async move {
            let t0 = h.now();
            // Issue 100 back-to-back page reads.
            let completions: Vec<_> = (0..100).map(|_| n.post_read(4096)).collect();
            for c in completions {
                c.await.unwrap();
            }
            h.now() - t0
        });
        // 100 pages * 1024 ns serialization + one base latency.
        assert_eq!(elapsed, 100 * 1_024 + 1_000);
        assert_eq!(nic.stats().reads.get(), 100);
        assert_eq!(nic.stats().read_bytes.get(), 409_600);
    }

    #[test]
    fn completion_time_is_fixed_at_post() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            let c = n.post_write(4096);
            let predicted = c.completes_at();
            h.sleep(10).await; // do other work first
            c.await.unwrap();
            assert_eq!(h.now(), predicted);
        });
    }

    #[test]
    fn backlog_reporting() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            assert_eq!(n.read_backlog_ns(), 0);
            let _c1 = n.post_read(4096);
            let _c2 = n.post_read(4096);
            assert_eq!(n.read_backlog_ns(), 2 * 1_024);
        });
    }

    #[test]
    fn gbps_accounting() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            let completions: Vec<_> = (0..32).map(|_| n.post_read(4096)).collect();
            for c in completions {
                c.await.unwrap();
            }
            let elapsed = h.now().as_nanos();
            let gbps = n.read_gbps(elapsed);
            // Config is 32 Gbps; with the trailing base latency the
            // achieved figure must be slightly below the ceiling.
            assert!(gbps > 25.0 && gbps < 32.0, "gbps {gbps}");
        });
    }

    #[test]
    fn errored_op_consumes_wire_time_but_not_stats() {
        // error_rate 1.0: every op fails with a CQE error yet still holds
        // its serialization slot (the data crossed the wire; only the
        // completion status is bad).
        let plan = FaultPlan {
            seed: 1,
            error_rate: 1.0,
            ..FaultPlan::none()
        };
        let sim = Simulation::new();
        let nic = Rc::new(Nic::with_faults(sim.handle(), fast_cfg(), plan));
        let n = Rc::clone(&nic);
        let h = sim.handle();
        sim.block_on(async move {
            let c1 = n.post_read(4096);
            let c2 = n.post_read(4096);
            assert_eq!(c2.completes_at() - c1.completes_at(), 1_024);
            assert_eq!(c1.await, Err(TransferError::Cq));
            let err = c2.await.unwrap_err();
            assert_eq!(err, TransferError::Cq);
            assert_eq!(h.now().as_nanos(), 2 * 1_024 + 1_000);
        });
        assert_eq!(nic.stats().reads.get(), 0, "errored ops don't count");
        assert_eq!(nic.fault_stats().unwrap().injected_errors.get(), 2);
    }

    #[test]
    fn crashed_node_fails_fast_without_bandwidth() {
        let plan = FaultPlan {
            seed: 1,
            crash_period_ns: 1_000_000,
            crash_duration_ns: 1_000_000,
            crash_rate: 1.0,
            ..FaultPlan::none()
        };
        let sim = Simulation::new();
        let nic = Rc::new(Nic::with_faults(sim.handle(), fast_cfg(), plan));
        let n = Rc::clone(&nic);
        let h = sim.handle();
        sim.block_on(async move {
            let c = n.post_write(4096);
            assert_eq!(n.write_backlog_ns(), 0, "no serialization reserved");
            assert_eq!(c.await, Err(TransferError::NodeUnreachable));
            // Detection after exactly one base write latency.
            assert_eq!(h.now().as_nanos(), 2_000);
        });
    }

    #[test]
    fn brownout_stretches_serialization() {
        let plan = FaultPlan {
            seed: 5,
            brownout_period_ns: 1_000_000,
            brownout_duration_ns: 1_000_000,
            brownout_rate: 1.0,
            brownout_bw_div: 4,
            ..FaultPlan::none()
        };
        let sim = Simulation::new();
        let nic = Rc::new(Nic::with_faults(sim.handle(), fast_cfg(), plan));
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            let lat = n.post_read(4096).await.unwrap();
            // 4× the 1 024 ns serialization plus base latency.
            assert_eq!(lat, 4 * 1_024 + 1_000);
        });
        assert_eq!(nic.fault_stats().unwrap().brownout_ops.get(), 1);
    }

    #[test]
    fn node_targeted_posts_use_the_node_plan() {
        // Node 1 is permanently down; node 0 has no plan of its own and
        // untargeted posts stay clean.
        let down = FaultPlan {
            seed: 2,
            crash_period_ns: 1_000_000,
            crash_duration_ns: 1_000_000,
            crash_rate: 1.0,
            ..FaultPlan::none()
        };
        let sim = Simulation::new();
        let nic = Rc::new(Nic::with_node_faults(
            sim.handle(),
            fast_cfg(),
            FaultPlan::none(),
            vec![FaultPlan::none(), down],
        ));
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            assert!(n.node_reachable(NodeId(0)));
            assert!(!n.node_reachable(NodeId(1)));
            let ok = n.post_read_to(NodeId(0), 4096);
            assert_eq!(ok.node(), Some(NodeId(0)));
            ok.await.unwrap();
            let bad = n.post_write_to(NodeId(1), 4096);
            assert_eq!(bad.node(), Some(NodeId(1)));
            assert_eq!(bad.await, Err(TransferError::NodeUnreachable));
            n.post_read(4096).await.unwrap();
        });
        assert_eq!(nic.stats().reads.get(), 2);
        assert_eq!(nic.stats().writes.get(), 0);
    }

    #[test]
    fn composed_completions_behave_like_posted_ones() {
        let sim = Simulation::new();
        let h = sim.handle();
        sim.block_on(async move {
            let at = SimTime::from_nanos(5_000);
            let c = Completion::compose(&h, h.now(), at, Ok(()), Some(NodeId(1)));
            assert_eq!(c.completes_at(), at);
            assert_eq!(c.node(), Some(NodeId(1)));
            assert_eq!(c.outcome(), Ok(5_000));
            assert_eq!(c.await, Ok(5_000));
            assert_eq!(h.now(), at);
        });
    }

    #[test]
    fn zero_fault_nic_has_no_injector() {
        let sim = Simulation::new();
        let nic = Nic::with_faults(sim.handle(), fast_cfg(), FaultPlan::none());
        assert!(nic.injector().is_none());
        assert!(nic.fault_stats().is_none());
    }
}
