//! The NIC / link model: full-duplex FIFO serializers with base latency.

use std::cell::Cell;

use mage_sim::executor::Sleep;
use mage_sim::stats::{Counter, Histogram};
use mage_sim::time::{Nanos, SimTime};
use mage_sim::SimHandle;

/// Configuration of a simulated RDMA NIC / link.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Link bandwidth per direction, in bytes per nanosecond.
    /// 200 Gbps ≈ 25 B/ns; the paper measures a 192 Gbps practical ceiling.
    pub bandwidth_bytes_per_ns: f64,
    /// Base one-sided READ latency (wire RTT + NIC processing), ns.
    pub base_read_ns: Nanos,
    /// Base one-sided WRITE (+ACK) latency, ns.
    pub base_write_ns: Nanos,
}

impl NicConfig {
    /// The paper's testbed: 200 Gbps, 3.9 µs one-sided latency (§3.1, §6.1).
    pub fn bluefield2_200g() -> Self {
        NicConfig {
            bandwidth_bytes_per_ns: 24.0, // 192 Gbps practical ceiling (§6.4)
            base_read_ns: 3_900,
            base_write_ns: 3_900,
        }
    }

    /// A fast NVMe SSD used as the swap backend (§8: MAGE's OS-level
    /// optimizations apply to any fast swap backend): ~7 GB/s sequential,
    /// ~10 µs access latency.
    pub fn nvme_ssd() -> Self {
        NicConfig {
            bandwidth_bytes_per_ns: 7.0,
            base_read_ns: 10_000,
            base_write_ns: 12_000,
        }
    }

    /// Compressed-RAM swap (zswap-like): no wire at all — "transfer" is
    /// the compression/decompression cost on the direct path, modeled as
    /// a high-bandwidth, low-latency device.
    pub fn zswap() -> Self {
        NicConfig {
            bandwidth_bytes_per_ns: 12.0,
            base_read_ns: 1_500,
            base_write_ns: 2_500,
        }
    }

    /// Returns the serialization time for `bytes` on one direction.
    pub fn serialize_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as Nanos
    }

    /// Link bandwidth in Gbps (per direction).
    pub fn gbps(&self) -> f64 {
        self.bandwidth_bytes_per_ns * 8.0
    }
}

/// Per-NIC transfer statistics.
#[derive(Default)]
pub struct NicStats {
    /// Completed one-sided reads.
    pub reads: Counter,
    /// Completed one-sided writes.
    pub writes: Counter,
    /// Bytes moved remote→local.
    pub read_bytes: Counter,
    /// Bytes moved local→remote.
    pub write_bytes: Counter,
    /// End-to-end read completion latency (post → completion), ns.
    pub read_latency: Histogram,
    /// End-to-end write completion latency (post → completion), ns.
    pub write_latency: Histogram,
}

struct Direction {
    busy_until: Cell<SimTime>,
}

impl Direction {
    fn new() -> Self {
        Direction {
            busy_until: Cell::new(SimTime::ZERO),
        }
    }

    /// Reserves a serialization slot of `ser` ns starting no earlier than
    /// `now`; returns the slot's end time.
    fn reserve(&self, now: SimTime, ser: Nanos) -> SimTime {
        let start = self.busy_until.get().max(now);
        let end = start + ser;
        self.busy_until.set(end);
        end
    }

    fn backlog(&self, now: SimTime) -> Nanos {
        self.busy_until.get().saturating_since(now)
    }
}

/// A simulated RDMA NIC connected to a far-memory node.
///
/// # Examples
///
/// ```
/// use mage_sim::Simulation;
/// use mage_fabric::{Nic, NicConfig};
/// use std::rc::Rc;
///
/// let sim = Simulation::new();
/// let nic = Rc::new(Nic::new(sim.handle(), NicConfig::bluefield2_200g()));
/// let n2 = Rc::clone(&nic);
/// let h = sim.handle();
/// let latency = sim.block_on(async move {
///     let t0 = h.now();
///     n2.post_read(4096).await;
///     h.now() - t0
/// });
/// // 3.9 µs base latency + ~171 ns of serialization at 24 B/ns.
/// assert!(latency >= 3_900 && latency < 4_200, "latency {latency}");
/// ```
pub struct Nic {
    sim: SimHandle,
    config: NicConfig,
    /// remote→local direction (read data).
    rx: Direction,
    /// local→remote direction (write data).
    tx: Direction,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with the given link configuration.
    pub fn new(sim: SimHandle, config: NicConfig) -> Self {
        Nic {
            sim,
            config,
            rx: Direction::new(),
            tx: Direction::new(),
            stats: NicStats::default(),
        }
    }

    /// The NIC configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Transfer statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Posts a one-sided RDMA read of `bytes`; the returned completion
    /// resolves when the data has fully arrived.
    pub fn post_read(&self, bytes: u64) -> Completion {
        let now = self.sim.now();
        let ser = self.config.serialize_ns(bytes);
        let slot_end = self.rx.reserve(now, ser);
        let done = slot_end + self.config.base_read_ns;
        self.stats.reads.inc();
        self.stats.read_bytes.add(bytes);
        self.stats.read_latency.record(done - now);
        Completion {
            sleep: self.sim.sleep_until(done),
            at: done,
        }
    }

    /// Posts a one-sided RDMA write of `bytes`; the returned completion
    /// resolves when the write is acknowledged.
    pub fn post_write(&self, bytes: u64) -> Completion {
        let now = self.sim.now();
        let ser = self.config.serialize_ns(bytes);
        let slot_end = self.tx.reserve(now, ser);
        let done = slot_end + self.config.base_write_ns;
        self.stats.writes.inc();
        self.stats.write_bytes.add(bytes);
        self.stats.write_latency.record(done - now);
        Completion {
            sleep: self.sim.sleep_until(done),
            at: done,
        }
    }

    /// Current backlog (ns of queued serialization) on the read direction.
    pub fn read_backlog_ns(&self) -> Nanos {
        self.rx.backlog(self.sim.now())
    }

    /// Current backlog (ns of queued serialization) on the write direction.
    pub fn write_backlog_ns(&self) -> Nanos {
        self.tx.backlog(self.sim.now())
    }

    /// Achieved read bandwidth in Gbps over `elapsed` ns.
    pub fn read_gbps(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.stats.read_bytes.get() as f64 * 8.0 / elapsed as f64
    }

    /// Achieved write bandwidth in Gbps over `elapsed` ns.
    pub fn write_gbps(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.stats.write_bytes.get() as f64 * 8.0 / elapsed as f64
    }
}

/// A pending RDMA completion; awaiting it suspends until the operation's
/// completion time.
pub struct Completion {
    sleep: Sleep,
    at: SimTime,
}

impl Completion {
    /// The (already determined) completion instant.
    pub fn completes_at(&self) -> SimTime {
        self.at
    }
}

impl std::future::Future for Completion {
    type Output = ();

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        // `Sleep` is `Unpin`, so `Completion` is too and re-pinning the
        // field is safe-code-only.
        std::pin::Pin::new(&mut self.sleep).poll(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;
    use std::rc::Rc;

    fn fast_cfg() -> NicConfig {
        NicConfig {
            bandwidth_bytes_per_ns: 4.0, // 1024 ns per 4 KiB page
            base_read_ns: 1_000,
            base_write_ns: 2_000,
        }
    }

    #[test]
    fn single_read_latency_is_base_plus_serialization() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        let lat = sim.block_on(async move {
            let t0 = h.now();
            n.post_read(4096).await;
            h.now() - t0
        });
        assert_eq!(lat, 1_000 + 1_024);
    }

    #[test]
    fn reads_serialize_on_shared_link() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        // Two concurrent reads: the second's data queues behind the first.
        let (n1, n2) = (Rc::clone(&nic), Rc::clone(&nic));
        let h1 = h.clone();
        let j1 = sim.spawn(async move {
            n1.post_read(4096).await;
            h1.now().as_nanos()
        });
        let h2 = h.clone();
        let j2 = sim.spawn(async move {
            n2.post_read(4096).await;
            h2.now().as_nanos()
        });
        let (t1, t2) = sim.block_on(async move { (j1.await, j2.await) });
        assert_eq!(t1, 2_024);
        assert_eq!(t2, 3_048); // queued one extra serialization slot
    }

    #[test]
    fn reads_and_writes_are_full_duplex() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let (n1, n2) = (Rc::clone(&nic), Rc::clone(&nic));
        let h = sim.handle();
        let h2 = h.clone();
        let jr = sim.spawn(async move {
            n1.post_read(4096).await;
            h2.now().as_nanos()
        });
        let h3 = h.clone();
        let jw = sim.spawn(async move {
            n2.post_write(4096).await;
            h3.now().as_nanos()
        });
        let (tr, tw) = sim.block_on(async move { (jr.await, jw.await) });
        // No queueing across directions.
        assert_eq!(tr, 2_024);
        assert_eq!(tw, 3_024);
    }

    #[test]
    fn sustained_load_is_bandwidth_limited() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        let elapsed = sim.block_on(async move {
            let t0 = h.now();
            // Issue 100 back-to-back page reads.
            let completions: Vec<_> = (0..100).map(|_| n.post_read(4096)).collect();
            for c in completions {
                c.await;
            }
            h.now() - t0
        });
        // 100 pages * 1024 ns serialization + one base latency.
        assert_eq!(elapsed, 100 * 1_024 + 1_000);
        assert_eq!(nic.stats().reads.get(), 100);
        assert_eq!(nic.stats().read_bytes.get(), 409_600);
    }

    #[test]
    fn completion_time_is_fixed_at_post() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            let c = n.post_write(4096);
            let predicted = c.completes_at();
            h.sleep(10).await; // do other work first
            c.await;
            assert_eq!(h.now(), predicted);
        });
    }

    #[test]
    fn backlog_reporting() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            assert_eq!(n.read_backlog_ns(), 0);
            let _c1 = n.post_read(4096);
            let _c2 = n.post_read(4096);
            assert_eq!(n.read_backlog_ns(), 2 * 1_024);
        });
    }

    #[test]
    fn gbps_accounting() {
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), fast_cfg()));
        let h = sim.handle();
        let n = Rc::clone(&nic);
        sim.block_on(async move {
            let completions: Vec<_> = (0..32).map(|_| n.post_read(4096)).collect();
            for c in completions {
                c.await;
            }
            let elapsed = h.now().as_nanos();
            let gbps = n.read_gbps(elapsed);
            // Config is 32 Gbps; with the trailing base latency the
            // achieved figure must be slightly below the ceiling.
            assert!(gbps > 25.0 && gbps < 32.0, "gbps {gbps}");
        });
    }
}
