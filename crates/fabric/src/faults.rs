//! Deterministic fault injection for the fabric.
//!
//! Real far-memory deployments must survive transport failure: completion
//! queue errors, latency spikes, congestion-driven bandwidth collapse and
//! remote-node brownouts. The seed simulation modeled a perfect network —
//! every posted operation succeeded — so none of the engine's correctness
//! invariants (reclaim only after shootdown ACK *and* durable writeback,
//! §4.1) were ever exercised under failure.
//!
//! A [`FaultPlan`] describes, per link, a reproducible failure schedule:
//!
//! - **per-op transfer errors** (`error_rate`): the operation runs its full
//!   wire time but its completion carries an error status (a CQE error);
//! - **latency spikes** (`spike_rate`/`spike_ns`): the completion is
//!   delayed by a fixed spike on top of serialization + base latency;
//! - **link brownouts**: during pseudo-randomly placed virtual-time
//!   windows the link's bandwidth collapses by `brownout_bw_div`
//!   (serialization stretches, queueing explodes);
//! - **remote-node crashes**: during crash windows every operation fails
//!   fast with [`TransferError::NodeUnreachable`] after one base latency
//!   (the detection delay) without consuming link bandwidth.
//!
//! Everything is driven by SplitMix64 streams derived from `seed`.
//! Brownout and crash windows are *pure functions of virtual time*, so
//! whether a window is open does not depend on operation order; per-op
//! error/spike draws consume a stateful per-link RNG, which the
//! deterministic executor replays identically for a given seed.

use std::cell::Cell;

use mage_sim::rng::{self, mix64, SplitMix64};
use mage_sim::time::{Nanos, SimTime};

/// Why a posted transfer did not complete successfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferError {
    /// The operation completed in error (CQE with error status): the wire
    /// time was spent but the data must not be trusted.
    Cq,
    /// The remote node did not respond (crashed or rebooting); detected
    /// after one base latency, no bandwidth consumed.
    NodeUnreachable,
    /// The initiator gave up waiting (consumer-side virtual-time timeout;
    /// the fabric itself never produces this variant).
    Timeout,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Cq => write!(f, "completion-queue error"),
            TransferError::NodeUnreachable => write!(f, "remote node unreachable"),
            TransferError::Timeout => write!(f, "operation timed out"),
        }
    }
}

/// A reproducible failure schedule for one link.
///
/// [`FaultPlan::none`] (the default everywhere) injects nothing and is
/// bypassed entirely, keeping the fault-free schedule bit-identical to a
/// build without the injection layer.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of every injection stream.
    pub seed: u64,
    /// Per-op probability of a CQE error in `[0, 1]`.
    pub error_rate: f64,
    /// Per-op probability of a latency spike in `[0, 1]`.
    pub spike_rate: f64,
    /// Extra completion latency of a spiked op, ns.
    pub spike_ns: Nanos,
    /// Brownout epoch length, ns (0 disables brownouts).
    pub brownout_period_ns: Nanos,
    /// Length of the brownout window inside an affected epoch, ns.
    pub brownout_duration_ns: Nanos,
    /// Probability that a given epoch contains a brownout window.
    pub brownout_rate: f64,
    /// Bandwidth divisor while a brownout window is open (≥ 1).
    pub brownout_bw_div: u32,
    /// Crash epoch length, ns (0 disables node crashes).
    pub crash_period_ns: Nanos,
    /// Length of the outage window inside an affected epoch, ns.
    pub crash_duration_ns: Nanos,
    /// Probability that a given epoch contains an outage.
    pub crash_rate: f64,
    /// Aligned crash windows: the outage opens at the *start* of each
    /// affected epoch (after shifting time by `crash_phase_ns`) instead of
    /// at a pseudo-random offset. Replication tests use this to build
    /// provably disjoint staggered outage schedules across nodes.
    pub crash_aligned: bool,
    /// Virtual-time shift applied before epoch/window computation when
    /// `crash_aligned` is set; staggers otherwise identical plans.
    pub crash_phase_ns: Nanos,
}

impl FaultPlan {
    /// The perfect network: nothing is injected.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            error_rate: 0.0,
            spike_rate: 0.0,
            spike_ns: 0,
            brownout_period_ns: 0,
            brownout_duration_ns: 0,
            brownout_rate: 0.0,
            brownout_bw_div: 1,
            crash_period_ns: 0,
            crash_duration_ns: 0,
            crash_rate: 0.0,
            crash_aligned: false,
            crash_phase_ns: 0,
        }
    }

    /// A mildly degraded link: sporadic CQE errors and latency spikes
    /// plus occasional short brownouts (the EXPERIMENTS.md "degraded
    /// link" variant of the throughput figures).
    pub fn degraded_link(seed: u64) -> Self {
        FaultPlan {
            seed,
            error_rate: 0.01,
            spike_rate: 0.05,
            spike_ns: 20_000,
            brownout_period_ns: 2_000_000,
            brownout_duration_ns: 300_000,
            brownout_rate: 0.3,
            brownout_bw_div: 8,
            ..FaultPlan::none()
        }
    }

    /// A staggered per-node crash plan: node `index` of `nodes` suffers a
    /// deterministic outage of `duration_ns` once per `period_ns`, phase-
    /// shifted so the windows of distinct nodes never overlap (requires
    /// `duration_ns <= period_ns / nodes`, which this constructor clamps
    /// to). Replication tests rely on the disjointness: at any instant at
    /// most one replica's home node is down.
    pub fn staggered_node_crash(
        seed: u64,
        index: usize,
        nodes: usize,
        period_ns: Nanos,
        duration_ns: Nanos,
    ) -> Self {
        let nodes = nodes.max(1) as u64;
        let slot = period_ns / nodes;
        // Window for node `index` opens at offset index*slot inside each
        // period; `crash_phase_ns` shifts time so the open instant lands
        // on the (shifted) epoch boundary.
        let start = (index as u64 % nodes) * slot;
        FaultPlan {
            seed,
            crash_period_ns: period_ns,
            crash_duration_ns: duration_ns.min(slot.max(1)),
            crash_rate: 1.0,
            crash_aligned: true,
            crash_phase_ns: (period_ns - start) % period_ns.max(1),
            ..FaultPlan::none()
        }
    }

    /// Number of distinct plan families [`FaultPlan::enumerate`] cycles
    /// through (index 0 is always the perfect network).
    pub const FAMILIES: usize = 5;

    /// Enumerates a canonical family of plans for systematic exploration
    /// (the mage-check harness sweeps `index` as one shrinkable dimension
    /// of a failing cell). Index 0 is [`FaultPlan::none`]; higher indices
    /// are increasingly adversarial: transient errors, error+spike mixes,
    /// brownouts, crash windows. Indices wrap modulo [`Self::FAMILIES`],
    /// so any `usize` is a valid cell coordinate.
    pub fn enumerate(index: usize, seed: u64) -> Self {
        match index % Self::FAMILIES {
            0 => FaultPlan::none(),
            1 => FaultPlan {
                seed,
                error_rate: 0.05,
                spike_rate: 0.1,
                spike_ns: 20_000,
                ..FaultPlan::none()
            },
            2 => FaultPlan {
                seed,
                error_rate: 0.5,
                spike_rate: 0.1,
                spike_ns: 20_000,
                ..FaultPlan::none()
            },
            3 => FaultPlan {
                seed,
                error_rate: 0.02,
                brownout_period_ns: 400_000,
                brownout_duration_ns: 120_000,
                brownout_rate: 0.5,
                brownout_bw_div: 8,
                ..FaultPlan::none()
            },
            _ => FaultPlan {
                seed,
                crash_period_ns: 500_000,
                crash_duration_ns: 60_000,
                crash_rate: 0.5,
                ..FaultPlan::none()
            },
        }
    }

    /// Whether any injection is configured at all.
    pub fn is_active(&self) -> bool {
        self.error_rate > 0.0
            || (self.spike_rate > 0.0 && self.spike_ns > 0)
            || (self.brownout_period_ns > 0
                && self.brownout_duration_ns > 0
                && self.brownout_rate > 0.0
                && self.brownout_bw_div > 1)
            || (self.crash_period_ns > 0 && self.crash_duration_ns > 0 && self.crash_rate > 0.0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Injection counters of one link.
#[derive(Default)]
pub struct FaultStats {
    /// Ops whose completion carried a CQE error.
    pub injected_errors: mage_sim::stats::Counter,
    /// Ops that failed fast because the node was down.
    pub unreachable_ops: mage_sim::stats::Counter,
    /// Ops delayed by a latency spike.
    pub latency_spikes: mage_sim::stats::Counter,
    /// Ops serialized through an open brownout window.
    pub brownout_ops: mage_sim::stats::Counter,
}

/// What the injector decided for one posted operation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpInjection {
    /// The node is down: fail fast, consume no bandwidth.
    pub node_down: bool,
    /// Completion status override.
    pub error: Option<TransferError>,
    /// Extra completion latency, ns.
    pub extra_ns: Nanos,
    /// Serialization-time multiplier (brownout), ≥ 1.
    pub ser_factor: u64,
}

impl OpInjection {
    pub(crate) const CLEAN: OpInjection = OpInjection {
        node_down: false,
        error: None,
        extra_ns: 0,
        ser_factor: 1,
    };
}

/// Distinct hash streams so the window schedules are independent.
const STREAM_BROWNOUT: u64 = 0xB10A_0000_0000_0001;
const STREAM_CRASH: u64 = 0xC1A5_0000_0000_0002;

/// Executes a [`FaultPlan`] against one link.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
    /// Epoch of the last crash-recovery observed (for the recovery count).
    last_down: Cell<bool>,
    recoveries: Cell<u64>,
}

impl FaultInjector {
    /// Builds the injector; `lane` decorrelates multiple links sharing a
    /// plan (e.g. read vs. write lanes of distinct NICs).
    pub fn new(plan: FaultPlan, lane: u64) -> Self {
        let rng = rng::stream(plan.seed, lane);
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
            last_down: Cell::new(false),
            recoveries: Cell::new(0),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Crash→recovery transitions observed by posted operations.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.get()
    }

    /// Whether a pseudo-randomly placed window is open at `now`. Pure in
    /// (`seed`, `stream`, `now`): independent of operation order.
    fn window_active(
        &self,
        stream: u64,
        period: Nanos,
        duration: Nanos,
        rate: f64,
        now: SimTime,
    ) -> bool {
        if period == 0 || duration == 0 || rate <= 0.0 {
            return false;
        }
        let t = now.as_nanos();
        let epoch = t / period;
        let h = mix64(self.plan.seed ^ stream ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u >= rate {
            return false;
        }
        let dur = duration.min(period);
        let span = period - dur;
        let offset = if span == 0 { 0 } else { mix64(h ^ 0x000F_F5E7) % (span + 1) };
        let start = epoch * period + offset;
        t >= start && t < start + dur
    }

    /// Whether the link is inside a brownout window at `now`.
    pub fn brownout_active(&self, now: SimTime) -> bool {
        self.plan.brownout_bw_div > 1
            && self.window_active(
                STREAM_BROWNOUT,
                self.plan.brownout_period_ns,
                self.plan.brownout_duration_ns,
                self.plan.brownout_rate,
                now,
            )
    }

    /// Whether an *aligned* crash window is open at `now`: the outage
    /// occupies the first `duration` ns of each affected (phase-shifted)
    /// epoch. Pure in (`seed`, `now`), like [`Self::window_active`].
    fn aligned_crash_active(&self, now: SimTime) -> bool {
        let period = self.plan.crash_period_ns;
        let duration = self.plan.crash_duration_ns;
        if period == 0 || duration == 0 || self.plan.crash_rate <= 0.0 {
            return false;
        }
        let t = now.as_nanos().wrapping_add(self.plan.crash_phase_ns);
        let epoch = t / period;
        let h = mix64(self.plan.seed ^ STREAM_CRASH ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u >= self.plan.crash_rate {
            return false;
        }
        t % period < duration.min(period)
    }

    /// Whether the remote node is down at `now`.
    pub fn node_down(&self, now: SimTime) -> bool {
        if self.plan.crash_aligned {
            return self.aligned_crash_active(now);
        }
        self.window_active(
            STREAM_CRASH,
            self.plan.crash_period_ns,
            self.plan.crash_duration_ns,
            self.plan.crash_rate,
            now,
        )
    }

    /// End instant of the outage window containing `now`, if the node is
    /// down. Background re-replication uses this to wait out the window
    /// instead of polling blindly.
    pub fn outage_ends_at(&self, now: SimTime) -> Option<SimTime> {
        if !self.node_down(now) {
            return None;
        }
        let period = self.plan.crash_period_ns;
        let duration = self.plan.crash_duration_ns.min(period);
        let t = now.as_nanos();
        if self.plan.crash_aligned {
            let shifted = t.wrapping_add(self.plan.crash_phase_ns);
            let into = shifted % period;
            return Some(SimTime::from_nanos(t + (duration - into)));
        }
        // Recompute the pseudo-random offset of this epoch's window.
        let epoch = t / period;
        let h = mix64(self.plan.seed ^ STREAM_CRASH ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let span = period - duration;
        let offset = if span == 0 { 0 } else { mix64(h ^ 0x000F_F5E7) % (span + 1) };
        Some(SimTime::from_nanos(epoch * period + offset + duration))
    }

    /// Decides the fate of one operation posted at `now`.
    pub(crate) fn sample(&self, now: SimTime) -> OpInjection {
        let down = self.node_down(now);
        if self.last_down.get() && !down {
            self.recoveries.set(self.recoveries.get() + 1);
        }
        self.last_down.set(down);
        if down {
            self.stats.unreachable_ops.inc();
            return OpInjection {
                node_down: true,
                error: Some(TransferError::NodeUnreachable),
                extra_ns: 0,
                ser_factor: 1,
            };
        }
        let mut inj = OpInjection::CLEAN;
        if self.plan.error_rate > 0.0 && self.rng.next_f64() < self.plan.error_rate {
            inj.error = Some(TransferError::Cq);
            self.stats.injected_errors.inc();
        }
        if self.plan.spike_rate > 0.0
            && self.plan.spike_ns > 0
            && self.rng.next_f64() < self.plan.spike_rate
        {
            inj.extra_ns = self.plan.spike_ns;
            self.stats.latency_spikes.inc();
        }
        if self.brownout_active(now) {
            inj.ser_factor = self.plan.brownout_bw_div.max(1) as u64;
            self.stats.brownout_ops.inc();
        }
        inj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windowed(period: Nanos, duration: Nanos, rate: f64) -> FaultPlan {
        FaultPlan {
            seed: 7,
            brownout_period_ns: period,
            brownout_duration_ns: duration,
            brownout_rate: rate,
            brownout_bw_div: 4,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn none_plan_is_inactive_and_clean() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let inj = FaultInjector::new(plan, 0);
        for t in [0u64, 1_000, 1_000_000, 1 << 40] {
            let s = inj.sample(SimTime::from_nanos(t));
            assert!(s.error.is_none() && s.extra_ns == 0 && s.ser_factor == 1);
        }
    }

    #[test]
    fn windows_are_pure_functions_of_time() {
        let a = FaultInjector::new(windowed(100_000, 20_000, 0.5), 0);
        let b = FaultInjector::new(windowed(100_000, 20_000, 0.5), 0);
        let probes: Vec<u64> = (0..2_000).map(|i| i * 997).collect();
        // Probe `b` in reverse order first so its internal state (none is
        // supposed to exist) cannot line up with `a`'s by accident.
        for &t in probes.iter().rev() {
            let _ = b.brownout_active(SimTime::from_nanos(t));
        }
        for &t in &probes {
            assert_eq!(
                a.brownout_active(SimTime::from_nanos(t)),
                b.brownout_active(SimTime::from_nanos(t)),
                "schedules diverge at t={t}"
            );
        }
    }

    #[test]
    fn windows_respect_rate_and_duration() {
        let inj = FaultInjector::new(windowed(100_000, 25_000, 0.5), 0);
        let mut open = 0u64;
        let total = 400_000u64;
        for t in 0..total {
            if inj.brownout_active(SimTime::from_nanos(t * 10)) {
                open += 1;
            }
        }
        // Expected open fraction ≈ rate × duration/period = 0.125.
        let frac = open as f64 / total as f64;
        assert!(
            (0.05..0.25).contains(&frac),
            "open fraction {frac} far from expectation"
        );
    }

    #[test]
    fn error_rate_draws_are_seed_reproducible() {
        let plan = FaultPlan {
            seed: 99,
            error_rate: 0.3,
            ..FaultPlan::none()
        };
        let a = FaultInjector::new(plan.clone(), 1);
        let b = FaultInjector::new(plan, 1);
        let fates_a: Vec<bool> = (0..500)
            .map(|i| a.sample(SimTime::from_nanos(i)).error.is_some())
            .collect();
        let fates_b: Vec<bool> = (0..500)
            .map(|i| b.sample(SimTime::from_nanos(i)).error.is_some())
            .collect();
        assert_eq!(fates_a, fates_b);
        let errors = fates_a.iter().filter(|&&e| e).count();
        assert!((80..220).contains(&errors), "errors {errors} far from 150");
        assert_eq!(a.stats().injected_errors.get(), errors as u64);
    }

    #[test]
    fn crash_windows_fail_fast() {
        let plan = FaultPlan {
            seed: 3,
            crash_period_ns: 50_000,
            crash_duration_ns: 50_000,
            crash_rate: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan, 0);
        let s = inj.sample(SimTime::from_nanos(10));
        assert!(s.node_down);
        assert_eq!(s.error, Some(TransferError::NodeUnreachable));
        assert_eq!(inj.stats().unreachable_ops.get(), 1);
    }

    #[test]
    fn recovery_transitions_are_counted() {
        let plan = FaultPlan {
            seed: 3,
            crash_period_ns: 100_000,
            crash_duration_ns: 50_000,
            crash_rate: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan, 0);
        let mut saw_down = false;
        for t in (0..1_000_000).step_by(1_000) {
            let s = inj.sample(SimTime::from_nanos(t));
            saw_down |= s.node_down;
        }
        assert!(saw_down, "outage windows must open");
        assert!(inj.recoveries() > 0, "the node must also come back");
    }

    #[test]
    fn staggered_node_crashes_are_disjoint_and_periodic() {
        let nodes = 3;
        let injs: Vec<_> = (0..nodes)
            .map(|i| {
                FaultInjector::new(
                    FaultPlan::staggered_node_crash(9, i, nodes, 300_000, 40_000),
                    0,
                )
            })
            .collect();
        let mut down_counts = vec![0u64; nodes];
        for t in (0..3_000_000u64).step_by(500) {
            let now = SimTime::from_nanos(t);
            let down: Vec<bool> = injs.iter().map(|i| i.node_down(now)).collect();
            assert!(
                down.iter().filter(|&&d| d).count() <= 1,
                "overlapping outages at t={t}: {down:?}"
            );
            for (i, d) in down.iter().enumerate() {
                if *d {
                    down_counts[i] += 1;
                }
            }
        }
        for (i, c) in down_counts.iter().enumerate() {
            assert!(*c > 0, "node {i} never crashed");
        }
    }

    #[test]
    fn outage_end_bounds_the_open_window() {
        for plan in [
            FaultPlan::staggered_node_crash(4, 1, 2, 200_000, 30_000),
            FaultPlan {
                seed: 4,
                crash_period_ns: 200_000,
                crash_duration_ns: 30_000,
                crash_rate: 1.0,
                ..FaultPlan::none()
            },
        ] {
            let inj = FaultInjector::new(plan, 0);
            let mut checked = 0;
            for t in (0..2_000_000u64).step_by(777) {
                let now = SimTime::from_nanos(t);
                if let Some(end) = inj.outage_ends_at(now) {
                    assert!(inj.node_down(now));
                    assert!(
                        !inj.node_down(end),
                        "node still down at its predicted recovery {end:?} (t={t})"
                    );
                    assert!(end.as_nanos() > t && end.as_nanos() - t <= 30_000);
                    checked += 1;
                }
            }
            assert!(checked > 0, "no outage window ever observed");
        }
    }

    #[test]
    fn enumerate_is_a_total_wrapping_family() {
        assert!(!FaultPlan::enumerate(0, 9).is_active(), "index 0 is clean");
        for i in 1..FaultPlan::FAMILIES {
            assert!(FaultPlan::enumerate(i, 9).is_active(), "family {i} inert");
        }
        // Wrapping: any usize is a valid coordinate.
        let a = FaultPlan::enumerate(1, 9);
        let b = FaultPlan::enumerate(1 + FaultPlan::FAMILIES, 9);
        assert_eq!(a.error_rate.to_bits(), b.error_rate.to_bits());
        assert_eq!(a.seed, b.seed);
        // The seed flows into every family.
        assert_eq!(FaultPlan::enumerate(3, 77).seed, 77);
    }
}
