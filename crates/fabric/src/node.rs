//! The passive far-memory node: region registration and remote addressing.
//!
//! The paper's memory node is a daemon that registers a HugeTLB-backed
//! region with its RDMA NIC and then stays passive — all data movement is
//! one-sided (§5.2, "Memory node"). Pages are metadata in this
//! reproduction (DESIGN.md §4.5), so the node tracks address-space
//! bookkeeping and capacity only; byte movement is charged at the NIC.

use std::cell::RefCell;
use std::fmt;

/// Identity of one simulated memory node behind a link. The single-node
/// fabric is node 0; replicated configurations address mirrors on nodes
/// 1, 2, … via [`crate::Nic::post_read_to`] / [`crate::Nic::post_write_to`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The default (primary) node of a single-node fabric.
    pub const PRIMARY: NodeId = NodeId(0);

    /// Index into per-node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// An address in the far-memory node's registered address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RemoteAddr(pub u64);

impl fmt::Debug for RemoteAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{:#x}", self.0)
    }
}

/// A region registered on the memory node.
#[derive(Clone, Debug)]
pub struct RemoteRegion {
    /// Base address within the node's space.
    pub base: RemoteAddr,
    /// Region length in bytes.
    pub len: u64,
    /// Whether the node backs the region with huge pages (cuts the node's
    /// page-walk cost; modeled as a small per-op latency delta by callers).
    pub huge_pages: bool,
}

impl RemoteRegion {
    /// Returns the remote address at `offset` into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn addr(&self, offset: u64) -> RemoteAddr {
        assert!(offset < self.len, "offset {offset} out of region bounds");
        RemoteAddr(self.base.0 + offset)
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: RemoteAddr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.len
    }
}

/// The far-memory node daemon's bookkeeping.
pub struct MemoryNode {
    capacity: u64,
    next_base: RefCell<u64>,
    regions: RefCell<Vec<RemoteRegion>>,
}

impl MemoryNode {
    /// Creates a node exporting `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryNode {
            capacity,
            next_base: RefCell::new(0),
            regions: RefCell::new(Vec::new()),
        }
    }

    /// Registers a region of `len` bytes, returning it, or `None` if the
    /// node lacks capacity. Mirrors the setup-request handling of the
    /// MAGE-Lib memory-node daemon.
    pub fn register(&self, len: u64, huge_pages: bool) -> Option<RemoteRegion> {
        let mut next = self.next_base.borrow_mut();
        if *next + len > self.capacity {
            return None;
        }
        let region = RemoteRegion {
            base: RemoteAddr(*next),
            len,
            huge_pages,
        };
        *next += len;
        self.regions.borrow_mut().push(region.clone());
        Some(region)
    }

    /// Total exported capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently registered.
    pub fn registered(&self) -> u64 {
        *self.next_base.borrow()
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_within_capacity() {
        let node = MemoryNode::new(1 << 20);
        let r1 = node.register(4096, true).expect("fits");
        let r2 = node.register(8192, false).expect("fits");
        assert_eq!(r1.base, RemoteAddr(0));
        assert_eq!(r2.base, RemoteAddr(4096));
        assert_eq!(node.registered(), 12_288);
        assert_eq!(node.region_count(), 2);
    }

    #[test]
    fn register_beyond_capacity_fails() {
        let node = MemoryNode::new(10_000);
        assert!(node.register(8_000, false).is_some());
        assert!(node.register(8_000, false).is_none());
        // A smaller request still fits.
        assert!(node.register(2_000, false).is_some());
    }

    #[test]
    fn region_addressing() {
        let node = MemoryNode::new(1 << 30);
        let r = node.register(1 << 20, true).expect("fits");
        assert_eq!(r.addr(512 * 1024), RemoteAddr(r.base.0 + 512 * 1024));
        assert!(r.contains(r.addr(0)));
        assert!(!r.contains(RemoteAddr(r.base.0 + r.len)));
    }

    #[test]
    #[should_panic(expected = "out of region bounds")]
    fn out_of_bounds_addr_panics() {
        let node = MemoryNode::new(1 << 20);
        let r = node.register(4096, false).expect("fits");
        let _ = r.addr(4096);
    }
}
