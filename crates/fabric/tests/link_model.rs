//! Randomized tests for the link model: work conservation, FIFO
//! ordering, and bandwidth ceilings under seeded arbitrary loads.

use std::rc::Rc;

use mage_fabric::{Nic, NicConfig};
use mage_sim::rng::SplitMix64;
use mage_sim::Simulation;

/// The link is work-conserving and never exceeds its bandwidth: for any
/// burst of reads posted at time 0, total completion time equals total
/// serialization plus one base latency, and completions occur in post
/// order.
#[test]
fn burst_is_serialized_exactly() {
    let rng = SplitMix64::new(0x5E71_A112);
    for _ in 0..32 {
        let sizes: Vec<u64> = (0..1 + rng.next_below(49))
            .map(|_| 64 + rng.next_below(64_000 - 64))
            .collect();
        let sim = Simulation::new();
        let cfg = NicConfig {
            bandwidth_bytes_per_ns: 10.0,
            base_read_ns: 2_000,
            base_write_ns: 2_000,
        };
        let nic = Rc::new(Nic::new(sim.handle(), cfg.clone()));
        let completions: Vec<_> = sizes.iter().map(|&s| nic.post_read(s)).collect();
        // Completion instants are fixed at post time: check ordering and
        // the exact work-conservation sum.
        let mut prev = 0;
        for c in &completions {
            let at = c.completes_at().as_nanos();
            assert!(at >= prev, "completions out of order");
            prev = at;
        }
        let total_ser: u64 = sizes.iter().map(|&s| cfg.serialize_ns(s)).sum();
        let last = completions.last().unwrap().completes_at().as_nanos();
        assert_eq!(last, total_ser + cfg.base_read_ns);
        // Await them all; the simulation must end at the last completion.
        sim.block_on(async move {
            for c in completions {
                c.await.unwrap();
            }
        });
        assert_eq!(sim.handle().now().as_nanos(), last);
    }
}

/// Reads and writes never interfere (full duplex): a write burst does
/// not delay a read burst posted at the same time.
#[test]
fn full_duplex_independence() {
    let rng = SplitMix64::new(0xD09E_EF11);
    for _ in 0..32 {
        let reads: Vec<u64> = (0..1 + rng.next_below(19))
            .map(|_| 512 + rng.next_below(8_192 - 512))
            .collect();
        let writes: Vec<u64> = (0..1 + rng.next_below(19))
            .map(|_| 512 + rng.next_below(8_192 - 512))
            .collect();
        let mk = || {
            let sim = Simulation::new();
            let nic = Rc::new(Nic::new(sim.handle(), NicConfig::bluefield2_200g()));
            (sim, nic)
        };
        // Reads alone.
        let (_s1, nic1) = mk();
        let solo: Vec<u64> = reads
            .iter()
            .map(|&r| nic1.post_read(r).completes_at().as_nanos())
            .collect();
        // Reads with concurrent writes.
        let (_s2, nic2) = mk();
        for &w in &writes {
            drop(nic2.post_write(w));
        }
        let mixed: Vec<u64> = reads
            .iter()
            .map(|&r| nic2.post_read(r).completes_at().as_nanos())
            .collect();
        assert_eq!(solo, mixed);
    }
}

/// Byte accounting is exact.
#[test]
fn byte_accounting_exact() {
    let rng = SplitMix64::new(0xB17E_ACC7);
    for _ in 0..32 {
        let sizes: Vec<u64> = (0..1 + rng.next_below(39))
            .map(|_| 1 + rng.next_below(99_999))
            .collect();
        let sim = Simulation::new();
        let nic = Rc::new(Nic::new(sim.handle(), NicConfig::bluefield2_200g()));
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if i.is_multiple_of(2) {
                drop(nic.post_read(s));
                reads += s;
            } else {
                drop(nic.post_write(s));
                writes += s;
            }
        }
        assert_eq!(nic.stats().read_bytes.get(), reads);
        assert_eq!(nic.stats().write_bytes.get(), writes);
    }
}
