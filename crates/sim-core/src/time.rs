//! Virtual time representation.
//!
//! All simulated time is measured in integer nanoseconds from the start of
//! the simulation. Durations are plain [`Nanos`] values; instants are
//! [`SimTime`] newtypes so that instants and durations cannot be confused.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in virtual nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per microsecond.
pub const MICROS: Nanos = 1_000;
/// Nanoseconds per millisecond.
pub const MILLIS: Nanos = 1_000_000;
/// Nanoseconds per second.
pub const SECS: Nanos = 1_000_000_000;

/// An instant in virtual time, measured in nanoseconds from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant at `ns` nanoseconds from simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the number of nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECS as f64
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so such a call indicates a logic error.
    pub fn duration_since(self, earlier: SimTime) -> Nanos {
        self.0
            .checked_sub(earlier.0)
            .expect("virtual time ran backwards")
    }

    /// Returns the duration since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Nanos {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<Nanos> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Nanos) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<Nanos> for SimTime {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Nanos;
    fn sub(self, rhs: SimTime) -> Nanos {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECS {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= MILLIS {
            write!(f, "{:.3}ms", self.0 as f64 / MILLIS as f64)
        } else if self.0 >= MICROS {
            write!(f, "{:.3}us", self.0 as f64 / MICROS as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        assert_eq!((t + 2_500).as_nanos(), 7_500);
        assert_eq!((t + 2_500) - t, 2_500);
        assert_eq!(t.duration_since(SimTime::ZERO), 5_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_since(b), 0);
        assert_eq!(b.saturating_since(a), 10);
    }

    #[test]
    #[should_panic(expected = "virtual time ran backwards")]
    fn duration_since_panics_on_backwards() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        let _ = a.duration_since(b);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_nanos(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimTime::from_nanos(3 * SECS).to_string(), "3.000s");
    }
}
