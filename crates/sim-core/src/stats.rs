//! Measurement primitives: counters, time aggregates and latency
//! histograms.
//!
//! [`Histogram`] is a log-bucketed (HDR-style) histogram with bounded
//! relative error, used for every latency distribution reported by the
//! benchmark harness (p50/p99/p999 fault latencies, shootdown latencies,
//! request sojourn times).
//!
//! Every stat type supports **measurement windows**: `snapshot()` captures
//! a cheap start line and `delta(&snapshot)` returns only what was recorded
//! after it. Harnesses report windows instead of destructively resetting
//! stats, so a warmup phase can never pollute the measured figures and the
//! cumulative values stay available for debugging.

use std::cell::Cell;

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct Counter(Cell<u64>);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; wrapping a `u64` event count is a bug).
    pub fn add(&self, n: u64) {
        let v = self.0.get();
        debug_assert!(v.checked_add(n).is_some(), "Counter overflow: {v} + {n}");
        self.0.set(v.saturating_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.replace(0)
    }

    /// Captures the current value as a measurement-window start line.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            value: self.0.get(),
        }
    }

    /// Events recorded since `start` was captured.
    pub fn delta(&self, start: &CounterSnapshot) -> u64 {
        self.0.get().saturating_sub(start.value)
    }
}

/// Point-in-time value of a [`Counter`] (see [`Counter::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    value: u64,
}

/// Aggregate statistics over a stream of durations (count/sum/min/max).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeStat {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl TimeStat {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (saturating; wrapping the `u64` sum on a long
    /// sweep is a bug).
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        debug_assert!(
            self.sum.checked_add(v).is_some(),
            "TimeStat sum overflow: {} + {v}",
            self.sum
        );
        self.sum = self.sum.saturating_add(v);
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &TimeStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        debug_assert!(
            self.sum.checked_add(other.sum).is_some(),
            "TimeStat merge sum overflow"
        );
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Captures the current count/sum as a measurement-window start line.
    ///
    /// Min/max are stream properties that cannot be decomposed into
    /// windows, so the snapshot carries only the additive components.
    pub fn snapshot(&self) -> TimeStatSnapshot {
        TimeStatSnapshot {
            count: self.count,
            sum: self.sum,
        }
    }

    /// The samples recorded since `start` was captured (count/sum/mean).
    pub fn delta(&self, start: &TimeStatSnapshot) -> TimeStatDelta {
        TimeStatDelta {
            count: self.count.saturating_sub(start.count),
            sum: self.sum.saturating_sub(start.sum),
        }
    }
}

/// Point-in-time additive state of a [`TimeStat`] (see
/// [`TimeStat::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeStatSnapshot {
    count: u64,
    sum: u64,
}

/// The samples a [`TimeStat`] accumulated after a snapshot was taken.
///
/// Carries only the window-decomposable aggregates (count, sum, mean);
/// min/max of a window are not derivable from two cumulative states.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeStatDelta {
    count: u64,
    sum: u64,
}

impl TimeStatDelta {
    /// Samples recorded inside the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the window's samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the window's samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 32
const GROUPS: usize = 64 - SUB_BUCKET_BITS as usize + 1;

/// A log-bucketed histogram of `u64` values with ~3% relative error.
///
/// Values below 32 are exact; larger values share a bucket with values of
/// the same magnitude (top 5 mantissa bits). Memory is a fixed ~15 KiB.
pub struct Histogram {
    buckets: Vec<Cell<u64>>,
    stat: std::cell::RefCell<TimeStat>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..GROUPS * SUB_BUCKETS).map(|_| Cell::new(0)).collect(),
            stat: std::cell::RefCell::new(TimeStat::new()),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let magnitude = 63 - v.leading_zeros(); // >= SUB_BUCKET_BITS
        let shift = magnitude - SUB_BUCKET_BITS;
        let group = (magnitude - SUB_BUCKET_BITS + 1) as usize;
        // `sub` lies in [32, 64); store its offset within the group.
        let sub = (v >> shift) as usize - SUB_BUCKETS;
        group * SUB_BUCKETS + sub
    }

    /// Representative (upper-bound) value of bucket `idx`.
    fn bucket_value(idx: usize) -> u64 {
        let group = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if group == 0 {
            sub
        } else {
            let shift = (group - 1) as u32;
            ((SUB_BUCKETS as u64 + sub + 1) << shift) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let bucket = &self.buckets[Self::index(v)];
        bucket.set(bucket.get() + 1);
        self.stat.borrow_mut().record(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.stat.borrow().count()
    }

    /// Arithmetic mean of the recorded samples (exact).
    pub fn mean(&self) -> f64 {
        self.stat.borrow().mean()
    }

    /// Exact maximum of the recorded samples.
    pub fn max(&self) -> u64 {
        self.stat.borrow().max()
    }

    /// Exact minimum of the recorded samples.
    pub fn min(&self) -> u64 {
        self.stat.borrow().min()
    }

    /// Sum of the recorded samples (exact).
    pub fn sum(&self) -> u64 {
        self.stat.borrow().sum()
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound; 0 if empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.get();
            if seen >= rank {
                return Self::bucket_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.set(a.get() + b.get());
        }
        self.stat.borrow_mut().merge(&other.stat.borrow());
    }

    /// Clears all samples.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.set(0);
        }
        *self.stat.borrow_mut() = TimeStat::new();
    }

    /// Captures the current bucket counts as a measurement-window start
    /// line. Costs one fixed-size copy (~15 KiB), taken once per run.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(Cell::get).collect(),
            stat: self.stat.borrow().snapshot(),
        }
    }

    /// The samples recorded since `start` was captured, as a queryable
    /// distribution (count/sum/mean/quantiles).
    ///
    /// Quantile upper bounds are clamped by the histogram's *cumulative*
    /// maximum: exact when the snapshot was empty, otherwise a documented
    /// upper-bound approximation (a window's true max is not recoverable
    /// from two cumulative states).
    pub fn delta(&self, start: &HistogramSnapshot) -> HistogramDelta {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                b.get()
                    .saturating_sub(start.buckets.get(i).copied().unwrap_or(0))
            })
            .collect();
        HistogramDelta {
            buckets,
            stat: self.stat.borrow().delta(&start.stat),
            max_hint: self.max(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s buckets (see
/// [`Histogram::snapshot`]). The default value is an empty start line, so
/// `delta(&HistogramSnapshot::default())` reproduces the cumulative
/// distribution.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Bucket counts at snapshot time; an empty vec means all-zero.
    buckets: Vec<u64>,
    stat: TimeStatSnapshot,
}

/// The samples a [`Histogram`] recorded after a snapshot was taken.
#[derive(Clone, Debug)]
pub struct HistogramDelta {
    buckets: Vec<u64>,
    stat: TimeStatDelta,
    /// Cumulative maximum at window end; clamps quantile upper bounds
    /// (exact if the window started empty).
    max_hint: u64,
}

impl HistogramDelta {
    /// Samples recorded inside the window.
    pub fn count(&self) -> u64 {
        self.stat.count()
    }

    /// Sum of the window's samples (exact).
    pub fn sum(&self) -> u64 {
        self.stat.sum()
    }

    /// Arithmetic mean of the window's samples (exact; 0.0 if empty).
    pub fn mean(&self) -> f64 {
        self.stat.mean()
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound; 0 if empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Histogram::bucket_value(i).min(self.max_hint);
            }
        }
        self.max_hint
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn timestat_aggregates() {
        let mut s = TimeStat::new();
        for v in [5, 1, 9] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 15);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 9);
        assert!((s.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timestat_merge() {
        let mut a = TimeStat::new();
        a.record(10);
        let mut b = TimeStat::new();
        b.record(2);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 30);
        let mut empty = TimeStat::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn histogram_small_values_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / 32.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.p50(), 15);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p99 = h.p99() as f64;
        assert!(
            (p99 - 99_000.0).abs() / 99_000.0 < 0.05,
            "p99 was {p99}, expected ~99000"
        );
        let p50 = h.p50() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05);
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::new();
        h.record(3_900);
        assert_eq!(h.p50(), h.p99());
        assert!(h.p99() <= 3_900);
        assert!(h.p99() as f64 > 3_900.0 * 0.95);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            c.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.p99(), c.p99());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn histogram_index_monotonic() {
        let mut last = 0;
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            1 << 20,
            u64::MAX / 2,
        ] {
            let idx = Histogram::index(v);
            assert!(idx >= last, "index not monotonic at {v}");
            last = idx;
        }
    }

    #[test]
    fn counter_snapshot_delta() {
        let c = Counter::new();
        c.add(10);
        let start = c.snapshot();
        assert_eq!(c.delta(&start), 0, "empty window");
        c.add(7);
        c.inc();
        assert_eq!(c.delta(&start), 8);
        assert_eq!(c.get(), 18, "snapshotting never mutates");
        let empty = CounterSnapshot::default();
        assert_eq!(c.delta(&empty), c.get(), "empty start == cumulative");
    }

    #[test]
    fn timestat_snapshot_delta() {
        let mut s = TimeStat::new();
        s.record(1_000); // warmup sample
        let start = s.snapshot();
        s.record(10);
        s.record(30);
        let d = s.delta(&start);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 40);
        assert!((d.mean() - 20.0).abs() < 1e-9);
        // An empty start line reproduces the cumulative mean bit-for-bit.
        let d0 = s.delta(&TimeStatSnapshot::default());
        assert_eq!(d0.mean().to_bits(), s.mean().to_bits());
    }

    #[test]
    fn timestat_delta_across_merge() {
        // Snapshot, then merge another aggregate in: the delta must see
        // the merged samples as part of the window.
        let mut s = TimeStat::new();
        s.record(5);
        let start = s.snapshot();
        let mut other = TimeStat::new();
        other.record(100);
        other.record(200);
        s.merge(&other);
        s.record(60);
        let d = s.delta(&start);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 360);
        assert!((d.mean() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_snapshot_delta_excludes_warmup() {
        let h = Histogram::new();
        // Warmup: large samples that would dominate the quantiles.
        for _ in 0..1_000 {
            h.record(1_000_000);
        }
        let start = h.snapshot();
        // Window: small samples only.
        let w = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
            w.record(v);
        }
        let d = h.delta(&start);
        assert_eq!(d.count(), w.count());
        assert_eq!(d.sum(), w.sum());
        assert_eq!(d.mean().to_bits(), w.mean().to_bits());
        // Same buckets, so the same quantile values up to the max clamp —
        // the window contains no 1 M samples, so p50/p99 sit far below.
        assert_eq!(d.p50(), w.p50());
        assert_eq!(d.p99(), w.p99());
        assert!(d.p99() < 2_000, "warmup samples leaked into the window");
    }

    #[test]
    fn histogram_delta_from_empty_matches_cumulative() {
        let h = Histogram::new();
        for v in [3_900u64, 5_100, 12_000, 7] {
            h.record(v);
        }
        let d = h.delta(&HistogramSnapshot::default());
        assert_eq!(d.count(), h.count());
        assert_eq!(d.sum(), h.sum());
        assert_eq!(d.mean().to_bits(), h.mean().to_bits());
        assert_eq!(d.p50(), h.p50());
        assert_eq!(d.p99(), h.p99());
        assert_eq!(d.p999(), h.p999());
        assert_eq!(d.quantile(1.0), h.quantile(1.0));
    }

    #[test]
    fn histogram_delta_across_merge() {
        let h = Histogram::new();
        h.record(50);
        let start = h.snapshot();
        let other = Histogram::new();
        for v in [10u64, 20, 30] {
            other.record(v);
        }
        h.merge(&other);
        let d = h.delta(&start);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 60);
        assert_eq!(d.p50(), 20);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "Counter overflow")]
    fn counter_overflow_asserts_in_debug() {
        let c = Counter::new();
        c.add(u64::MAX);
        c.add(1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "TimeStat sum overflow")]
    fn timestat_overflow_asserts_in_debug() {
        let mut s = TimeStat::new();
        s.record(u64::MAX);
        s.record(1);
    }

    #[test]
    fn bucket_value_bounds_index() {
        for v in [0u64, 5, 31, 32, 100, 12345, 1 << 30] {
            let idx = Histogram::index(v);
            let upper = Histogram::bucket_value(idx);
            assert!(
                upper >= v || upper as f64 >= v as f64 * 0.96,
                "bucket upper {upper} not covering {v}"
            );
        }
    }
}
