//! Deterministic discrete-event simulation kernel for the MAGE far-memory
//! reproduction.
//!
//! This crate provides the substrate on which every simulated hardware and
//! OS component runs:
//!
//! - a single-threaded, deterministic async **executor** over *virtual time*
//!   ([`Simulation`], [`SimHandle`]),
//! - virtual-time **synchronization primitives** that record contention
//!   statistics ([`sync::SimMutex`], [`sync::Semaphore`], [`sync::Event`],
//!   [`sync::WaitQueue`]),
//! - a **statistics** library with counters, time aggregates and
//!   log-bucketed latency histograms ([`stats`]), with snapshot/delta
//!   support for measurement windows,
//! - a **virtual-time tracer** recording structured spans into per-track
//!   ring buffers, exportable as Chrome `trace_event` JSON ([`trace`]),
//! - a tiny deterministic **RNG** ([`rng::SplitMix64`]) for components that
//!   must not depend on external crates.
//!
//! Determinism is a design requirement (DESIGN.md §4.1): given the same
//! configuration and seeds, every experiment reproduces bit-for-bit. The
//! executor uses FIFO ready queues, sequence-number tie-breaking for timers,
//! and no host-time or host-thread dependence.
//!
//! # Examples
//!
//! ```
//! use mage_sim::Simulation;
//!
//! let sim = Simulation::new();
//! let h = sim.handle();
//! let elapsed = sim.block_on(async move {
//!     h.sleep(1_000).await; // 1 µs of virtual time
//!     h.now().as_nanos()
//! });
//! assert_eq!(elapsed, 1_000);
//! ```

pub mod executor;
pub mod explore;
pub mod lockdep;
pub mod race;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod sync;
pub mod sync_ext;
pub mod time;
pub mod trace;
pub mod wheel;

pub use executor::{JoinHandle, SimHandle, Simulation};
pub use explore::{ExplorationPolicy, RunProgress};
pub use race::{RaceDetector, RaceMode, RaceReport, ShadowCell, ShadowRegion};
pub use time::{Nanos, SimTime};
