//! Deterministic single-threaded async executor over virtual time.
//!
//! Tasks are `!Send` futures polled on the caller's thread. Time advances
//! only when no task is runnable: the executor then jumps the virtual clock
//! to the earliest pending timer. Wakers are `Arc`-based and thread-safe
//! (so the `Waker` contract is honoured even if one escapes), but in
//! practice everything stays on one thread and execution is deterministic:
//! the ready queue is FIFO and timers break ties by registration sequence.
//!
//! Hot-path representation (the slab refactor, DESIGN.md §11): tasks
//! live in a dense slot arena with an intrusive ready list threaded
//! through them (each task carries a per-slot cached waker, so polling
//! allocates nothing), and timers live in a hierarchical timer wheel
//! ([`crate::wheel`]) that batches same-tick wakeups. Both preserve the
//! historical FIFO / `(deadline, seq)` orders bit-for-bit.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
// The Waker contract requires Send + Sync, so the cross-thread wake queue
// must use a host mutex; it is drained only by the single executor thread
// and never blocks on virtual time.
// simlint: allow(std-sync): Waker contract requires a Send+Sync queue
use std::sync::Mutex;
// simlint: allow(std-sync): lock-free fast path of the wake queue above
use std::sync::atomic::{AtomicUsize, Ordering};
use std::task::{Context, Poll, Wake, Waker};

use crate::explore::{ExplorationPolicy, Explorer, RunProgress};
use crate::lockdep::{LockDep, TaskKey, MAIN_TASK};
use crate::race::{CurrentGuard, RaceDetector};
use crate::time::{Nanos, SimTime};
use crate::wheel::TimerWheel;

type TaskId = usize;
type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Sentinel for "no task" in the intrusive ready list.
const NO_TASK: TaskId = usize::MAX;

/// Thread-safe queue that wakers push task ids into.
///
/// Kept behind a real `Mutex` so that `Waker::wake` is sound even if a
/// waker is (incorrectly but safely) moved to another thread. The
/// executor drains this once per loop iteration, and most iterations
/// find it empty, so an atomic count (updated under the lock) lets the
/// empty case skip the Mutex entirely.
#[derive(Default)]
struct WakeQueue {
    ids: Mutex<Vec<TaskId>>,
    // simlint: allow(std-sync): pairs with the Mutex above (same contract)
    len: AtomicUsize,
}

impl WakeQueue {
    fn push(&self, id: TaskId) {
        let mut q = self.ids.lock().expect("wake queue poisoned");
        q.push(id);
        self.len.store(q.len(), Ordering::Release);
    }

    fn is_empty(&self) -> bool {
        self.len.load(Ordering::Acquire) == 0
    }

    fn drain_into(&self, out: &mut Vec<TaskId>) {
        if self.is_empty() {
            return;
        }
        let mut q = self.ids.lock().expect("wake queue poisoned");
        out.append(&mut q);
        self.len.store(0, Ordering::Release);
    }
}

struct TaskWaker {
    queue: Arc<WakeQueue>,
    id: TaskId,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.id);
    }
}

struct Task {
    future: Option<LocalFuture>,
    /// True while the task id sits in the executor's ready queue, to
    /// de-duplicate redundant wakes.
    enqueued: bool,
    /// Next task in the intrusive ready list ([`NO_TASK`] at the tail,
    /// meaningless while not enqueued).
    next_ready: TaskId,
    /// The slot's cached waker, created once at spawn: polling clones
    /// the `Rc` (a non-atomic refcount bump) instead of allocating a
    /// fresh `Arc` — or touching its atomic refcount — per poll.
    waker: Rc<Waker>,
    /// simsan join-sync id released when the task completes (0 when the
    /// race detector is disabled).
    race_join: u32,
}

/// What a fired timer delivers. `Sleep` resolves to `Task` whenever it
/// is polled with the owning task's own waker (the overwhelmingly common
/// case), letting the executor move the task straight onto the ready
/// list — no `Arc` refcount traffic, no wake-queue Mutex round-trip.
enum TimerTarget {
    /// Enqueue this task directly.
    Task(TaskId),
    /// A foreign waker (combinator-wrapped or out-of-executor poll):
    /// woken the generic way.
    External(Waker),
}

struct ExecCore {
    now: Cell<SimTime>,
    tasks: RefCell<Vec<Option<Task>>>,
    free_ids: RefCell<Vec<TaskId>>,
    /// Intrusive FIFO ready list threaded through `Task::next_ready`.
    ready_head: Cell<TaskId>,
    ready_tail: Cell<TaskId>,
    ready_len: Cell<usize>,
    wake_queue: Arc<WakeQueue>,
    /// Pending timers: hierarchical wheel, fired in `(deadline, seq)`
    /// order with same-tick wakeups batched (see [`crate::wheel`]).
    wheel: RefCell<TimerWheel<TimerTarget>>,
    /// The waker of the task currently being polled (`None` outside
    /// `poll_one`), so `Sleep` can tell "polled with the task's own
    /// waker" from a wrapped one via `will_wake`.
    current_waker: RefCell<Option<Rc<Waker>>>,
    timer_seq: Cell<u64>,
    live_tasks: Cell<usize>,
    drain_buf: RefCell<Vec<TaskId>>,
    /// Scratch for timer fire batches.
    fire_buf: RefCell<Vec<TimerTarget>>,
    /// Scratch for non-FIFO exploration picks: the ready list
    /// materialized as a dense slice of slot ids.
    pick_buf: RefCell<Vec<TaskId>>,
    /// Task currently being polled, for lockdep hold tracking.
    current: Cell<Option<TaskId>>,
    lockdep: LockDep,
    /// Ready-queue pick strategy (FIFO unless exploration is requested).
    explorer: Explorer,
    /// Cumulative task polls, for runaway-schedule bounding.
    polls: Cell<u64>,
    /// The simsan race detector, if enabled (see [`crate::race`]).
    race: RefCell<Option<Rc<RaceDetector>>>,
}

impl ExecCore {
    fn new(policy: ExplorationPolicy) -> Rc<Self> {
        Rc::new(ExecCore {
            now: Cell::new(SimTime::ZERO),
            tasks: RefCell::new(Vec::new()),
            free_ids: RefCell::new(Vec::new()),
            ready_head: Cell::new(NO_TASK),
            ready_tail: Cell::new(NO_TASK),
            ready_len: Cell::new(0),
            wake_queue: Arc::new(WakeQueue::default()),
            wheel: RefCell::new(TimerWheel::new()),
            current_waker: RefCell::new(None),
            timer_seq: Cell::new(0),
            live_tasks: Cell::new(0),
            drain_buf: RefCell::new(Vec::new()),
            fire_buf: RefCell::new(Vec::new()),
            pick_buf: RefCell::new(Vec::new()),
            current: Cell::new(None),
            lockdep: LockDep::default(),
            explorer: Explorer::new(policy),
            polls: Cell::new(0),
            race: RefCell::new(None),
        })
    }

    /// Appends `id` to the intrusive ready list. The caller must have
    /// checked `enqueued` (the list cannot hold duplicates).
    fn push_ready(&self, tasks: &mut [Option<Task>], id: TaskId) {
        let task = tasks[id].as_mut().expect("enqueued task exists");
        debug_assert!(task.enqueued);
        task.next_ready = NO_TASK;
        let tail = self.ready_tail.get();
        if tail == NO_TASK {
            self.ready_head.set(id);
        } else {
            tasks[tail].as_mut().expect("ready tail exists").next_ready = id;
        }
        self.ready_tail.set(id);
        self.ready_len.set(self.ready_len.get() + 1);
    }

    /// Pops the front of the intrusive ready list.
    fn pop_ready_front(&self, tasks: &mut [Option<Task>]) -> Option<TaskId> {
        let id = self.ready_head.get();
        if id == NO_TASK {
            return None;
        }
        let next = tasks[id].as_ref().expect("ready task exists").next_ready;
        self.ready_head.set(next);
        if next == NO_TASK {
            self.ready_tail.set(NO_TASK);
        }
        self.ready_len.set(self.ready_len.get() - 1);
        Some(id)
    }

    /// Removes and returns the next task id to poll, as chosen by the
    /// exploration policy. The FIFO case pops the list head directly —
    /// no materialization, no RNG — preserving the historical schedule
    /// bit-for-bit. Exploration policies see the ready list as a dense
    /// slice of stable slot ids.
    fn pick_ready(&self) -> Option<TaskId> {
        let mut tasks = self.tasks.borrow_mut();
        if self.explorer.is_fifo() {
            return self.pop_ready_front(&mut tasks);
        }
        if self.ready_len.get() == 0 {
            return None;
        }
        let mut buf = self.pick_buf.borrow_mut();
        buf.clear();
        let mut id = self.ready_head.get();
        while id != NO_TASK {
            buf.push(id);
            id = tasks[id].as_ref().expect("ready task exists").next_ready;
        }
        let idx = self.explorer.pick(&buf);
        let chosen = buf[idx];
        // Unlink `chosen`; its predecessor is the materialized slice's
        // previous element.
        let next = tasks[chosen].as_ref().expect("chosen task exists").next_ready;
        if idx == 0 {
            self.ready_head.set(next);
        } else {
            let prev = buf[idx - 1];
            tasks[prev].as_mut().expect("predecessor exists").next_ready = next;
        }
        if next == NO_TASK {
            self.ready_tail.set(if idx == 0 { NO_TASK } else { buf[idx - 1] });
        }
        self.ready_len.set(self.ready_len.get() - 1);
        Some(chosen)
    }

    /// Spawns a task; returns its (recycled) slot id and the simsan
    /// join-sync id (0 when the detector is disabled).
    fn spawn(self: &Rc<Self>, future: LocalFuture) -> (TaskId, u32) {
        // Fork edge: the spawner's clock happens-before everything the
        // child does. Recorded before the slot id is even assigned, in
        // the spawner's context.
        let race = self.race.borrow().clone();
        let (fork_sync, join_sync) = match &race {
            Some(det) => det.fork(),
            None => (0, 0),
        };
        let id = match self.free_ids.borrow_mut().pop() {
            Some(id) => id,
            None => {
                let mut tasks = self.tasks.borrow_mut();
                tasks.push(None);
                tasks.len() - 1
            }
        };
        self.tasks.borrow_mut()[id] = Some(Task {
            future: Some(future),
            enqueued: true,
            next_ready: NO_TASK,
            waker: Rc::new(Waker::from(Arc::new(TaskWaker {
                queue: Arc::clone(&self.wake_queue),
                id,
            }))),
            race_join: join_sync,
        });
        if let Some(det) = &race {
            det.task_begin(id as u64, fork_sync);
        }
        self.live_tasks.set(self.live_tasks.get() + 1);
        self.push_ready(&mut self.tasks.borrow_mut(), id);
        (id, join_sync)
    }

    fn register_timer(&self, deadline: SimTime, target: TimerTarget) -> u64 {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.wheel.borrow_mut().insert(deadline.as_nanos(), seq, target);
        seq
    }

    /// Resolves the [`TimerTarget`] for a timer registered from the poll
    /// context `cx`: the current task's id when `cx` carries that task's
    /// own waker, otherwise the waker itself.
    fn timer_target(&self, cx: &Context<'_>) -> TimerTarget {
        if let Some(id) = self.current.get() {
            if let Some(w) = self.current_waker.borrow().as_deref() {
                if cx.waker().will_wake(w) {
                    return TimerTarget::Task(id);
                }
            }
        }
        TimerTarget::External(cx.waker().clone())
    }

    /// Puts `id` straight onto the ready list (a fired timer's direct
    /// wake) — the same transition `absorb_wakes` performs, minus the
    /// queue round-trip.
    fn wake_task_direct(&self, id: TaskId) {
        let mut tasks = self.tasks.borrow_mut();
        if let Some(Some(task)) = tasks.get_mut(id) {
            if !task.enqueued {
                task.enqueued = true;
                self.push_ready(&mut tasks, id);
            }
        }
    }

    /// Moves externally-woken tasks into the FIFO ready queue.
    fn absorb_wakes(&self) {
        if self.wake_queue.is_empty() {
            return;
        }
        let mut buf = self.drain_buf.borrow_mut();
        buf.clear();
        self.wake_queue.drain_into(&mut buf);
        if buf.is_empty() {
            return;
        }
        let mut tasks = self.tasks.borrow_mut();
        for &id in buf.iter() {
            if let Some(Some(task)) = tasks.get_mut(id) {
                if !task.enqueued {
                    task.enqueued = true;
                    self.push_ready(&mut tasks, id);
                }
            }
        }
    }

    /// Advances the clock to the earliest pending timer and fires every
    /// timer whose deadline has been reached, one same-deadline batch at
    /// a time in `(deadline, seq)` order. Returns false if no timer was
    /// pending.
    fn advance_to_next_timer(&self) -> bool {
        let next = match self.wheel.borrow().peek() {
            Some(d) => SimTime::from_nanos(d),
            None => return false,
        };
        debug_assert!(next >= self.now.get(), "timer in the past");
        if next > self.now.get() {
            self.lockdep.check_time_advance(self.now.get(), next);
        }
        self.now.set(self.now.get().max(next));
        let now = self.now.get().as_nanos();
        let mut fired = self.fire_buf.borrow_mut();
        loop {
            fired.clear();
            if !self.wheel.borrow_mut().fire_next(now, &mut fired) {
                break;
            }
            for target in fired.drain(..) {
                match target {
                    TimerTarget::Task(id) => self.wake_task_direct(id),
                    TimerTarget::External(w) => w.wake(),
                }
            }
        }
        true
    }

    fn poll_one(self: &Rc<Self>, id: TaskId, race: Option<&Rc<RaceDetector>>) {
        let (mut future, waker, race_join) = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(Some(task)) = tasks.get_mut(id) else {
                return;
            };
            task.enqueued = false;
            match task.future.take() {
                Some(f) => (f, Rc::clone(&task.waker), task.race_join),
                None => return,
            }
        };
        let mut cx = Context::from_waker(&waker);
        *self.current_waker.borrow_mut() = Some(Rc::clone(&waker));
        self.current.set(Some(id));
        if let Some(det) = race {
            det.set_now(self.now.get().as_nanos());
            det.enter(id as u64);
        }
        let polled = future.as_mut().poll(&mut cx);
        if let Some(det) = race {
            det.exit();
        }
        self.current.set(None);
        *self.current_waker.borrow_mut() = None;
        match polled {
            Poll::Ready(()) => {
                if let Some(det) = race {
                    det.task_end(id as u64, race_join);
                }
                self.tasks.borrow_mut()[id] = None;
                self.free_ids.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
            }
            Poll::Pending => {
                // The task may have been re-woken while it was being
                // polled; the id would already be in the wake queue, so we
                // just return the future to its slot.
                if let Some(Some(task)) = self.tasks.borrow_mut().get_mut(id) {
                    task.future = Some(future);
                }
            }
        }
    }

    /// Runs until no task is runnable and no timer is pending, or the
    /// optional deadline is reached, or `max_polls` task polls have been
    /// performed. Returns true unless the poll budget stopped the run
    /// first (the runaway case).
    fn run(
        self: &Rc<Self>,
        deadline: Option<SimTime>,
        stop: &dyn Fn() -> bool,
        max_polls: Option<u64>,
    ) -> bool {
        // simsan world edges: everything main did before this run
        // happens-before every task step inside it, and every task step
        // inside it happens-before whatever main does after it returns.
        // The guard publishes the detector to handle-less primitives
        // (WaitQueue/Event/channels) for the duration of the loop.
        let race = self.race.borrow().clone();
        let _guard = CurrentGuard::install(race.clone());
        if let Some(det) = &race {
            det.set_now(self.now.get().as_nanos());
            det.world_publish();
        }
        let out = self.run_inner(deadline, stop, max_polls, race.as_ref());
        if let Some(det) = &race {
            det.set_now(self.now.get().as_nanos());
            det.world_join();
        }
        out
    }

    fn run_inner(
        self: &Rc<Self>,
        deadline: Option<SimTime>,
        stop: &dyn Fn() -> bool,
        max_polls: Option<u64>,
        race: Option<&Rc<RaceDetector>>,
    ) -> bool {
        let start_polls = self.polls.get();
        loop {
            if stop() {
                return true;
            }
            self.absorb_wakes();
            let runnable = self.ready_len.get() != 0;
            if runnable && max_polls.is_some_and(|b| self.polls.get() - start_polls >= b) {
                return false;
            }
            let next = self.pick_ready();
            match next {
                Some(id) => {
                    self.polls.set(self.polls.get() + 1);
                    self.poll_one(id, race);
                }
                None => {
                    if let Some(d) = deadline {
                        let next_timer = self.wheel.borrow().peek().map(SimTime::from_nanos);
                        match next_timer {
                            Some(t) if t <= d => {
                                self.advance_to_next_timer();
                            }
                            _ => {
                                self.now.set(self.now.get().max(d));
                                return true;
                            }
                        }
                    } else if !self.advance_to_next_timer() {
                        return true;
                    }
                }
            }
        }
    }
}

/// A cloneable handle to the simulation, usable from inside tasks.
///
/// The handle provides the virtual clock, sleeping, and task spawning. It
/// is the ambient "world" object passed to every simulated component.
#[derive(Clone)]
pub struct SimHandle {
    core: Rc<ExecCore>,
}

impl SimHandle {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Returns a future that completes `duration` nanoseconds of virtual
    /// time from now. A zero-duration sleep completes without yielding.
    pub fn sleep(&self, duration: Nanos) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline: self.core.now.get() + duration,
            registered: false,
        }
    }

    /// Returns a future that completes at the absolute instant `deadline`
    /// (immediately if `deadline` has already passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline,
            registered: false,
        }
    }

    /// Yields to other runnable tasks once, without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Spawns a task, returning a handle that can await its result.
    pub fn spawn<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = Rc::clone(&state);
        let (_id, race_join) = self.core.spawn(Box::pin(async move {
            let value = future.await;
            let mut s = state2.borrow_mut();
            s.result = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }));
        JoinHandle {
            state,
            race: self.core.race.borrow().clone(),
            race_join,
        }
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.live_tasks.get()
    }

    /// The simulation's lock-order registry (see [`crate::lockdep`]).
    pub fn lockdep(&self) -> &LockDep {
        &self.core.lockdep
    }

    /// The simsan race detector, if enabled on this simulation (see
    /// [`crate::race`] and [`Simulation::enable_race_detection`]).
    pub fn race_detector(&self) -> Option<Rc<RaceDetector>> {
        self.core.race.borrow().clone()
    }

    /// Key identifying the task currently being polled, for lockdep.
    pub(crate) fn current_task_key(&self) -> TaskKey {
        match self.core.current.get() {
            Some(id) => id as TaskKey,
            None => MAIN_TASK,
        }
    }
}

/// Future returned by [`SimHandle::sleep`].
pub struct Sleep {
    core: Rc<ExecCore>,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.core.now.get() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            let target = self.core.timer_target(cx);
            self.core.register_timer(deadline, target);
        }
        Poll::Pending
    }
}

/// Future returned by [`SimHandle::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task; awaiting it yields the task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    /// simsan join edge: acquired when the join observes completion.
    race: Option<Rc<RaceDetector>>,
    race_join: u32,
}

impl<T> JoinHandle<T> {
    /// Returns true if the task has finished.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        match s.result.take() {
            Some(v) => {
                // Join edge: everything the finished task did
                // happens-before the joiner's continuation.
                if let Some(det) = &self.race {
                    det.acquire(self.race_join);
                }
                Poll::Ready(v)
            }
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// Owns the executor; see the crate docs for an example.
pub struct Simulation {
    handle: SimHandle,
}

impl Simulation {
    /// Creates an empty simulation at virtual time zero, with the
    /// default FIFO schedule.
    pub fn new() -> Self {
        Simulation::with_policy(ExplorationPolicy::Fifo)
    }

    /// Creates an empty simulation whose ready-queue picks follow
    /// `policy` (see [`ExplorationPolicy`]). `Fifo` is bit-for-bit
    /// identical to [`Simulation::new`].
    pub fn with_policy(policy: ExplorationPolicy) -> Self {
        let sim = Simulation {
            handle: SimHandle {
                core: ExecCore::new(policy),
            },
        };
        // Opt-in for whole suites without touching the tests: running
        // with MAGE_SIMSAN set enables the race detector on every
        // simulation (ci.sh's simsan stage).
        if std::env::var_os("MAGE_SIMSAN").is_some() {
            sim.enable_race_detection();
        }
        sim
    }

    /// Enables the simsan happens-before race detector on this
    /// simulation and returns it. Must be called before components that
    /// want shadow checking create their [`crate::race::ShadowRegion`]s
    /// (regions bind to the detector at construction). Idempotent.
    ///
    /// The detector observes without perturbing: it never awaits, never
    /// advances virtual time and never draws randomness, so an enabled
    /// run executes the exact same schedule as a disabled one.
    pub fn enable_race_detection(&self) -> Rc<RaceDetector> {
        let mut slot = self.handle.core.race.borrow_mut();
        match &*slot {
            Some(det) => Rc::clone(det),
            None => {
                let det = RaceDetector::new();
                *slot = Some(Rc::clone(&det));
                det
            }
        }
    }

    /// The exploration policy this simulation schedules with.
    pub fn policy(&self) -> ExplorationPolicy {
        self.handle.core.explorer.policy()
    }

    /// Total task polls performed so far, a monotone progress measure
    /// independent of virtual time.
    pub fn polls(&self) -> u64 {
        self.handle.core.polls.get()
    }

    /// Returns a handle usable inside tasks.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawns a task onto the simulation.
    pub fn spawn<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.handle.spawn(future)
    }

    /// Runs until no work remains; returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.handle.core.run(None, &|| false, None);
        self.handle.core.now.get()
    }

    /// Runs until `deadline`, or earlier if the simulation drains.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        self.handle.core.run(Some(deadline), &|| false, None);
        self.handle.core.now.get()
    }

    /// Like [`Simulation::run`]/[`Simulation::run_until`], but performs
    /// at most `max_polls` task polls, so a runaway schedule (livelock,
    /// starvation loop) cannot hang the caller. The returned
    /// [`RunProgress`] says how far the run got and whether it drained
    /// (`completed`) or hit the budget.
    pub fn run_bounded(&self, deadline: Option<SimTime>, max_polls: u64) -> RunProgress {
        let start = self.handle.core.polls.get();
        let completed = self.handle.core.run(deadline, &|| false, Some(max_polls));
        RunProgress {
            now: self.handle.core.now.get(),
            polls: self.handle.core.polls.get() - start,
            completed,
        }
    }

    /// Spawns `future` and runs the simulation until it completes.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs dry (deadlocks) before the future
    /// finishes.
    pub fn block_on<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> T {
        match self.block_on_inner(future, None) {
            Ok(v) => v,
            Err(_) => unreachable!("unbounded block_on cannot exhaust a poll budget"),
        }
    }

    /// Like [`Simulation::block_on`], but gives up after `max_polls`
    /// task polls. Returns `Err` with the progress made if the budget
    /// ran out before the future completed (the runaway case).
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs dry (deadlocks) before the future
    /// finishes and before the budget is exhausted.
    pub fn block_on_bounded<T: 'static>(
        &self,
        future: impl Future<Output = T> + 'static,
        max_polls: u64,
    ) -> Result<T, RunProgress> {
        self.block_on_inner(future, Some(max_polls))
    }

    fn block_on_inner<T: 'static>(
        &self,
        future: impl Future<Output = T> + 'static,
        max_polls: Option<u64>,
    ) -> Result<T, RunProgress> {
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        let (_id, _join) = self.handle.core.spawn(Box::pin(async move {
            *out2.borrow_mut() = Some(future.await);
        }));
        let done = {
            let out = Rc::clone(&out);
            move || out.borrow().is_some()
        };
        let start = self.handle.core.polls.get();
        let completed = self.handle.core.run(None, &done, max_polls);
        let result = out.borrow_mut().take();
        match result {
            Some(v) => Ok(v),
            None if !completed => Err(RunProgress {
                now: self.handle.core.now.get(),
                polls: self.handle.core.polls.get() - start,
                completed: false,
            }),
            None => panic!("simulation deadlocked: block_on future never completed"),
        }
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::new();
        let h = sim.handle();
        let t = sim.block_on(async move {
            h.sleep(42).await;
            h.sleep(8).await;
            h.now().as_nanos()
        });
        assert_eq!(t, 50);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Simulation::new();
        let h = sim.handle();
        sim.block_on(async move {
            h.sleep(0).await;
        });
    }

    #[test]
    fn concurrent_sleeps_interleave_deterministically() {
        let sim = Simulation::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                h2.sleep(delay).await;
                log2.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["b", "c", "a"]);
    }

    #[test]
    fn two_sleepers_at_one_instant_both_wake() {
        // Regression guard for the timer-wheel slot lists: two timers
        // registered for the same deadline tick must both keep their
        // wakers (a tick-keyed `BTreeMap<tick, Waker>` would silently
        // drop the second registration) and fire as one batch.
        let sim = Simulation::new();
        let h = sim.handle();
        let woken = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let h2 = h.clone();
            let woken2 = Rc::clone(&woken);
            sim.spawn(async move {
                h2.sleep(1_000).await;
                woken2.set(woken2.get() + 1);
                assert_eq!(h2.now().as_nanos(), 1_000);
            });
        }
        sim.run();
        assert_eq!(woken.get(), 2, "both same-instant sleepers must wake");
    }

    #[test]
    fn same_deadline_fires_in_registration_order() {
        let sim = Simulation::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in 0..5 {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                h2.sleep(100).await;
                log2.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Simulation::new();
        let h = sim.handle();
        let result = sim.block_on(async move {
            let jh = h.spawn(async { 7 });
            jh.await * 6
        });
        assert_eq!(result, 42);
    }

    #[test]
    fn join_waits_for_sleeping_task() {
        let sim = Simulation::new();
        let h = sim.handle();
        let h2 = h.clone();
        let t = sim.block_on(async move {
            let jh = h2.spawn({
                let h3 = h2.clone();
                async move {
                    h3.sleep(500).await;
                    "done"
                }
            });
            assert_eq!(jh.await, "done");
            h2.now().as_nanos()
        });
        assert_eq!(t, 500);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Simulation::new();
        let h = sim.handle();
        let flag = Rc::new(Cell::new(false));
        let flag2 = Rc::clone(&flag);
        sim.spawn(async move {
            h.sleep(1_000_000).await;
            flag2.set(true);
        });
        let t = sim.run_until(SimTime::from_nanos(500));
        assert_eq!(t.as_nanos(), 500);
        assert!(!flag.get());
        sim.run();
        assert!(flag.get());
    }

    #[test]
    fn yield_now_round_robins() {
        let sim = Simulation::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in 0..2 {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                for round in 0..2 {
                    log2.borrow_mut().push((name, round));
                    h2.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn live_tasks_tracks_completion() {
        let sim = Simulation::new();
        let h = sim.handle();
        assert_eq!(h.live_tasks(), 0);
        sim.spawn(async {});
        assert_eq!(h.live_tasks(), 1);
        sim.run();
        assert_eq!(h.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn block_on_detects_deadlock() {
        let sim = Simulation::new();
        sim.block_on(std::future::pending::<()>());
    }

    /// Runs a contended interleaving workload and returns the order in
    /// which tasks logged, as a schedule fingerprint.
    fn schedule_fingerprint(sim: &Simulation) -> Vec<(usize, usize)> {
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in 0..4usize {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                for round in 0..4usize {
                    log2.borrow_mut().push((name, round));
                    h2.yield_now().await;
                    h2.sleep((round as u64 % 3) * 10).await;
                }
            });
        }
        sim.run();
        let out = log.borrow().clone();
        out
    }

    #[test]
    fn fifo_policy_matches_default_schedule() {
        let a = schedule_fingerprint(&Simulation::new());
        let b = schedule_fingerprint(&Simulation::with_policy(ExplorationPolicy::Fifo));
        assert_eq!(a, b, "Fifo must reproduce the default schedule exactly");
    }

    #[test]
    fn exploration_policies_perturb_and_reproduce_schedules() {
        let seeded = |seed| {
            schedule_fingerprint(&Simulation::with_policy(ExplorationPolicy::SeededRandom {
                seed,
            }))
        };
        assert_eq!(seeded(5), seeded(5), "same seed, same schedule");
        let fifo = schedule_fingerprint(&Simulation::new());
        let mut diverged = false;
        for seed in 0..8 {
            if seeded(seed) != fifo {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "random exploration never left the FIFO schedule");
        let fuzz = |seed| {
            schedule_fingerprint(&Simulation::with_policy(ExplorationPolicy::PriorityFuzz {
                seed,
            }))
        };
        assert_eq!(fuzz(5), fuzz(5), "priority fuzz is reproducible too");
    }

    #[test]
    fn policies_only_reorder_never_drop_work() {
        // Every policy must run every task to completion: same multiset
        // of log entries, whatever the order.
        let mut sorted_fifo = schedule_fingerprint(&Simulation::new());
        sorted_fifo.sort_unstable();
        for policy in [
            ExplorationPolicy::SeededRandom { seed: 3 },
            ExplorationPolicy::PriorityFuzz { seed: 3 },
        ] {
            let mut got = schedule_fingerprint(&Simulation::with_policy(policy));
            got.sort_unstable();
            assert_eq!(got, sorted_fifo, "{} lost or duplicated work", policy.name());
        }
    }

    #[test]
    fn run_bounded_stops_runaway_schedules() {
        let sim = Simulation::new();
        let h = sim.handle();
        sim.spawn(async move {
            loop {
                h.yield_now().await;
            }
        });
        let p = sim.run_bounded(None, 1_000);
        assert!(!p.completed, "an infinite yield loop must hit the budget");
        assert_eq!(p.polls, 1_000);
        assert_eq!(sim.polls(), 1_000);
        // A later bounded run resumes where the first stopped.
        let p2 = sim.run_bounded(None, 500);
        assert!(!p2.completed);
        assert_eq!(p2.polls, 500);
        assert_eq!(sim.polls(), 1_500);
    }

    #[test]
    fn run_bounded_reports_completion_when_draining() {
        let sim = Simulation::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(100).await;
        });
        let p = sim.run_bounded(None, 1_000_000);
        assert!(p.completed, "a finite schedule must drain within budget");
        assert_eq!(p.now.as_nanos(), 100);
        assert!(p.polls > 0);
    }

    #[test]
    fn block_on_bounded_returns_progress_on_budget_exhaustion() {
        let sim = Simulation::new();
        let h = sim.handle();
        let err = sim
            .block_on_bounded(
                async move {
                    loop {
                        h.yield_now().await;
                    }
                },
                200,
            )
            .expect_err("an infinite loop must exhaust the budget");
        assert!(!err.completed);
        assert_eq!(err.polls, 200);

        let sim2 = Simulation::new();
        let h2 = sim2.handle();
        let v = sim2
            .block_on_bounded(
                async move {
                    h2.sleep(7).await;
                    41 + 1
                },
                1_000_000,
            )
            .expect("a finite future completes within budget");
        assert_eq!(v, 42);
    }

    #[test]
    fn many_tasks_scale() {
        let sim = Simulation::new();
        let h = sim.handle();
        let counter = Rc::new(Cell::new(0u64));
        for i in 0..10_000 {
            let h2 = h.clone();
            let c = Rc::clone(&counter);
            sim.spawn(async move {
                h2.sleep(i % 97).await;
                c.set(c.get() + 1);
            });
        }
        sim.run();
        assert_eq!(counter.get(), 10_000);
    }
}
