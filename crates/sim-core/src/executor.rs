//! Deterministic single-threaded async executor over virtual time.
//!
//! Tasks are `!Send` futures polled on the caller's thread. Time advances
//! only when no task is runnable: the executor then jumps the virtual clock
//! to the earliest pending timer. Wakers are `Arc`-based and thread-safe
//! (so the `Waker` contract is honoured even if one escapes), but in
//! practice everything stays on one thread and execution is deterministic:
//! the ready queue is FIFO and timers break ties by registration sequence.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
// The Waker contract requires Send + Sync, so the cross-thread wake queue
// must use a host mutex; it is drained only by the single executor thread
// and never blocks on virtual time.
// simlint: allow(std-sync): Waker contract requires a Send+Sync queue
use std::sync::Mutex;
use std::task::{Context, Poll, Wake, Waker};

use crate::lockdep::{LockDep, TaskKey, MAIN_TASK};
use crate::time::{Nanos, SimTime};

type TaskId = usize;
type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Thread-safe queue that wakers push task ids into.
///
/// Kept behind a real `Mutex` so that `Waker::wake` is sound even if a
/// waker is (incorrectly but safely) moved to another thread.
#[derive(Default)]
struct WakeQueue {
    ids: Mutex<Vec<TaskId>>,
}

impl WakeQueue {
    fn push(&self, id: TaskId) {
        self.ids.lock().expect("wake queue poisoned").push(id);
    }

    fn drain_into(&self, out: &mut Vec<TaskId>) {
        let mut q = self.ids.lock().expect("wake queue poisoned");
        out.append(&mut q);
    }
}

struct TaskWaker {
    queue: Arc<WakeQueue>,
    id: TaskId,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.id);
    }
}

struct Task {
    future: Option<LocalFuture>,
    /// True while the task id sits in the executor's ready queue, to
    /// de-duplicate redundant wakes.
    enqueued: bool,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    deadline: SimTime,
    seq: u64,
}

struct ExecCore {
    now: Cell<SimTime>,
    tasks: RefCell<Vec<Option<Task>>>,
    free_ids: RefCell<Vec<TaskId>>,
    ready: RefCell<VecDeque<TaskId>>,
    wake_queue: Arc<WakeQueue>,
    /// Min-heap of pending timers; the waker map is keyed by sequence.
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_wakers: RefCell<std::collections::BTreeMap<u64, Waker>>,
    timer_seq: Cell<u64>,
    live_tasks: Cell<usize>,
    drain_buf: RefCell<Vec<TaskId>>,
    /// Task currently being polled, for lockdep hold tracking.
    current: Cell<Option<TaskId>>,
    lockdep: LockDep,
}

impl ExecCore {
    fn new() -> Rc<Self> {
        Rc::new(ExecCore {
            now: Cell::new(SimTime::ZERO),
            tasks: RefCell::new(Vec::new()),
            free_ids: RefCell::new(Vec::new()),
            ready: RefCell::new(VecDeque::new()),
            wake_queue: Arc::new(WakeQueue::default()),
            timers: RefCell::new(BinaryHeap::new()),
            timer_wakers: RefCell::new(std::collections::BTreeMap::new()),
            timer_seq: Cell::new(0),
            live_tasks: Cell::new(0),
            drain_buf: RefCell::new(Vec::new()),
            current: Cell::new(None),
            lockdep: LockDep::default(),
        })
    }

    fn spawn(self: &Rc<Self>, future: LocalFuture) -> TaskId {
        let id = match self.free_ids.borrow_mut().pop() {
            Some(id) => id,
            None => {
                let mut tasks = self.tasks.borrow_mut();
                tasks.push(None);
                tasks.len() - 1
            }
        };
        self.tasks.borrow_mut()[id] = Some(Task {
            future: Some(future),
            enqueued: true,
        });
        self.live_tasks.set(self.live_tasks.get() + 1);
        self.ready.borrow_mut().push_back(id);
        id
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) -> u64 {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.timers
            .borrow_mut()
            .push(Reverse(TimerEntry { deadline, seq }));
        self.timer_wakers.borrow_mut().insert(seq, waker);
        seq
    }

    /// Moves externally-woken tasks into the FIFO ready queue.
    fn absorb_wakes(&self) {
        let mut buf = self.drain_buf.borrow_mut();
        buf.clear();
        self.wake_queue.drain_into(&mut buf);
        if buf.is_empty() {
            return;
        }
        let mut tasks = self.tasks.borrow_mut();
        let mut ready = self.ready.borrow_mut();
        for &id in buf.iter() {
            if let Some(Some(task)) = tasks.get_mut(id) {
                if !task.enqueued {
                    task.enqueued = true;
                    ready.push_back(id);
                }
            }
        }
    }

    /// Advances the clock to the earliest pending timer and fires every
    /// timer whose deadline has been reached. Returns false if no timer
    /// was pending.
    fn advance_to_next_timer(&self) -> bool {
        let next = match self.timers.borrow_mut().peek() {
            Some(Reverse(e)) => e.deadline,
            None => return false,
        };
        debug_assert!(next >= self.now.get(), "timer in the past");
        if next > self.now.get() {
            self.lockdep.check_time_advance(self.now.get(), next);
        }
        self.now.set(self.now.get().max(next));
        loop {
            let fire = {
                let mut timers = self.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.deadline <= self.now.get() => {
                        let Reverse(e) = timers.pop().expect("peeked entry vanished");
                        Some(e.seq)
                    }
                    _ => None,
                }
            };
            match fire {
                Some(seq) => {
                    if let Some(waker) = self.timer_wakers.borrow_mut().remove(&seq) {
                        waker.wake();
                    }
                }
                None => break,
            }
        }
        true
    }

    fn poll_one(self: &Rc<Self>, id: TaskId) {
        let mut future = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(Some(task)) = tasks.get_mut(id) else {
                return;
            };
            task.enqueued = false;
            match task.future.take() {
                Some(f) => f,
                None => return,
            }
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            queue: Arc::clone(&self.wake_queue),
            id,
        }));
        let mut cx = Context::from_waker(&waker);
        self.current.set(Some(id));
        let polled = future.as_mut().poll(&mut cx);
        self.current.set(None);
        match polled {
            Poll::Ready(()) => {
                self.tasks.borrow_mut()[id] = None;
                self.free_ids.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
            }
            Poll::Pending => {
                // The task may have been re-woken while it was being
                // polled; the id would already be in the wake queue, so we
                // just return the future to its slot.
                if let Some(Some(task)) = self.tasks.borrow_mut().get_mut(id) {
                    task.future = Some(future);
                }
            }
        }
    }

    /// Runs until no task is runnable and no timer is pending, or the
    /// optional deadline is reached. Returns the final virtual time.
    fn run(self: &Rc<Self>, deadline: Option<SimTime>, stop: &dyn Fn() -> bool) -> SimTime {
        loop {
            if stop() {
                return self.now.get();
            }
            self.absorb_wakes();
            let next = self.ready.borrow_mut().pop_front();
            match next {
                Some(id) => self.poll_one(id),
                None => {
                    if let Some(d) = deadline {
                        let next_timer = self.timers.borrow().peek().map(|Reverse(e)| e.deadline);
                        match next_timer {
                            Some(t) if t <= d => {
                                self.advance_to_next_timer();
                            }
                            _ => {
                                self.now.set(self.now.get().max(d));
                                return self.now.get();
                            }
                        }
                    } else if !self.advance_to_next_timer() {
                        return self.now.get();
                    }
                }
            }
        }
    }
}

/// A cloneable handle to the simulation, usable from inside tasks.
///
/// The handle provides the virtual clock, sleeping, and task spawning. It
/// is the ambient "world" object passed to every simulated component.
#[derive(Clone)]
pub struct SimHandle {
    core: Rc<ExecCore>,
}

impl SimHandle {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Returns a future that completes `duration` nanoseconds of virtual
    /// time from now. A zero-duration sleep completes without yielding.
    pub fn sleep(&self, duration: Nanos) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline: self.core.now.get() + duration,
            registered: false,
        }
    }

    /// Returns a future that completes at the absolute instant `deadline`
    /// (immediately if `deadline` has already passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            core: Rc::clone(&self.core),
            deadline,
            registered: false,
        }
    }

    /// Yields to other runnable tasks once, without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Spawns a task, returning a handle that can await its result.
    pub fn spawn<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = Rc::clone(&state);
        self.core.spawn(Box::pin(async move {
            let value = future.await;
            let mut s = state2.borrow_mut();
            s.result = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }));
        JoinHandle { state }
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.live_tasks.get()
    }

    /// The simulation's lock-order registry (see [`crate::lockdep`]).
    pub fn lockdep(&self) -> &LockDep {
        &self.core.lockdep
    }

    /// Key identifying the task currently being polled, for lockdep.
    pub(crate) fn current_task_key(&self) -> TaskKey {
        match self.core.current.get() {
            Some(id) => id as TaskKey,
            None => MAIN_TASK,
        }
    }
}

/// Future returned by [`SimHandle::sleep`].
pub struct Sleep {
    core: Rc<ExecCore>,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.core.now.get() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.core.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`SimHandle::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task; awaiting it yields the task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Returns true if the task has finished.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        match s.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// Owns the executor; see the crate docs for an example.
pub struct Simulation {
    handle: SimHandle,
}

impl Simulation {
    /// Creates an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Simulation {
            handle: SimHandle {
                core: ExecCore::new(),
            },
        }
    }

    /// Returns a handle usable inside tasks.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawns a task onto the simulation.
    pub fn spawn<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.handle.spawn(future)
    }

    /// Runs until no work remains; returns the final virtual time.
    pub fn run(&self) -> SimTime {
        self.handle.core.run(None, &|| false)
    }

    /// Runs until `deadline`, or earlier if the simulation drains.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        self.handle.core.run(Some(deadline), &|| false)
    }

    /// Spawns `future` and runs the simulation until it completes.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs dry (deadlocks) before the future
    /// finishes.
    pub fn block_on<T: 'static>(&self, future: impl Future<Output = T> + 'static) -> T {
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        self.handle.core.spawn(Box::pin(async move {
            *out2.borrow_mut() = Some(future.await);
        }));
        let done = {
            let out = Rc::clone(&out);
            move || out.borrow().is_some()
        };
        self.handle.core.run(None, &done);
        let result = out.borrow_mut().take();
        result.expect("simulation deadlocked: block_on future never completed")
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::new();
        let h = sim.handle();
        let t = sim.block_on(async move {
            h.sleep(42).await;
            h.sleep(8).await;
            h.now().as_nanos()
        });
        assert_eq!(t, 50);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Simulation::new();
        let h = sim.handle();
        sim.block_on(async move {
            h.sleep(0).await;
        });
    }

    #[test]
    fn concurrent_sleeps_interleave_deterministically() {
        let sim = Simulation::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("a", 30u64), ("b", 10), ("c", 20)] {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                h2.sleep(delay).await;
                log2.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["b", "c", "a"]);
    }

    #[test]
    fn same_deadline_fires_in_registration_order() {
        let sim = Simulation::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in 0..5 {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                h2.sleep(100).await;
                log2.borrow_mut().push(name);
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Simulation::new();
        let h = sim.handle();
        let result = sim.block_on(async move {
            let jh = h.spawn(async { 7 });
            jh.await * 6
        });
        assert_eq!(result, 42);
    }

    #[test]
    fn join_waits_for_sleeping_task() {
        let sim = Simulation::new();
        let h = sim.handle();
        let h2 = h.clone();
        let t = sim.block_on(async move {
            let jh = h2.spawn({
                let h3 = h2.clone();
                async move {
                    h3.sleep(500).await;
                    "done"
                }
            });
            assert_eq!(jh.await, "done");
            h2.now().as_nanos()
        });
        assert_eq!(t, 500);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Simulation::new();
        let h = sim.handle();
        let flag = Rc::new(Cell::new(false));
        let flag2 = Rc::clone(&flag);
        sim.spawn(async move {
            h.sleep(1_000_000).await;
            flag2.set(true);
        });
        let t = sim.run_until(SimTime::from_nanos(500));
        assert_eq!(t.as_nanos(), 500);
        assert!(!flag.get());
        sim.run();
        assert!(flag.get());
    }

    #[test]
    fn yield_now_round_robins() {
        let sim = Simulation::new();
        let h = sim.handle();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in 0..2 {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            sim.spawn(async move {
                for round in 0..2 {
                    log2.borrow_mut().push((name, round));
                    h2.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn live_tasks_tracks_completion() {
        let sim = Simulation::new();
        let h = sim.handle();
        assert_eq!(h.live_tasks(), 0);
        sim.spawn(async {});
        assert_eq!(h.live_tasks(), 1);
        sim.run();
        assert_eq!(h.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn block_on_detects_deadlock() {
        let sim = Simulation::new();
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn many_tasks_scale() {
        let sim = Simulation::new();
        let h = sim.handle();
        let counter = Rc::new(Cell::new(0u64));
        for i in 0..10_000 {
            let h2 = h.clone();
            let c = Rc::clone(&counter);
            sim.spawn(async move {
                h2.sleep(i % 97).await;
                c.set(c.get() + 1);
            });
        }
        sim.run();
        assert_eq!(counter.get(), 10_000);
    }
}
