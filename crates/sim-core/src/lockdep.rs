//! Deterministic lock-order validation (lockdep) for the simulator.
//!
//! Real far-memory kernels deadlock through lock-ordering inversions
//! (fault path vs. eviction path vs. allocator); a simulator of them can
//! too, and an async deadlock just looks like a mysteriously idle run.
//! This module validates lock ordering *as the simulation executes*,
//! exactly like Linux's lockdep: every [`crate::sync::SimMutex`] and
//! [`crate::sync_ext::SimRwLock`] belongs to a **lock class** (named at
//! construction, or defaulted from the protected type), and every
//! acquisition while other locks are held records a directed edge
//! `held-class → acquired-class` in an acquisition graph. The first
//! acquisition that would close a cycle panics with both acquisition
//! chains — the one being attempted and the one that established the
//! opposite order — including the `file:line` of every `lock()` call
//! involved.
//!
//! Because the executor is deterministic, an inversion is not a flaky
//! once-in-a-thousand-runs hang: the same seed produces the same panic
//! with the same chains, every run.
//!
//! Two deliberate design points:
//!
//! - **Same-class nesting is allowed.** Holding two locks of one class
//!   (e.g. two VMA shard locks) is a legitimate ordered-acquisition
//!   pattern here, and flagging it would reject the sharded-lock models.
//! - **Holding a guard across a virtual-time advance is opt-in checked.**
//!   The simulator *intentionally* holds guards across `sleep()` to model
//!   critical-section service time, so this cannot be an unconditional
//!   rule. Classes that must never be held across an await that advances
//!   the clock (e.g. locks guarding host-side scratch state) opt in via
//!   [`crate::sync::SimMutex::forbid_hold_across_sleep`]; the check fires
//!   when the executor is about to advance the clock while such a guard
//!   is held.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::Location;

use crate::time::SimTime;

/// Task key used in lockdep bookkeeping: the executor's task id, or
/// [`MAIN_TASK`] for guards acquired outside any task.
pub type TaskKey = u64;

/// Sentinel for acquisitions outside any executor task.
pub const MAIN_TASK: TaskKey = u64::MAX;

/// One held (or being-acquired) lock: its class and the `lock()` site.
#[derive(Clone, Copy)]
struct Held {
    class: u32,
    site: &'static Location<'static>,
}

/// Snapshot of the acquisition that first created a graph edge.
#[derive(Clone)]
struct EdgeOrigin {
    task: TaskKey,
    /// The stack of locks held at that moment (the edge source is one of
    /// these), then the acquisition itself.
    stack: Vec<Held>,
    acquired: Held,
}

#[derive(Default)]
struct Inner {
    /// Class id → name.
    names: Vec<String>,
    /// Class id → "must not be held across a virtual-time advance".
    no_hold_across_sleep: Vec<bool>,
    /// True once any class opted into `forbid_hold_across_sleep`; lets
    /// [`LockDep::check_time_advance`] (called on every clock advance)
    /// return without scanning anything in the common case.
    any_forbidden: bool,
    /// Name → class id (classes are deduplicated by name).
    by_name: BTreeMap<String, u32>,
    /// Acquisition graph, indexed by from-class: `edges[from]` maps
    /// to-class → first origin. Grown alongside `names` in
    /// `register_class`. The inner map stays ordered so `find_path`
    /// visits neighbours in deterministic class-id order.
    edges: Vec<BTreeMap<u32, EdgeOrigin>>,
    /// Per-task stacks of currently held locks, indexed by
    /// [`task_slot`]. Task ids are dense executor indices, so a Vec
    /// beats the ordered map this used to be: `acquired`/`release` run
    /// once per lock cycle on the engine's hot paths. Empty stacks stay
    /// in place rather than being evicted.
    held: Vec<Vec<Held>>,
    /// Total held guards across all tasks (sum of `held[*].len()`).
    held_total: usize,
}

/// Dense index for a task's `held` stack: tasks are numbered from 0 by
/// the executor, and [`MAIN_TASK`] (`u64::MAX`) wraps to slot 0.
fn task_slot(task: TaskKey) -> usize {
    task.wrapping_add(1) as usize
}

impl Inner {
    /// Depth-first search for a path `from → … → to` in the acquisition
    /// graph. Deterministic: neighbours are visited in class-id order.
    fn find_path(&self, from: u32, to: u32) -> Option<Vec<(u32, u32)>> {
        let mut stack = vec![(from, Vec::new())];
        let mut visited = vec![false; self.names.len()];
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if std::mem::replace(&mut visited[node as usize], true) {
                continue;
            }
            // Reverse so the smallest class id is explored first
            // (stack pops last-pushed).
            for (&next, _) in self.edges[node as usize].iter().rev() {
                let mut p = path.clone();
                p.push((node, next));
                stack.push((next, p));
            }
        }
        None
    }

    fn describe_held(&self, h: &Held) -> String {
        format!("{} (locked at {})", self.names[h.class as usize], h.site)
    }

    fn describe_origin(&self, o: &EdgeOrigin) -> String {
        let mut s = format!("task {} held [", task_name(o.task));
        for (i, h) in o.stack.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&self.describe_held(h));
        }
        s.push_str("] and acquired ");
        s.push_str(&self.describe_held(&o.acquired));
        s
    }
}

fn task_name(task: TaskKey) -> String {
    if task == MAIN_TASK {
        "<main>".to_string()
    } else {
        task.to_string()
    }
}

/// The lock-order registry. One per [`crate::Simulation`], owned by the
/// executor core; locks reach it through their `SimHandle`.
#[derive(Default)]
pub struct LockDep {
    inner: RefCell<Inner>,
}

impl LockDep {
    /// Registers (or looks up) the lock class called `name`.
    pub(crate) fn register_class(&self, name: &str) -> u32 {
        let mut inner = self.inner.borrow_mut();
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = inner.names.len() as u32;
        inner.names.push(name.to_string());
        inner.no_hold_across_sleep.push(false);
        inner.edges.push(BTreeMap::new());
        inner.by_name.insert(name.to_string(), id);
        id
    }

    /// Marks `class` as forbidden to hold across a virtual-time advance.
    pub(crate) fn forbid_hold_across_sleep(&self, class: u32) {
        let mut inner = self.inner.borrow_mut();
        inner.no_hold_across_sleep[class as usize] = true;
        inner.any_forbidden = true;
    }

    /// Validates an acquisition *attempt* of `class` by `task` at
    /// `site`, recording `held → class` edges. Called before the task
    /// blocks (like Linux's `lock_acquire`), so an inversion is reported
    /// even on the very execution where it deadlocks.
    ///
    /// # Panics
    ///
    /// Panics with both acquisition chains if a new `held → class` edge
    /// closes a cycle in the acquisition graph.
    pub(crate) fn check_acquire(&self, task: TaskKey, class: u32, site: &'static Location<'static>) {
        let mut inner = self.inner.borrow_mut();
        // Take the stack out instead of cloning it: the outermost lock of
        // an uncontended cycle goes through here with nothing held, and
        // even nested acquisitions only clone when a *new* edge needs an
        // origin snapshot. The stack goes back before returning (the
        // panic arms abandon it — lockdep state is moot mid-panic).
        let slot = task_slot(task);
        let stack = match inner.held.get_mut(slot) {
            Some(s) if !s.is_empty() => std::mem::take(s),
            _ => return,
        };
        let acquired = Held { class, site };
        for h in &stack {
            // Same-class nesting (shard arrays, ordered same-type locks)
            // is an accepted pattern; see the module docs.
            if h.class == class {
                continue;
            }
            if inner.edges[h.class as usize].contains_key(&class) {
                continue;
            }
            // New edge h.class → class: adding it creates a cycle iff the
            // graph already has a path class → … → h.class.
            if let Some(path) = inner.find_path(class, h.class) {
                // One-line class-name cycle (A -> B -> C -> A) so the shape
                // is readable before the per-edge chains below.
                let mut cycle = vec![inner.names[class as usize].as_str()];
                for (_, b) in &path {
                    cycle.push(inner.names[*b as usize].as_str());
                }
                cycle.push(inner.names[class as usize].as_str());
                let mut msg = format!(
                    "lockdep: lock ordering cycle\n  cycle: {}\n  task {} attempting to acquire {} while holding {}\n  but the opposite order {} -> … -> {} is already established:\n",
                    cycle.join(" -> "),
                    task_name(task),
                    inner.describe_held(&acquired),
                    inner.describe_held(h),
                    inner.names[class as usize],
                    inner.names[h.class as usize],
                );
                for (a, b) in &path {
                    let origin = &inner.edges[*a as usize][b];
                    msg.push_str(&format!(
                        "    {} -> {}: {}\n",
                        inner.names[*a as usize],
                        inner.names[*b as usize],
                        inner.describe_origin(origin),
                    ));
                }
                msg.push_str(&format!(
                    "  current chain: {}",
                    inner.describe_origin(&EdgeOrigin {
                        task,
                        stack: stack.clone(),
                        acquired,
                    })
                ));
                drop(inner);
                panic!("{msg}");
            }
            let origin = EdgeOrigin {
                task,
                stack: stack.clone(),
                acquired,
            };
            inner.edges[h.class as usize].insert(class, origin);
        }
        inner.held[slot] = stack;
    }

    /// Records that `task` now holds `class` (acquisition succeeded).
    pub(crate) fn acquired(&self, task: TaskKey, class: u32, site: &'static Location<'static>) {
        let mut inner = self.inner.borrow_mut();
        let slot = task_slot(task);
        if slot >= inner.held.len() {
            inner.held.resize_with(slot + 1, Vec::new);
        }
        inner.held[slot].push(Held { class, site });
        inner.held_total += 1;
    }

    /// Records the release of `class` by `task` (innermost matching hold).
    pub(crate) fn release(&self, task: TaskKey, class: u32) {
        let mut inner = self.inner.borrow_mut();
        if let Some(stack) = inner.held.get_mut(task_slot(task)) {
            if let Some(pos) = stack.iter().rposition(|h| h.class == class) {
                stack.remove(pos);
                inner.held_total -= 1;
            }
        }
    }

    /// Called by the executor just before the virtual clock advances from
    /// `now` to `next`.
    ///
    /// # Panics
    ///
    /// Panics if any task holds a guard of a class registered with
    /// [`forbid_hold_across_sleep`](Self::forbid_hold_across_sleep): the
    /// clock advancing means that task is suspended in an await with the
    /// guard still live.
    pub(crate) fn check_time_advance(&self, now: SimTime, next: SimTime) {
        let inner = self.inner.borrow();
        // Fast path: the executor calls this on every clock advance, and
        // almost no run registers a forbidden class or is even holding a
        // guard at advance time.
        if !inner.any_forbidden || inner.held_total == 0 {
            return;
        }
        // Slot 0 is MAIN_TASK (u64::MAX), which the ordered map this
        // replaced reported *last*; keep that report order.
        for slot in (1..inner.held.len()).chain(std::iter::once(0)) {
            let stack = &inner.held[slot];
            let task = if slot == 0 {
                MAIN_TASK
            } else {
                (slot - 1) as TaskKey
            };
            for h in stack {
                if inner.no_hold_across_sleep[h.class as usize] {
                    let chain = stack
                        .iter()
                        .map(|h| inner.describe_held(h))
                        .collect::<Vec<_>>()
                        .join(", ");
                    panic!(
                        "lockdep: guard held across virtual-time advance\n  task {} holds {} while the clock advances {} -> {} ns\n  held chain: [{}]\n  class {} was registered with forbid_hold_across_sleep()",
                        task_name(task),
                        inner.describe_held(h),
                        now.as_nanos(),
                        next.as_nanos(),
                        chain,
                        inner.names[h.class as usize],
                    );
                }
            }
        }
    }

    /// Number of distinct lock classes registered so far.
    pub fn classes(&self) -> usize {
        self.inner.borrow().names.len()
    }

    /// Number of distinct ordering edges observed so far.
    pub fn edges(&self) -> usize {
        self.inner.borrow().edges.iter().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn site() -> &'static Location<'static> {
        Location::caller()
    }

    /// The 3-lock cycle report renders class *names* at every level: the
    /// one-line cycle, each established edge with its origin chain, and
    /// the attempting chain. Asserted verbatim so the format stays
    /// readable as classes grow.
    #[test]
    fn three_lock_cycle_report_names_every_class() {
        let dep = LockDep::default();
        let a = dep.register_class("mmap_lock");
        let b = dep.register_class("lru_lock");
        let c = dep.register_class("palloc.buddy");
        let (sa, sb, sc) = (site(), site(), site());

        // Task 1 establishes mmap_lock -> lru_lock.
        dep.check_acquire(1, a, sa);
        dep.acquired(1, a, sa);
        dep.check_acquire(1, b, sb);
        dep.acquired(1, b, sb);
        dep.release(1, b);
        dep.release(1, a);
        // Task 2 establishes lru_lock -> palloc.buddy.
        dep.check_acquire(2, b, sb);
        dep.acquired(2, b, sb);
        dep.check_acquire(2, c, sc);
        dep.acquired(2, c, sc);
        dep.release(2, c);
        dep.release(2, b);
        // Task 3 attempts palloc.buddy -> mmap_lock: closes the cycle.
        dep.check_acquire(3, c, sc);
        dep.acquired(3, c, sc);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dep.check_acquire(3, a, sa);
        }))
        .expect_err("cycle must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is the report")
            .clone();

        let expected = format!(
            "lockdep: lock ordering cycle\n\
             \x20 cycle: mmap_lock -> lru_lock -> palloc.buddy -> mmap_lock\n\
             \x20 task 3 attempting to acquire mmap_lock (locked at {sa}) while holding palloc.buddy (locked at {sc})\n\
             \x20 but the opposite order mmap_lock -> … -> palloc.buddy is already established:\n\
             \x20   mmap_lock -> lru_lock: task 1 held [mmap_lock (locked at {sa})] and acquired lru_lock (locked at {sb})\n\
             \x20   lru_lock -> palloc.buddy: task 2 held [lru_lock (locked at {sb})] and acquired palloc.buddy (locked at {sc})\n\
             \x20 current chain: task 3 held [palloc.buddy (locked at {sc})] and acquired mmap_lock (locked at {sa})"
        );
        assert_eq!(msg, expected);
    }
}
