//! Hierarchical timer wheel for the deterministic executor.
//!
//! Replaces the executor's `BinaryHeap<TimerEntry>` + `BTreeMap<u64,
//! Waker>` pair with an O(1)-insert structure that fires timers in
//! exactly the historical order: ascending `(deadline, seq)`, where
//! `seq` is the registration sequence number. Same-deadline timers are
//! batched into one wakeup group per tick, and every slot keeps a full
//! list — a naïve tick-keyed map would drop the second waker when two
//! timers register the same deadline.
//!
//! ## Tick math
//!
//! Time is split into 11 levels of 64 slots (6 bits each, covering the
//! full 64-bit nanosecond clock: level L spans `64^(L+1)` ns). An entry
//! with deadline `D` inserted when the wheel's clock reads `cur` is
//! placed at:
//!
//! ```text
//! level = highest 6-bit digit where D and cur differ   (from D ^ cur)
//! slot  = (D >> 6·level) & 63                          (D's digit there)
//! ```
//!
//! Two invariants follow (digits of `cur` above `level` matched `D`'s at
//! insertion and stay matched, because the clock never passes a live
//! deadline):
//!
//! 1. **A level-0 slot holds exactly one deadline.** Digits above 0
//!    match `cur` and the slot fixes the low digit, so slot `s` ⇔
//!    deadline `(cur & !63) | s`. Firing a deadline is "detach one
//!    list", no per-entry deadline test.
//! 2. **No live slot sits below `cur`'s own digit at any level**, so a
//!    level's minimum slot is `occupancy.trailing_zeros()`, and when
//!    level 0 is occupied it holds the global minimum (higher-level
//!    entries differ from `cur` at a higher digit, which must be
//!    larger, putting them past the whole level-0 block).
//!
//! ## Cascading
//!
//! When level 0 drains, the wheel *cascades*: it advances `cur` to the
//! base covered by the lowest occupied slot of the lowest occupied
//! level (safe — every live deadline is ≥ that base) and re-inserts
//! that slot's entries, which now land at strictly lower levels. Each
//! entry cascades at most once per level over its lifetime, so inserts
//! and fires stay amortized O(levels) with no per-fire scan of pending
//! timers — the classic hierarchical-wheel bound. (An earlier lazy
//! variant kept entries in place and partitioned the candidate slot of
//! every level on each fire; that walk was O(pending) per fire and
//! showed up as the top profile entry in the events/sec harness.)

use std::task::Waker;

const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS; // 64
const LEVELS: usize = 11; // ceil(64 / 6): covers the full u64 clock
const NIL: u32 = u32::MAX;

struct Entry<T> {
    deadline: u64,
    seq: u64,
    payload: Option<T>,
    next: u32,
}

struct Level {
    /// Bit `s` set iff slot `s` has at least one entry.
    occ: u64,
    head: [u32; SLOTS],
    tail: [u32; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level {
            occ: 0,
            head: [NIL; SLOTS],
            tail: [NIL; SLOTS],
        }
    }
}

/// The wheel. See the module docs for the invariants.
///
/// Generic over the payload delivered at fire time — the executor
/// stores its wake targets, standalone uses (and the differential
/// fuzz) default to a plain [`Waker`].
pub struct TimerWheel<T = Waker> {
    cur: u64,
    levels: Vec<Level>,
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
    /// Exact earliest pending deadline (`None` when empty). Updated on
    /// insert, recomputed after each fire group.
    cached_min: Option<u64>,
    /// Scratch for fire batches, kept to avoid per-fire allocation.
    fire_buf: Vec<(u64, T)>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel at clock zero.
    pub fn new() -> Self {
        TimerWheel {
            cur: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
            cached_min: None,
            fire_buf: Vec::new(),
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest pending deadline, if any. O(1).
    #[inline]
    pub fn peek(&self) -> Option<u64> {
        self.cached_min
    }

    #[inline]
    fn placement(&self, deadline: u64) -> (usize, usize) {
        let x = deadline ^ self.cur;
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((deadline >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Appends arena entry `key` to its placement slot.
    #[inline]
    fn link(&mut self, key: u32) {
        let deadline = self.entries[key as usize].deadline;
        self.entries[key as usize].next = NIL;
        let (level, slot) = self.placement(deadline);
        let lv = &mut self.levels[level];
        let tail = lv.tail[slot];
        if tail == NIL {
            lv.head[slot] = key;
        } else {
            self.entries[tail as usize].next = key;
        }
        lv.tail[slot] = key;
        lv.occ |= 1 << slot;
    }

    /// Registers a timer. `deadline` must not lie in the past and `seq`
    /// must be unique and monotone across insertions (the executor's
    /// registration counter). O(1).
    pub fn insert(&mut self, deadline: u64, seq: u64, payload: T) {
        debug_assert!(deadline >= self.cur, "timer registered in the past");
        let entry = Entry {
            deadline,
            seq,
            payload: Some(payload),
            next: NIL,
        };
        let key = match self.free.pop() {
            Some(k) => {
                self.entries[k as usize] = entry;
                k
            }
            None => {
                let k = u32::try_from(self.entries.len()).expect("timer arena exhausted");
                assert_ne!(k, NIL, "timer arena exhausted");
                self.entries.push(entry);
                k
            }
        };
        self.link(key);
        self.len += 1;
        self.cached_min = Some(match self.cached_min {
            Some(m) => m.min(deadline),
            None => deadline,
        });
    }

    /// Cascades until level 0 is occupied (requires `len > 0`): advances
    /// `cur` to the base of the lowest occupied slot of the lowest
    /// occupied level and re-links its entries one level (or more) down.
    /// Amortized O(1): each entry descends monotonically.
    fn normalize(&mut self) {
        debug_assert!(self.len > 0);
        while self.levels[0].occ == 0 {
            let level = (1..LEVELS)
                .find(|&l| self.levels[l].occ != 0)
                .expect("non-empty wheel has an occupied level");
            let lv = &mut self.levels[level];
            let slot = lv.occ.trailing_zeros() as usize;
            let mut k = lv.head[slot];
            lv.head[slot] = NIL;
            lv.tail[slot] = NIL;
            lv.occ &= !(1 << slot);
            // Every live deadline is ≥ this slot's base (invariant 2),
            // so the clock may advance to it without passing anything.
            let span = LEVEL_BITS * (level as u32 + 1);
            // span can exceed 64 at the top level (11·6 = 66): the kept
            // prefix is then empty.
            let mask = if span >= 64 { u64::MAX } else { (1u64 << span) - 1 };
            let base = (self.cur & !mask) | ((slot as u64) << (span - LEVEL_BITS));
            debug_assert!(base > self.cur);
            self.cur = base;
            // Re-link against the new cur: each entry's highest digit
            // differing from cur is now strictly below `level`.
            while k != NIL {
                let next = self.entries[k as usize].next;
                self.link(k);
                k = next;
            }
        }
    }

    /// Fires the earliest deadline group if it is `≤ now`: advances the
    /// wheel clock to it, appends the group's payloads to `out` in
    /// registration (`seq`) order, and returns true. Returns false when
    /// nothing is due.
    pub fn fire_next(&mut self, now: u64, out: &mut Vec<T>) -> bool {
        let d = match self.cached_min {
            Some(d) if d <= now => d,
            _ => return false,
        };
        self.normalize();
        let slot = self.levels[0].occ.trailing_zeros() as usize;
        debug_assert_eq!((self.cur & !(SLOTS as u64 - 1)) | slot as u64, d);
        self.cur = d;
        // Invariant 1: this list is exactly the deadline-d group.
        let lv = &mut self.levels[0];
        let mut k = lv.head[slot];
        lv.head[slot] = NIL;
        let single = lv.tail[slot] == k;
        lv.tail[slot] = NIL;
        lv.occ &= !(1 << slot);
        if single {
            // Overwhelmingly common: one timer on the tick. Skip the
            // seq-sort round-trip through the scratch buffer.
            let e = &mut self.entries[k as usize];
            debug_assert_eq!(e.deadline, d);
            out.push(e.payload.take().expect("pending entry has a payload"));
            self.free.push(k);
            self.len -= 1;
            self.cached_min = (self.len > 0).then(|| self.exact_min());
            return true;
        }
        let mut batch = std::mem::take(&mut self.fire_buf);
        batch.clear();
        while k != NIL {
            let e = &mut self.entries[k as usize];
            debug_assert_eq!(e.deadline, d);
            let payload = e.payload.take().expect("pending entry has a payload");
            batch.push((e.seq, payload));
            let next = e.next;
            self.free.push(k);
            self.len -= 1;
            k = next;
        }
        debug_assert!(!batch.is_empty(), "cached_min pointed at an empty tick");
        batch.sort_unstable_by_key(|&(seq, _)| seq);
        out.extend(batch.drain(..).map(|(_, w)| w));
        self.fire_buf = batch;
        // NOT normalize() here: cascading would advance `cur` toward the
        // next pending deadline, which may lie past the executor's clock
        // — a later insert between the two would then be "in the past".
        // The exact min costs at most one slot-list walk instead.
        self.cached_min = (self.len > 0).then(|| self.exact_min());
        true
    }

    /// Exact earliest pending deadline of a non-empty wheel. Entries at
    /// a lower level always precede entries at a higher one (they match
    /// `cur` on the higher digit; the higher-level entry exceeds it), so
    /// only the lowest occupied level's lowest slot matters: O(1) when
    /// level 0 is occupied, one slot-list walk otherwise.
    fn exact_min(&self) -> u64 {
        debug_assert!(self.len > 0);
        for level in 0..LEVELS {
            let lv = &self.levels[level];
            if lv.occ == 0 {
                continue;
            }
            let slot = lv.occ.trailing_zeros() as usize;
            if level == 0 {
                // Invariant 1: the slot IS the deadline.
                return (self.cur & !(SLOTS as u64 - 1)) | slot as u64;
            }
            let mut min = u64::MAX;
            let mut k = lv.head[slot];
            while k != NIL {
                let e = &self.entries[k as usize];
                min = min.min(e.deadline);
                k = e.next;
            }
            return min;
        }
        unreachable!("non-empty wheel has an occupied level");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // simlint: allow(std-sync): test-only wake counter; the Wake trait requires Sync state
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    struct NoopWake;
    impl Wake for NoopWake {
        fn wake(self: Arc<Self>) {}
    }

    fn waker() -> Waker {
        Waker::from(Arc::new(NoopWake))
    }

    struct CountWake(AtomicUsize);
    impl Wake for CountWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(100, 0, waker());
        w.insert(50, 1, waker());
        w.insert(100, 2, waker());
        assert_eq!(w.peek(), Some(50));
        let mut out = Vec::new();
        assert!(w.fire_next(50, &mut out));
        assert_eq!(out.len(), 1);
        assert_eq!(w.peek(), Some(100));
        assert!(!w.fire_next(50, &mut out), "nothing due yet");
        out.clear();
        assert!(w.fire_next(100, &mut out));
        assert_eq!(out.len(), 2, "same-deadline group fires as one batch");
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn same_tick_keeps_every_waker() {
        // The regression a tick-keyed map would fail: two timers on one
        // deadline tick must both fire.
        let mut w = TimerWheel::new();
        let counter = Arc::new(CountWake(AtomicUsize::new(0)));
        w.insert(77, 0, Waker::from(Arc::clone(&counter)));
        w.insert(77, 1, Waker::from(Arc::clone(&counter)));
        let mut out = Vec::new();
        assert!(w.fire_next(77, &mut out));
        for wk in out.drain(..) {
            wk.wake();
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn spans_levels_and_large_jumps() {
        let mut w = TimerWheel::new();
        // Deadlines spread across many orders of magnitude.
        let deadlines = [1u64, 63, 64, 4095, 4096, 1 << 30, (1 << 40) + 17, u64::MAX / 2];
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(d, i as u64, waker());
        }
        let mut fired = Vec::new();
        let mut out = Vec::new();
        while let Some(d) = w.peek() {
            assert!(w.fire_next(u64::MAX, &mut out));
            fired.push(d);
        }
        let mut want = deadlines.to_vec();
        want.sort_unstable();
        assert_eq!(fired, want, "deadlines fire in ascending order");
        assert_eq!(out.len(), deadlines.len());
    }

    #[test]
    fn same_deadline_from_different_insert_times_merges() {
        // Insert D while cur=0 (lands high), fire an earlier timer to
        // advance cur near D, insert D again (lands low): both must fire
        // in one batch, seq-ordered.
        let mut w = TimerWheel::new();
        let d = 4096 + 7;
        w.insert(d, 0, waker());
        w.insert(4096, 1, waker());
        let mut out = Vec::new();
        assert!(w.fire_next(4096, &mut out)); // cur = 4096
        out.clear();
        w.insert(d, 2, waker()); // same deadline, different level now
        assert_eq!(w.peek(), Some(d));
        assert!(w.fire_next(d, &mut out));
        assert_eq!(out.len(), 2, "both copies of deadline {d} fired");
        assert!(w.is_empty());
    }

    #[test]
    fn arena_slots_recycle() {
        let mut w = TimerWheel::new();
        let mut out = Vec::new();
        for round in 0..100u64 {
            for i in 0..10u64 {
                w.insert(round * 1000 + i * 3, round * 10 + i, waker());
            }
            while w.fire_next(u64::MAX, &mut out) {}
        }
        assert!(w.is_empty());
        assert!(
            w.entries.len() <= 10,
            "arena should recycle, holds {}",
            w.entries.len()
        );
        assert_eq!(out.len(), 1000);
    }
}
