//! Minimal deterministic PRNG for internal use.
//!
//! Simulation components (hash-based sharding, randomized scan starting
//! points) need cheap, seedable randomness without pulling an external
//! crate into the substrate. [`SplitMix64`] passes standard statistical
//! tests and is trivially reproducible.

use std::cell::Cell;

/// A SplitMix64 pseudo-random generator.
#[derive(Debug)]
pub struct SplitMix64 {
    state: Cell<u64>,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: Cell::new(seed),
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&self) -> u64 {
        let mut z = self.state.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift method (Lemire); bias is negligible for the
        // bounds used in the simulator.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives an independent generator for `lane` from a base `seed`.
///
/// This is the one canonical stream-derivation formula: both inputs go
/// through [`mix64`] so that nearby seeds (0, 1, 2, …) and nearby lanes
/// do not produce correlated streams. Engine components (per-machine
/// retry jitter, per-NIC fault injection) and test helpers use this
/// instead of hand-rolled copies of the same xor-and-finalize pattern.
pub fn stream(seed: u64, lane: u64) -> SplitMix64 {
    SplitMix64::new(mix64(seed ^ mix64(lane)))
}

/// Mixes a 64-bit value into a well-distributed hash (SplitMix64 finalizer).
pub fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = SplitMix64::new(42);
        let b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = SplitMix64::new(1);
        let b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range_and_covering() {
        let r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.next_below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn stream_lanes_are_independent_and_reproducible() {
        let a = stream(42, 0);
        let b = stream(42, 0);
        let c = stream(42, 1);
        let d = stream(43, 0);
        let first = a.next_u64();
        assert_eq!(first, b.next_u64(), "same (seed, lane) reproduces");
        assert_ne!(first, c.next_u64(), "lanes diverge");
        assert_ne!(first, d.next_u64(), "seeds diverge");
    }

    #[test]
    fn mix64_spreads_sequential_inputs() {
        let h: Vec<u64> = (0..16).map(mix64).collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(h[i], h[j]);
            }
        }
    }
}
