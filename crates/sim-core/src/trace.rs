//! Virtual-time tracing: structured spans recorded into per-track ring
//! buffers, exportable as Chrome `trace_event` JSON.
//!
//! A [`Tracer`] is attached to a simulation and collects [`TraceEvent`]s —
//! named, categorized intervals of virtual time on a *track* (a core, the
//! NIC, the TLB-shootdown machinery, ...). Components record events either
//! directly ([`Tracer::record`], when the interval's end is already known,
//! e.g. an RDMA completion fixed at post time) or through an RAII
//! [`Span`] guard that stamps the end time when dropped.
//!
//! Tracing is **zero-overhead when disabled** by construction: components
//! hold an `Option<Rc<Tracer>>` and every recording site is gated on one
//! branch; with no tracer attached, no allocation, no clock read and no
//! formatting happens. Everything a tracer records is derived from virtual
//! time and deterministic program order, so same-seed runs produce
//! bit-identical exports (asserted in `tests/trace.rs`).
//!
//! The export format is the Chrome `trace_event` JSON array-of-objects
//! form (`"X"` complete events plus `"M"` thread-name metadata), viewable
//! in `chrome://tracing` or Perfetto. Timestamps are microseconds with
//! fixed three-decimal nanosecond precision, formatted from integers — no
//! float formatting, so exports are deterministic byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use std::rc::Rc;
//! use mage_sim::Simulation;
//! use mage_sim::trace::{self, Tracer};
//!
//! let sim = Simulation::new();
//! let tracer = Tracer::new(sim.handle());
//! let t = Rc::clone(&tracer);
//! let h = sim.handle();
//! sim.block_on(async move {
//!     let span = t.span(0, "fault", "major");
//!     h.sleep(1_000).await;
//!     drop(span);
//! });
//! let json = tracer.to_chrome_json();
//! trace::validate_json(&json).unwrap();
//! assert!(json.contains("\"name\":\"major\""));
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::time::Nanos;
use crate::SimHandle;

/// Track id for NIC transfer events (reads/writes overlap freely here).
pub const TRACK_NIC: u32 = 0xFFFF_0000;
/// Track id for TLB-shootdown rounds (in-flight windows may overlap).
pub const TRACK_TLB: u32 = 0xFFFF_0001;
/// Track id for in-flight eviction writeback windows.
pub const TRACK_WRITEBACK: u32 = 0xFFFF_0002;
/// Track id for transfer-retry recovery windows.
pub const TRACK_RETRY: u32 = 0xFFFF_0003;

/// One recorded interval of virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The track (Chrome `tid`) the event belongs to: a core index, or one
    /// of the `TRACK_*` constants.
    pub track: u32,
    /// Category (Chrome `cat`), e.g. `"fault"`, `"evict"`, `"nic"`.
    pub cat: &'static str,
    /// Event name (Chrome `name`), e.g. `"fp2.read"`.
    pub name: &'static str,
    /// Interval start in virtual ns.
    pub start_ns: Nanos,
    /// Interval duration in virtual ns.
    pub dur_ns: Nanos,
    /// Optional single argument rendered into Chrome `args`.
    pub arg: Option<(&'static str, u64)>,
}

struct Track {
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A virtual-time trace collector with bounded per-track ring buffers.
///
/// Oldest events are dropped first when a track's ring fills; the drop
/// count is kept so exports can disclose truncation.
pub struct Tracer {
    sim: SimHandle,
    cap_per_track: usize,
    tracks: RefCell<BTreeMap<u32, Track>>,
    names: RefCell<BTreeMap<u32, String>>,
}

impl Tracer {
    /// Creates a tracer with the default per-track capacity (65 536
    /// events).
    pub fn new(sim: SimHandle) -> Rc<Self> {
        Self::with_capacity(sim, 1 << 16)
    }

    /// Creates a tracer bounding each track's ring to `cap_per_track`
    /// events (oldest dropped first).
    pub fn with_capacity(sim: SimHandle, cap_per_track: usize) -> Rc<Self> {
        Rc::new(Tracer {
            sim,
            cap_per_track: cap_per_track.max(1),
            tracks: RefCell::new(BTreeMap::new()),
            names: RefCell::new(BTreeMap::new()),
        })
    }

    /// Assigns a human-readable name to a track (rendered as the Chrome
    /// thread name). Unnamed tracks get a default label.
    pub fn name_track(&self, track: u32, name: &str) {
        self.names.borrow_mut().insert(track, name.to_string());
    }

    /// Records a complete event whose interval is already known.
    pub fn record(
        &self,
        track: u32,
        cat: &'static str,
        name: &'static str,
        start_ns: Nanos,
        dur_ns: Nanos,
        arg: Option<(&'static str, u64)>,
    ) {
        let mut tracks = self.tracks.borrow_mut();
        let t = tracks.entry(track).or_insert_with(|| Track {
            ring: VecDeque::new(),
            dropped: 0,
        });
        if t.ring.len() == self.cap_per_track {
            t.ring.pop_front();
            t.dropped += 1;
        }
        t.ring.push_back(TraceEvent {
            track,
            cat,
            name,
            start_ns,
            dur_ns,
            arg,
        });
    }

    /// Opens a span starting now; the interval is recorded when the
    /// returned guard is dropped (or [`Span::end`]ed).
    pub fn span(self: &Rc<Self>, track: u32, cat: &'static str, name: &'static str) -> Span {
        Span {
            tracer: Rc::clone(self),
            track,
            cat,
            name,
            start_ns: self.sim.now().as_nanos(),
            arg: std::cell::Cell::new(None),
        }
    }

    /// Virtual now, in ns (for callers recording manual intervals).
    pub fn now_ns(&self) -> Nanos {
        self.sim.now().as_nanos()
    }

    /// Total events currently buffered across all tracks.
    pub fn len(&self) -> usize {
        self.tracks.borrow().values().map(|t| t.ring.len()).sum()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dropped to ring-buffer bounds, across all tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.borrow().values().map(|t| t.dropped).sum()
    }

    /// All buffered events, in (track, record-order) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.tracks
            .borrow()
            .values()
            .flat_map(|t| t.ring.iter().copied())
            .collect()
    }

    fn track_label(&self, track: u32) -> String {
        if let Some(n) = self.names.borrow().get(&track) {
            return n.clone();
        }
        match track {
            TRACK_NIC => "nic".to_string(),
            TRACK_TLB => "tlb".to_string(),
            TRACK_WRITEBACK => "writeback".to_string(),
            TRACK_RETRY => "retry".to_string(),
            t => format!("core {t}"),
        }
    }

    /// Serializes the buffered events as Chrome `trace_event` JSON.
    ///
    /// Deterministic byte-for-byte for a deterministic simulation: tracks
    /// are emitted in ascending id order, events in record order, and
    /// timestamps use integer fixed-point microsecond formatting.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let tracks = self.tracks.borrow();
        for (&track, t) in tracks.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\",\"dropped_events\":{}}}}}",
                escape_json(&self.track_label(track)),
                t.dropped
            ));
            for e in &t.ring {
                out.push(',');
                out.push_str(&format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{track},\"cat\":\"{}\",\"name\":\"{}\",\
                     \"ts\":{},\"dur\":{}",
                    escape_json(e.cat),
                    escape_json(e.name),
                    fmt_us(e.start_ns),
                    fmt_us(e.dur_ns),
                ));
                if let Some((k, v)) = e.arg {
                    out.push_str(&format!(",\"args\":{{\"{}\":{v}}}", escape_json(k)));
                }
                out.push('}');
            }
        }
        out.push_str("]}");
        out
    }
}

/// Formats `ns` as microseconds with exactly three decimals, from
/// integers only (no float round-trip, so deterministic).
fn fmt_us(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An open interval on a tracer; records itself when dropped. Holding the
/// guard across `await`s extends the span over the awaited virtual time,
/// so nesting emerges naturally from scoping.
pub struct Span {
    tracer: Rc<Tracer>,
    track: u32,
    cat: &'static str,
    name: &'static str,
    start_ns: Nanos,
    arg: std::cell::Cell<Option<(&'static str, u64)>>,
}

impl Span {
    /// Attaches (or replaces) the span's argument before it closes.
    pub fn set_arg(&self, key: &'static str, value: u64) {
        self.arg.set(Some((key, value)));
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = self.tracer.sim.now().as_nanos();
        self.tracer.record(
            self.track,
            self.cat,
            self.name,
            self.start_ns,
            end.saturating_sub(self.start_ns),
            self.arg.get(),
        );
    }
}

/// Opens a span on an optionally-attached tracer: `None` (tracing
/// disabled) costs exactly one branch and nothing at drop.
pub fn span(
    tracer: Option<&Rc<Tracer>>,
    track: u32,
    cat: &'static str,
    name: &'static str,
) -> Option<Span> {
    tracer.map(|t| t.span(track, cat, name))
}

/// Validates that `s` is a single well-formed JSON value (RFC 8259
/// grammar; no external dependencies). Returns the byte offset of the
/// first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("expected a value at byte {pos}")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1F => return Err(format!("raw control char at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[test]
    fn spans_record_virtual_intervals() {
        let sim = Simulation::new();
        let tracer = Tracer::new(sim.handle());
        let t = Rc::clone(&tracer);
        let h = sim.handle();
        sim.block_on(async move {
            let outer = t.span(3, "fault", "major");
            h.sleep(500).await;
            {
                let inner = t.span(3, "fault", "fp2.read");
                inner.set_arg("bytes", 4096);
                h.sleep(1_000).await;
            }
            h.sleep(200).await;
            drop(outer);
        });
        let ev = tracer.events();
        assert_eq!(ev.len(), 2);
        // Inner closed first, so it is recorded first.
        assert_eq!(ev[0].name, "fp2.read");
        assert_eq!(ev[0].start_ns, 500);
        assert_eq!(ev[0].dur_ns, 1_000);
        assert_eq!(ev[0].arg, Some(("bytes", 4096)));
        assert_eq!(ev[1].name, "major");
        assert_eq!(ev[1].start_ns, 0);
        assert_eq!(ev[1].dur_ns, 1_700);
    }

    #[test]
    fn ring_drops_oldest_deterministically() {
        let sim = Simulation::new();
        let tracer = Tracer::with_capacity(sim.handle(), 4);
        for i in 0..10u64 {
            tracer.record(0, "c", "e", i, 1, None);
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        let ev = tracer.events();
        assert_eq!(ev[0].start_ns, 6, "oldest events dropped first");
        assert_eq!(ev[3].start_ns, 9);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let sim = Simulation::new();
        let tracer = Tracer::new(sim.handle());
        tracer.record(1, "fault", "major", 0, 5_432, Some(("vpn", 77)));
        tracer.record(TRACK_NIC, "nic", "read", 100, 4_071, Some(("bytes", 4096)));
        tracer.name_track(1, "core 1");
        let json = tracer.to_chrome_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":5.432"));
        assert!(json.contains("\"name\":\"nic\""));
    }

    #[test]
    fn disabled_tracer_is_a_branch() {
        let none: Option<&Rc<Tracer>> = None;
        assert!(span(none, 0, "c", "n").is_none());
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e4,true,false,null,\"s\\\"t\"]}").unwrap();
        validate_json("  [ ]  ").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1} trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_ok(), "leading zeros tolerated");
        assert!(validate_json("{1:2}").is_err(), "keys must be strings");
    }

    #[test]
    fn export_is_reproducible() {
        let build = || {
            let sim = Simulation::new();
            let tracer = Tracer::new(sim.handle());
            for i in 0..100u64 {
                tracer.record((i % 4) as u32, "cat", "name", i * 10, 7, Some(("i", i)));
            }
            tracer.to_chrome_json()
        };
        assert_eq!(build(), build());
    }
}
