//! `simsan` — a deterministic happens-before data-race detector for the
//! simulated machine.
//!
//! The executor is single-threaded, so nothing here is a host-level data
//! race: what `simsan` detects is a race *in the simulated machine's
//! synchronization protocol*. Two accesses to the same shadow-tracked
//! word (a PTE, a per-CPU free-list slot, …) race when neither is ordered
//! before the other by the happens-before relation built from the
//! sim-core primitives — `SimMutex` lock/unlock, `Semaphore`
//! acquire/release, `WaitQueue`/`Event` wake edges, channel send/recv,
//! executor spawn/join. A protocol bug that would corrupt state on real
//! hardware (e.g. publishing a PTE after waking its waiters) shows up
//! here as an unordered pair even though the single-threaded simulation
//! happens to serialize it.
//!
//! The algorithm is FastTrack-style: each logical task carries a vector
//! clock; each synchronization object carries a clock joined on release
//! and acquired on acquire; each shadow word stores its last write as an
//! *epoch* (`task@clock`, the fast path) and its reads as an epoch that
//! demotes to a full per-task map only when reads are genuinely
//! concurrent. Everything is keyed by *logical* task ids (monotone,
//! never reused — executor slots are recycled) and stamped with virtual
//! time, so reports are deterministic: the same seed produces the same
//! race at the same virtual timestamp with the same two sites.
//!
//! Like the tracer, the detector is **zero-overhead when disabled**:
//! components hold an `Option<Rc<RaceDetector>>` (or a [`ShadowRegion`]
//! wrapping one) and every hook is gated on a single branch. The
//! detector never awaits, never advances virtual time and never draws
//! randomness, so an *enabled* run still executes the exact same
//! schedule — asserted by `tests/simsan.rs`.
//!
//! Three access classes exist:
//!
//! - [`ShadowRegion::on_read`] / [`ShadowRegion::on_write`] — plain
//!   accesses that must be ordered by happens-before edges;
//! - [`ShadowRegion::on_atomic`] — racy-by-design accesses (PTE
//!   accessed/dirty bit updates, lock-free PTE reads à la `READ_ONCE`,
//!   TLB fills, stats bumps) that are documented but never participate
//!   in race pairs;
//! - [`ShadowRegion::lock`] / [`ShadowRegion::unlock`] /
//!   [`ShadowRegion::publish`] — per-index acquire/release edges for
//!   word-granular protocols like the PTE lock bit.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::Location;
use std::rc::Rc;

use crate::time::Nanos;
use crate::SimHandle;

/// Logical task id: assigned monotonically at spawn, never reused
/// (executor slot ids are recycled; these are not). Id 0 is the main
/// (block-on) context.
pub type Lid = u32;

/// The main context's logical id.
pub const MAIN_LID: Lid = 0;

/// A vector clock over logical task ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// Component for task `t` (0 if never recorded).
    pub fn get(&self, t: Lid) -> u32 {
        self.0.get(t as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, t: Lid, v: u32) {
        let i = t as usize;
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    fn bump(&mut self, t: Lid) {
        let v = self.get(t) + 1;
        self.set(t, v);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(other.0.iter()) {
            if *a < b {
                *a = b;
            }
        }
    }

    /// Does this clock cover epoch `c` of task `t` (i.e. is that access
    /// ordered before the clock's owner)?
    pub fn covers(&self, t: Lid, c: u32) -> bool {
        c <= self.get(t)
    }

    /// Compact rendering of the non-zero components: `{0:3 2:7}`.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (t, &c) in self.0.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(' ');
            }
            first = false;
            out.push_str(&format!("{t}:{c}"));
        }
        out.push('}');
        out
    }
}

/// Whether a recorded access was a read or a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A plain shadow-checked read.
    Read,
    /// A plain shadow-checked write.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One recorded shadow access: who, when (virtual time and epoch),
/// where (source site), and the accessor's full clock at that moment.
#[derive(Clone, Debug)]
pub struct AccessInfo {
    /// Read or write.
    pub kind: AccessKind,
    /// Logical task id of the accessor.
    pub task: Lid,
    /// The accessor's epoch (its own clock component) at the access.
    pub epoch: u32,
    /// The accessor's full vector clock at the access.
    pub clock: VClock,
    /// Source site (`file:line`), captured via `#[track_caller]`.
    pub site: &'static Location<'static>,
    /// Virtual timestamp of the access, ns.
    pub time: Nanos,
}

impl AccessInfo {
    fn describe(&self) -> String {
        format!(
            "{} by task {} at {}:{} (t={} ns, epoch {}@{}, clock {})",
            self.kind,
            self.task,
            self.site.file(),
            self.site.line(),
            self.time,
            self.task,
            self.epoch,
            self.clock.render(),
        )
    }
}

/// A detected data race: two unordered accesses (at least one a write)
/// to the same index of the same shadow region.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Region name (e.g. `"pte"`).
    pub region: &'static str,
    /// Index within the region (e.g. the vpn).
    pub index: u64,
    /// The earlier access (recorded first in program order).
    pub prior: AccessInfo,
    /// The later access (the one that detected the race).
    pub current: AccessInfo,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simsan: data race on {}[{}]\n  {}\n  is unordered with earlier\n  {}",
            self.region,
            self.index,
            self.current.describe(),
            self.prior.describe(),
        )
    }
}

/// What the detector does when it finds a race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceMode {
    /// Panic with the rendered report (default; fails the enclosing test).
    Panic,
    /// Record the report for later retrieval via
    /// [`RaceDetector::take_reports`] (used by mage-check's oracle).
    Collect,
}

#[derive(Clone, Debug)]
enum ReadState {
    None,
    /// FastTrack fast path: all reads so far are totally ordered; only
    /// the latest matters.
    Epoch(AccessInfo),
    /// Demoted: genuinely concurrent readers, one entry per task.
    Many(BTreeMap<Lid, AccessInfo>),
}

#[derive(Debug)]
struct ShadowWord {
    write: Option<AccessInfo>,
    reads: ReadState,
    /// Lazily-allocated sync id for per-index lock/publish edges.
    lock: u32,
    /// A race was already reported here; suppress duplicates.
    poisoned: bool,
}

impl ShadowWord {
    fn new() -> Self {
        ShadowWord {
            write: None,
            reads: ReadState::None,
            lock: 0,
            poisoned: false,
        }
    }
}

struct TaskState {
    clock: VClock,
    /// World version last acquired (see `world_publish`).
    world_seen: u64,
}

struct Inner {
    /// Per-logical-task state, indexed by `Lid`.
    tasks: Vec<TaskState>,
    /// Executor slot key (raw, reused) → live logical task id.
    slots: BTreeMap<u64, Lid>,
    /// Currently executing logical task (MAIN_LID outside task polls).
    cur: Lid,
    /// Per-sync-object clocks; id 0 is reserved (unallocated sentinel).
    syncs: Vec<VClock>,
    /// Join of every finished task's final clock.
    finished: VClock,
    /// Clock published by the main context at each run entry; acquired
    /// by tasks (version-gated) so work done by main between runs
    /// happens-before everything tasks do afterwards.
    world: VClock,
    world_version: u64,
    /// Registered shadow region names.
    regions: Vec<&'static str>,
    /// Shadow state per (region, index).
    words: BTreeMap<(u32, u64), ShadowWord>,
    mode: RaceMode,
    reports: Vec<RaceReport>,
    races: u64,
    atomic_ops: u64,
    dedup: BTreeSet<(u32, u64)>,
}

/// The happens-before race detector. One per [`crate::Simulation`],
/// enabled via [`crate::Simulation::enable_race_detection`] (or the
/// `MAGE_SIMSAN` environment variable); `None` everywhere when disabled.
pub struct RaceDetector {
    inner: RefCell<Inner>,
    /// Virtual now, mirrored in by the executor (the detector must not
    /// hold a `SimHandle`: the executor owns it).
    now: Cell<Nanos>,
}

impl RaceDetector {
    pub(crate) fn new() -> Rc<Self> {
        let main = TaskState {
            clock: {
                let mut c = VClock::default();
                c.bump(MAIN_LID);
                c
            },
            world_seen: 0,
        };
        Rc::new(RaceDetector {
            inner: RefCell::new(Inner {
                tasks: vec![main],
                slots: BTreeMap::new(),
                cur: MAIN_LID,
                syncs: vec![VClock::default()],
                finished: VClock::default(),
                world: VClock::default(),
                world_version: 0,
                regions: Vec::new(),
                words: BTreeMap::new(),
                mode: RaceMode::Panic,
                reports: Vec::new(),
                races: 0,
                atomic_ops: 0,
                dedup: BTreeSet::new(),
            }),
            now: Cell::new(0),
        })
    }

    /// Switches between panicking on the first race and collecting
    /// reports (mage-check's oracle mode).
    pub fn set_mode(&self, mode: RaceMode) {
        self.inner.borrow_mut().mode = mode;
    }

    /// Races detected so far (including panicked-over ones, in Collect
    /// mode the length of the pending report list plus taken ones).
    pub fn race_count(&self) -> u64 {
        self.inner.borrow().races
    }

    /// Atomic-class (racy-by-design) accesses observed; never races.
    pub fn atomic_ops(&self) -> u64 {
        self.inner.borrow().atomic_ops
    }

    /// Drains the collected reports (Collect mode).
    pub fn take_reports(&self) -> Vec<RaceReport> {
        std::mem::take(&mut self.inner.borrow_mut().reports)
    }

    /// Logical id of the task currently executing (for tests).
    pub fn current_task(&self) -> Lid {
        self.inner.borrow().cur
    }

    // ---- executor hooks (crate-internal) -------------------------------

    pub(crate) fn set_now(&self, now: Nanos) {
        self.now.set(now);
    }

    /// Parent-side half of a spawn: allocates the fork sync, releases the
    /// spawner's clock into it, and returns (fork_sync, join_sync).
    pub(crate) fn fork(&self) -> (u32, u32) {
        let fork = self.alloc_sync();
        let join = self.alloc_sync();
        self.release(fork);
        (fork, join)
    }

    /// Child-side half: binds the executor slot `raw` to a fresh logical
    /// task whose clock acquires the fork sync.
    pub(crate) fn task_begin(&self, raw: u64, fork_sync: u32) {
        let mut g = self.inner.borrow_mut();
        let lid = g.tasks.len() as Lid;
        let mut clock = g.syncs[fork_sync as usize].clone();
        clock.bump(lid);
        g.tasks.push(TaskState {
            clock,
            world_seen: 0,
        });
        g.slots.insert(raw, lid);
    }

    /// The task bound to slot `raw` finished: release its final clock
    /// into its join sync and the global finished clock, and free the
    /// slot binding (the executor reuses raw ids).
    pub(crate) fn task_end(&self, raw: u64, join_sync: u32) {
        let mut g = self.inner.borrow_mut();
        let Some(lid) = g.slots.remove(&raw) else {
            return;
        };
        g.tasks[lid as usize].clock.bump(lid);
        let clock = g.tasks[lid as usize].clock.clone();
        g.syncs[join_sync as usize].join(&clock);
        g.finished.join(&clock);
    }

    /// The executor is about to poll the task in slot `raw`.
    pub(crate) fn enter(&self, raw: u64) {
        let mut g = self.inner.borrow_mut();
        let Some(&lid) = g.slots.get(&raw) else {
            return;
        };
        g.cur = lid;
        let version = g.world_version;
        if g.tasks[lid as usize].world_seen != version {
            let world = g.world.clone();
            let t = &mut g.tasks[lid as usize];
            t.clock.join(&world);
            t.world_seen = version;
        }
    }

    /// The poll returned; control is back with the run loop / main.
    pub(crate) fn exit(&self) {
        self.inner.borrow_mut().cur = MAIN_LID;
    }

    /// Run-loop entry: everything main did so far happens-before every
    /// task step from here on.
    pub(crate) fn world_publish(&self) {
        let mut g = self.inner.borrow_mut();
        let main = g.tasks[MAIN_LID as usize].clock.clone();
        g.world.join(&main);
        g.world_version += 1;
        g.tasks[MAIN_LID as usize].clock.bump(MAIN_LID);
    }

    /// Run-loop exit: every task step executed so far happens-before
    /// whatever main does next (the run loop returned; tasks are parked).
    pub(crate) fn world_join(&self) {
        let mut g = self.inner.borrow_mut();
        let mut acc = g.finished.clone();
        let live: Vec<Lid> = g.slots.values().copied().collect();
        for lid in live {
            acc.join(&g.tasks[lid as usize].clock.clone());
        }
        g.tasks[MAIN_LID as usize].clock.join(&acc);
    }

    // ---- synchronization edges (crate-internal) ------------------------

    /// Allocates a sync object (mutex, semaphore, queue, channel, …).
    pub(crate) fn alloc_sync(&self) -> u32 {
        let mut g = self.inner.borrow_mut();
        g.syncs.push(VClock::default());
        (g.syncs.len() - 1) as u32
    }

    /// Acquire edge: the current task's clock joins the sync's clock.
    ///
    /// Ids outside this detector's table (a primitive whose lazy id was
    /// allocated by an earlier simulation's detector) are ignored.
    pub(crate) fn acquire(&self, sync: u32) {
        if sync == 0 {
            return;
        }
        let mut g = self.inner.borrow_mut();
        let cur = g.cur;
        let Some(clock) = g.syncs.get(sync as usize).cloned() else {
            return;
        };
        g.tasks[cur as usize].clock.join(&clock);
    }

    /// Release edge: the sync's clock joins the current task's clock,
    /// and the task steps its epoch.
    pub(crate) fn release(&self, sync: u32) {
        if sync == 0 {
            return;
        }
        let mut g = self.inner.borrow_mut();
        let cur = g.cur;
        if g.syncs.get(sync as usize).is_none() {
            return;
        }
        let clock = g.tasks[cur as usize].clock.clone();
        g.syncs[sync as usize].join(&clock);
        g.tasks[cur as usize].clock.bump(cur);
    }

    // ---- shadow state --------------------------------------------------

    fn register_region(&self, name: &'static str) -> u32 {
        let mut g = self.inner.borrow_mut();
        g.regions.push(name);
        (g.regions.len() - 1) as u32
    }

    fn on_access(
        &self,
        region: u32,
        idx: u64,
        kind: AccessKind,
        site: &'static Location<'static>,
    ) {
        let now = self.now.get();
        let mut g = self.inner.borrow_mut();
        let cur = g.cur;
        let clock = g.tasks[cur as usize].clock.clone();
        let access = AccessInfo {
            kind,
            task: cur,
            epoch: clock.get(cur),
            clock,
            site,
            time: now,
        };
        let word = g
            .words
            .entry((region, idx))
            .or_insert_with(ShadowWord::new);
        if word.poisoned {
            return;
        }
        let mut conflict: Option<AccessInfo> = None;
        if let Some(w) = &word.write {
            if !access.clock.covers(w.task, w.epoch) {
                conflict = Some(w.clone());
            }
        }
        if conflict.is_none() && kind == AccessKind::Write {
            match &word.reads {
                ReadState::None => {}
                ReadState::Epoch(r) => {
                    if !access.clock.covers(r.task, r.epoch) {
                        conflict = Some(r.clone());
                    }
                }
                ReadState::Many(map) => {
                    for r in map.values() {
                        if !access.clock.covers(r.task, r.epoch) {
                            conflict = Some(r.clone());
                            break;
                        }
                    }
                }
            }
        }
        match kind {
            AccessKind::Write => {
                word.write = Some(access.clone());
                word.reads = ReadState::None;
            }
            AccessKind::Read => match &mut word.reads {
                ReadState::None => word.reads = ReadState::Epoch(access.clone()),
                ReadState::Epoch(r) => {
                    if r.task == access.task || access.clock.covers(r.task, r.epoch) {
                        word.reads = ReadState::Epoch(access.clone());
                    } else {
                        let mut map = BTreeMap::new();
                        map.insert(r.task, r.clone());
                        map.insert(access.task, access.clone());
                        word.reads = ReadState::Many(map);
                    }
                }
                ReadState::Many(map) => {
                    map.insert(access.task, access.clone());
                }
            },
        }
        let Some(prior) = conflict else {
            return;
        };
        word.poisoned = true;
        g.races += 1;
        g.dedup.insert((region, idx));
        let report = RaceReport {
            region: g.regions[region as usize],
            index: idx,
            prior,
            current: access,
        };
        match g.mode {
            RaceMode::Collect => g.reports.push(report),
            RaceMode::Panic => {
                drop(g);
                panic!("{report}");
            }
        }
    }

    fn on_atomic(&self, _region: u32, _idx: u64) {
        self.inner.borrow_mut().atomic_ops += 1;
    }

    fn word_lock_sync(&self, region: u32, idx: u64) -> u32 {
        let mut g = self.inner.borrow_mut();
        let next = (g.syncs.len()) as u32;
        let word = g
            .words
            .entry((region, idx))
            .or_insert_with(ShadowWord::new);
        if word.lock == 0 {
            word.lock = next;
            g.syncs.push(VClock::default());
        }
        g.words[&(region, idx)].lock
    }
}

// ---- thread-local current detector -------------------------------------
//
// Handle-less primitives (WaitQueue, Event, channels) cannot reach the
// detector through a SimHandle; the executor publishes it here for the
// duration of each run loop. `None` outside an enabled simulation's run,
// so a disabled simulation is never confused with a previously-enabled
// one on the same host thread.

thread_local! {
    static CURRENT: RefCell<Option<Rc<RaceDetector>>> = const { RefCell::new(None) };
}

/// Runs `f` with the detector currently published by the executor (if
/// any). Used by the handle-less primitives in `sync.rs`/`sync_ext.rs`.
pub(crate) fn with_current<R>(f: impl FnOnce(&Rc<RaceDetector>) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(f))
}

/// Takes a happens-before edge through the sync object whose id is
/// lazily stored in `slot` (0 = not yet allocated). No-op when no
/// detector is active on this thread, so primitives pay one thread-local
/// read per edge in disabled runs. `f` receives the detector and the
/// (freshly allocated if needed) sync id and performs the actual
/// `acquire`/`release`.
pub(crate) fn edge(slot: &Cell<u32>, f: impl FnOnce(&RaceDetector, u32)) {
    with_current(|det| {
        let mut id = slot.get();
        if id == 0 {
            id = det.alloc_sync();
            slot.set(id);
        }
        f(det, id);
    });
}

/// RAII guard installing `det` as the thread's current detector for the
/// duration of a run loop.
pub(crate) struct CurrentGuard {
    prev: Option<Rc<RaceDetector>>,
}

impl CurrentGuard {
    pub(crate) fn install(det: Option<Rc<RaceDetector>>) -> Self {
        let prev = CURRENT.with(|c| c.replace(det));
        CurrentGuard { prev }
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

// ---- public shadow-state API --------------------------------------------

/// A named family of shadow-tracked words (e.g. all PTEs, indexed by
/// vpn). Cheap to clone conceptually — holds only the detector `Rc` and
/// a region id — and inert (one branch per call) when the simulation's
/// detector is disabled.
pub struct ShadowRegion {
    det: Option<Rc<RaceDetector>>,
    region: u32,
}

impl ShadowRegion {
    /// Creates a region bound to `sim`'s detector (inert if detection is
    /// not enabled on that simulation).
    pub fn new(sim: &SimHandle, name: &'static str) -> Self {
        match sim.race_detector() {
            Some(det) => {
                let region = det.register_region(name);
                ShadowRegion {
                    det: Some(det),
                    region,
                }
            }
            None => ShadowRegion {
                det: None,
                region: 0,
            },
        }
    }

    /// A permanently-inert region (for contexts with no simulation).
    pub fn disabled() -> Self {
        ShadowRegion {
            det: None,
            region: 0,
        }
    }

    /// Whether the detector behind this region is enabled.
    pub fn enabled(&self) -> bool {
        self.det.is_some()
    }

    /// Records a plain read of `idx` and checks it against the last
    /// unordered write.
    #[track_caller]
    pub fn on_read(&self, idx: u64) {
        if let Some(det) = &self.det {
            det.on_access(self.region, idx, AccessKind::Read, Location::caller());
        }
    }

    /// Records a plain write of `idx` and checks it against unordered
    /// prior reads and writes.
    #[track_caller]
    pub fn on_write(&self, idx: u64) {
        if let Some(det) = &self.det {
            det.on_access(self.region, idx, AccessKind::Write, Location::caller());
        }
    }

    /// Documents a racy-by-design access (accessed/dirty bits, lock-free
    /// `READ_ONCE`-style reads, stats bumps). Never races.
    #[track_caller]
    pub fn on_atomic(&self, idx: u64) {
        if let Some(det) = &self.det {
            det.on_atomic(self.region, idx);
        }
    }

    /// Acquire edge on `idx`'s word-lock (e.g. winning the PTE lock bit):
    /// the caller's clock joins everything released at this index.
    #[track_caller]
    pub fn lock(&self, idx: u64) {
        if let Some(det) = &self.det {
            let sync = det.word_lock_sync(self.region, idx);
            det.acquire(sync);
        }
    }

    /// Release edge on `idx`'s word-lock (clearing the PTE lock bit,
    /// directly or by installing an unlocked value).
    #[track_caller]
    pub fn unlock(&self, idx: u64) {
        if let Some(det) = &self.det {
            let sync = det.word_lock_sync(self.region, idx);
            det.release(sync);
        }
    }

    /// Release edge *without* conceptually unlocking: the holder makes
    /// its writes so far visible to whoever takes the word-lock over
    /// (the refault-cancel handoff through the `evicting` map).
    #[track_caller]
    pub fn publish(&self, idx: u64) {
        if let Some(det) = &self.det {
            let sync = det.word_lock_sync(self.region, idx);
            det.release(sync);
        }
    }
}

/// A single value with shadow-checked access: reads go through
/// [`ShadowRegion::on_read`], writes through [`ShadowRegion::on_write`].
/// The interior `RefCell` provides the storage; the shadow provides the
/// race check.
pub struct ShadowCell<T> {
    value: RefCell<T>,
    shadow: ShadowRegion,
}

impl<T> ShadowCell<T> {
    /// Creates a shadow-checked cell bound to `sim`'s detector.
    pub fn new(sim: &SimHandle, name: &'static str, value: T) -> Self {
        ShadowCell {
            value: RefCell::new(value),
            shadow: ShadowRegion::new(sim, name),
        }
    }

    /// Shadow-checked read access.
    #[track_caller]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.shadow.on_read(0);
        f(&self.value.borrow())
    }

    /// Shadow-checked write access.
    #[track_caller]
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.shadow.on_write(0);
        f(&mut self.value.borrow_mut())
    }
}

/// Sugar over the [`ShadowRegion`] access methods, keeping the access
/// class visible at the call site:
///
/// ```ignore
/// racecheck!(self.shadow_pte, write vpn);   // plain write
/// racecheck!(self.shadow_pte, read vpn);    // plain read
/// racecheck!(self.shadow_tlb, atomic key);  // racy-by-design
/// ```
#[macro_export]
macro_rules! racecheck {
    ($region:expr, read $idx:expr) => {
        $region.on_read($idx as u64)
    };
    ($region:expr, write $idx:expr) => {
        $region.on_write($idx as u64)
    };
    ($region:expr, atomic $idx:expr) => {
        $region.on_atomic($idx as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> Rc<RaceDetector> {
        let d = RaceDetector::new();
        d.set_mode(RaceMode::Collect);
        d
    }

    /// Simulates two tasks via the executor hooks.
    fn two_tasks(d: &Rc<RaceDetector>) -> (u64, u64) {
        let (f1, _) = d.fork();
        d.task_begin(1, f1);
        let (f2, _) = d.fork();
        d.task_begin(2, f2);
        (1, 2)
    }

    #[test]
    fn unordered_write_write_races() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("word");
            0u32
        };
        d.enter(a);
        d.on_access(r, 7, AccessKind::Write, Location::caller());
        d.exit();
        d.enter(b);
        d.on_access(r, 7, AccessKind::Write, Location::caller());
        d.exit();
        let reports = d.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].index, 7);
        assert_eq!(reports[0].prior.task, 1);
        assert_eq!(reports[0].current.task, 2);
    }

    #[test]
    fn release_acquire_orders_accesses() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("word");
            0u32
        };
        let m = d.alloc_sync();
        d.enter(a);
        d.on_access(r, 7, AccessKind::Write, Location::caller());
        d.release(m);
        d.exit();
        d.enter(b);
        d.acquire(m);
        d.on_access(r, 7, AccessKind::Write, Location::caller());
        d.exit();
        assert!(d.take_reports().is_empty());
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn concurrent_reads_do_not_race_but_a_write_against_them_does() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("word");
            0u32
        };
        d.enter(a);
        d.on_access(r, 1, AccessKind::Read, Location::caller());
        d.exit();
        d.enter(b);
        d.on_access(r, 1, AccessKind::Read, Location::caller());
        d.exit();
        assert!(d.take_reports().is_empty(), "read-read never races");
        // A third task writes without synchronizing with either reader.
        let (f3, _) = d.fork();
        d.task_begin(3, f3);
        d.enter(3);
        d.on_access(r, 1, AccessKind::Write, Location::caller());
        d.exit();
        let reports = d.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].current.kind, AccessKind::Write);
        assert_eq!(reports[0].prior.kind, AccessKind::Read);
    }

    #[test]
    fn fork_and_join_edges_order_parent_and_child() {
        let d = det();
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("word");
            0u32
        };
        // Parent (main) writes, then forks: the child inherits the edge.
        d.on_access(r, 0, AccessKind::Write, Location::caller());
        let (fork, join) = d.fork();
        d.task_begin(9, fork);
        d.enter(9);
        d.on_access(r, 0, AccessKind::Write, Location::caller());
        d.exit();
        d.task_end(9, join);
        // Parent joins the child, then writes again: still ordered.
        d.acquire(join);
        d.on_access(r, 0, AccessKind::Write, Location::caller());
        assert!(d.take_reports().is_empty());
    }

    #[test]
    fn world_edges_order_main_setup_against_earlier_spawned_tasks() {
        let d = det();
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("word");
            0u32
        };
        // Task spawned first; main then writes (populate) and publishes
        // the world at run entry, exactly the launch()-then-populate()
        // pattern.
        let (fork, _join) = d.fork();
        d.task_begin(4, fork);
        d.on_access(r, 3, AccessKind::Write, Location::caller());
        d.world_publish();
        d.enter(4);
        d.on_access(r, 3, AccessKind::Write, Location::caller());
        d.exit();
        // Run exits; main reads what the task wrote.
        d.world_join();
        d.on_access(r, 3, AccessKind::Read, Location::caller());
        assert!(d.take_reports().is_empty());
    }

    #[test]
    fn word_lock_edges_order_lock_bit_protocols() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("pte");
            0u32
        };
        d.enter(a);
        {
            let s = d.word_lock_sync(r, 5);
            d.acquire(s); // lock
            d.on_access(r, 5, AccessKind::Write, Location::caller());
            d.release(s); // unlock
        }
        d.exit();
        d.enter(b);
        {
            let s = d.word_lock_sync(r, 5);
            d.acquire(s);
            d.on_access(r, 5, AccessKind::Write, Location::caller());
            d.release(s);
        }
        d.exit();
        assert!(d.take_reports().is_empty());
    }

    #[test]
    fn reports_render_both_sites_and_clocks() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("pte");
            0u32
        };
        d.enter(a);
        d.on_access(r, 42, AccessKind::Write, Location::caller());
        d.exit();
        d.enter(b);
        d.on_access(r, 42, AccessKind::Read, Location::caller());
        d.exit();
        let reports = d.take_reports();
        let text = reports[0].to_string();
        assert!(text.contains("data race on pte[42]"), "{text}");
        assert!(text.contains("race.rs:"), "both sites carry file:line");
        assert!(text.contains("clock {"), "clocks rendered");
        assert!(text.contains("read by task 2"), "{text}");
        assert!(text.contains("write by task 1"), "{text}");
    }

    #[test]
    fn duplicate_races_on_one_word_are_reported_once() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("word");
            0u32
        };
        d.enter(a);
        d.on_access(r, 0, AccessKind::Write, Location::caller());
        d.exit();
        for _ in 0..3 {
            d.enter(b);
            d.on_access(r, 0, AccessKind::Write, Location::caller());
            d.exit();
        }
        assert_eq!(d.take_reports().len(), 1);
    }

    #[test]
    fn atomics_never_race() {
        let d = det();
        let (a, b) = two_tasks(&d);
        let r = {
            let mut g = d.inner.borrow_mut();
            g.regions.push("tlb");
            0u32
        };
        d.enter(a);
        d.on_access(r, 0, AccessKind::Write, Location::caller());
        d.exit();
        d.enter(b);
        d.on_atomic(r, 0);
        d.exit();
        assert!(d.take_reports().is_empty());
        assert_eq!(d.atomic_ops(), 1);
    }

    #[test]
    fn vclock_render_is_compact() {
        let mut c = VClock::default();
        c.set(0, 3);
        c.set(2, 7);
        assert_eq!(c.render(), "{0:3 2:7}");
    }
}
