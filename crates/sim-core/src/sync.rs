//! Virtual-time synchronization primitives with contention accounting.
//!
//! These primitives are the measurement instruments of the whole
//! reproduction: the paper's scalability collapse is queueing delay at
//! shared locks (LRU lists, allocators, swap locks, APIC). [`SimMutex`] is
//! a strict-FIFO ticket lock on virtual time; waiting time accrues in the
//! simulation clock and is recorded in [`LockStats`], so contention curves
//! *emerge* from the simulated mechanism rather than being assumed.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, VecDeque};
use std::future::Future;
use std::panic::Location;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::SimHandle;
use crate::race;
use crate::stats::TimeStat;
use crate::time::SimTime;

/// Contention statistics for a [`SimMutex`] or [`Semaphore`].
#[derive(Default)]
pub struct LockStats {
    acquisitions: Cell<u64>,
    contended: Cell<u64>,
    wait: RefCell<TimeStat>,
    hold: RefCell<TimeStat>,
    max_queue: Cell<u64>,
}

impl LockStats {
    /// Total number of successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.get()
    }

    /// Number of acquisitions that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended.get()
    }

    /// Aggregate waiting-time statistics (ns of virtual time).
    pub fn wait(&self) -> TimeStat {
        self.wait.borrow().clone()
    }

    /// Aggregate hold-time statistics (ns of virtual time).
    pub fn hold(&self) -> TimeStat {
        self.hold.borrow().clone()
    }

    /// Longest waiter queue observed.
    pub fn max_queue(&self) -> u64 {
        self.max_queue.get()
    }

    pub(crate) fn record_acquire(&self, waited_ns: u64, queue_len: u64) {
        self.acquisitions.set(self.acquisitions.get() + 1);
        if waited_ns > 0 {
            self.contended.set(self.contended.get() + 1);
        }
        self.wait.borrow_mut().record(waited_ns);
        if queue_len > self.max_queue.get() {
            self.max_queue.set(queue_len);
        }
    }
}

struct MutexCtl {
    next_ticket: Cell<u64>,
    now_serving: Cell<u64>,
    /// Waiters' wakers, keyed by ticket. Registration happens at
    /// poll-time (not ticket order) and handoff needs a lookup by the
    /// served ticket, so this is an association list — queues are short
    /// and a linear scan beats the ordered map it replaced on the
    /// lock/unlock hot path.
    wakers: RefCell<Vec<(u64, Waker)>>,
    abandoned: RefCell<BTreeSet<u64>>,
}

impl MutexCtl {
    /// Removes and returns the waker registered for `ticket`, if any.
    fn take_waker(&self, ticket: u64) -> Option<Waker> {
        let mut wakers = self.wakers.borrow_mut();
        let pos = wakers.iter().position(|(t, _)| *t == ticket)?;
        Some(wakers.swap_remove(pos).1)
    }

    /// Advances `now_serving` past abandoned tickets and wakes the holder
    /// of the newly served ticket, if any is waiting.
    fn serve_next(&self) {
        let mut serving = self.now_serving.get() + 1;
        {
            let mut abandoned = self.abandoned.borrow_mut();
            while abandoned.remove(&serving) {
                serving += 1;
            }
        }
        self.now_serving.set(serving);
        if let Some(w) = self.take_waker(serving) {
            w.wake();
        }
    }
}

/// A strict-FIFO asynchronous mutex on virtual time.
///
/// Acquisition order equals the order in which [`SimMutex::lock`] was
/// *called* (ticket lock), making simulations deterministic and queueing
/// delay faithful to a fair spinlock. Waiting never burns host CPU — it
/// suspends the task until the guard is handed over.
///
/// # Examples
///
/// ```
/// use mage_sim::{Simulation, sync::SimMutex};
/// use std::rc::Rc;
///
/// let sim = Simulation::new();
/// let h = sim.handle();
/// let m = Rc::new(SimMutex::new(h.clone(), 0u64));
/// for _ in 0..3 {
///     let (h, m) = (h.clone(), Rc::clone(&m));
///     sim.spawn(async move {
///         let mut g = m.lock().await;
///         h.sleep(100).await; // critical-section service time
///         *g += 1;
///     });
/// }
/// sim.run();
/// let m2 = Rc::clone(&m);
/// assert_eq!(sim.block_on(async move { *m2.lock().await }), 3);
/// assert_eq!(m.stats().acquisitions(), 4);
/// ```
pub struct SimMutex<T> {
    sim: SimHandle,
    ctl: MutexCtl,
    value: RefCell<T>,
    stats: LockStats,
    hold_since: Cell<SimTime>,
    /// Lockdep class (see [`crate::lockdep`]).
    class: u32,
    /// Lazily-allocated simsan sync id (see [`crate::race`]).
    race_sync: Cell<u32>,
}

impl<T> SimMutex<T> {
    /// Creates an unlocked mutex protecting `value`.
    ///
    /// The lockdep class defaults to the protected type's name; locks
    /// whose role matters for ordering should use [`SimMutex::new_named`]
    /// so inversions are reported against meaningful class names.
    pub fn new(sim: SimHandle, value: T) -> Self {
        let name = format!("SimMutex<{}>", std::any::type_name::<T>());
        Self::new_named(sim, &name, value)
    }

    /// Creates an unlocked mutex in the lockdep class `name`.
    ///
    /// All locks sharing a class are one node in the acquisition-order
    /// graph (like a `lock_class_key` in Linux lockdep): shard arrays
    /// should share a class, unrelated locks should not.
    pub fn new_named(sim: SimHandle, name: &str, value: T) -> Self {
        let class = sim.lockdep().register_class(name);
        SimMutex {
            sim,
            ctl: MutexCtl {
                next_ticket: Cell::new(0),
                now_serving: Cell::new(0),
                wakers: RefCell::new(Vec::new()),
                abandoned: RefCell::new(BTreeSet::new()),
            },
            value: RefCell::new(value),
            stats: LockStats::default(),
            hold_since: Cell::new(SimTime::ZERO),
            class,
            race_sync: Cell::new(0),
        }
    }

    /// Forbids holding this lock's class across a virtual-time advance:
    /// the executor panics (with the held chain) if the clock must move
    /// while any guard of this class is live. See [`crate::lockdep`] for
    /// why this is opt-in.
    pub fn forbid_hold_across_sleep(&self) {
        self.sim.lockdep().forbid_hold_across_sleep(self.class);
    }

    /// Acquires the mutex; resolves to a guard releasing it on drop.
    #[track_caller]
    pub fn lock(&self) -> MutexLock<'_, T> {
        let ticket = self.ctl.next_ticket.get();
        self.ctl.next_ticket.set(ticket + 1);
        MutexLock {
            mutex: self,
            ticket,
            started: self.sim.now(),
            acquired: false,
            validated: false,
            site: Location::caller(),
        }
    }

    /// Synchronously accesses the protected value without queueing or
    /// recording statistics.
    ///
    /// Intended for setup/seeding and post-run inspection while the
    /// simulation is quiescent.
    ///
    /// # Panics
    ///
    /// Panics if the mutex is currently held or has waiters.
    pub fn with_sync<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        assert_eq!(
            self.ctl.now_serving.get(),
            self.ctl.next_ticket.get(),
            "with_sync on a held or contended mutex"
        );
        f(&mut self.value.borrow_mut())
    }

    /// Current number of tickets waiting behind the holder.
    pub fn queue_len(&self) -> u64 {
        self.ctl
            .next_ticket
            .get()
            .saturating_sub(self.ctl.now_serving.get())
            .saturating_sub(1)
    }

    /// Contention statistics for this lock.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }
}

/// Future returned by [`SimMutex::lock`].
pub struct MutexLock<'a, T> {
    mutex: &'a SimMutex<T>,
    ticket: u64,
    started: SimTime,
    acquired: bool,
    validated: bool,
    site: &'static Location<'static>,
}

impl<'a, T> Future for MutexLock<'a, T> {
    type Output = MutexGuard<'a, T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let m = self.mutex;
        if !self.validated {
            // Validate the ordering at the *attempt* (before blocking),
            // so inversions are reported even when they deadlock.
            self.validated = true;
            m.sim
                .lockdep()
                .check_acquire(m.sim.current_task_key(), m.class, self.site);
        }
        if m.ctl.now_serving.get() == self.ticket {
            self.acquired = true;
            let waited = m.sim.now().saturating_since(self.started);
            m.stats.record_acquire(waited, m.queue_len());
            m.hold_since.set(m.sim.now());
            let task = m.sim.current_task_key();
            m.sim.lockdep().acquired(task, m.class, self.site);
            race::edge(&m.race_sync, |det, s| det.acquire(s));
            // The ticket protocol guarantees exclusivity, so this borrow
            // cannot conflict with another live guard.
            let inner = m.value.borrow_mut();
            Poll::Ready(MutexGuard {
                mutex: m,
                inner: Some(inner),
                task,
            })
        } else {
            let mut wakers = m.ctl.wakers.borrow_mut();
            match wakers.iter_mut().find(|(t, _)| *t == self.ticket) {
                Some(entry) => entry.1 = cx.waker().clone(),
                None => wakers.push((self.ticket, cx.waker().clone())),
            }
            Poll::Pending
        }
    }
}

impl<T> Drop for MutexLock<'_, T> {
    fn drop(&mut self) {
        if self.acquired {
            return;
        }
        // Cancelled before acquisition: retire the ticket so the queue
        // does not stall on it.
        let m = self.mutex;
        m.ctl.take_waker(self.ticket);
        if m.ctl.now_serving.get() == self.ticket {
            m.ctl.serve_next();
        } else {
            m.ctl.abandoned.borrow_mut().insert(self.ticket);
        }
    }
}

/// RAII guard for a [`SimMutex`].
pub struct MutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
    inner: Option<std::cell::RefMut<'a, T>>,
    task: crate::lockdep::TaskKey,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard borrow missing")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard borrow missing")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the borrow before waking the next ticket holder.
        self.inner = None;
        let m = self.mutex;
        m.sim.lockdep().release(self.task, m.class);
        race::edge(&m.race_sync, |det, s| det.release(s));
        let held = m.sim.now().saturating_since(m.hold_since.get());
        m.stats.hold.borrow_mut().record(held);
        m.ctl.serve_next();
    }
}

struct SemWaiter {
    need: u64,
    granted: Cell<bool>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// A FIFO counting semaphore on virtual time.
///
/// Used for bounded resources such as free-page reserves and NIC queue
/// depth. Waiters are served strictly in arrival order; a waiter needing
/// more permits than are available blocks everything behind it (no
/// barging), which models a fair resource queue.
pub struct Semaphore {
    sim: SimHandle,
    permits: Cell<u64>,
    waiters: RefCell<VecDeque<Rc<SemWaiter>>>,
    stats: LockStats,
    /// Lazily-allocated simsan sync id: releases publish, grants acquire.
    race_sync: Cell<u32>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(sim: SimHandle, permits: u64) -> Self {
        Semaphore {
            sim,
            permits: Cell::new(permits),
            waiters: RefCell::new(VecDeque::new()),
            stats: LockStats::default(),
            race_sync: Cell::new(0),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.permits.get()
    }

    /// Acquires `need` permits, waiting in FIFO order.
    pub fn acquire(&self, need: u64) -> SemAcquire<'_> {
        SemAcquire {
            sem: self,
            need,
            started: self.sim.now(),
            waiter: None,
        }
    }

    /// Attempts to take `need` permits without waiting.
    pub fn try_acquire(&self, need: u64) -> bool {
        if self.waiters.borrow().is_empty() && self.permits.get() >= need {
            self.permits.set(self.permits.get() - need);
            self.stats.record_acquire(0, 0);
            race::edge(&self.race_sync, |det, s| det.acquire(s));
            true
        } else {
            false
        }
    }

    /// Returns `n` permits and grants queued waiters in order.
    pub fn release(&self, n: u64) {
        race::edge(&self.race_sync, |det, s| det.release(s));
        self.permits.set(self.permits.get() + n);
        self.grant_waiters();
    }

    /// Contention statistics for this semaphore.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.borrow().len()
    }

    fn grant_waiters(&self) {
        loop {
            let mut q = self.waiters.borrow_mut();
            match q.front() {
                Some(w) if w.cancelled.get() => {
                    q.pop_front();
                }
                Some(w) if self.permits.get() >= w.need => {
                    self.permits.set(self.permits.get() - w.need);
                    w.granted.set(true);
                    let waker = w.waker.borrow_mut().take();
                    q.pop_front();
                    drop(q);
                    if let Some(waker) = waker {
                        waker.wake();
                    }
                }
                _ => break,
            }
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire<'a> {
    sem: &'a Semaphore,
    need: u64,
    started: SimTime,
    waiter: Option<Rc<SemWaiter>>,
}

impl Future for SemAcquire<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let sem = self.sem;
        match &self.waiter {
            None => {
                if sem.try_acquire(self.need) {
                    return Poll::Ready(());
                }
                let w = Rc::new(SemWaiter {
                    need: self.need,
                    granted: Cell::new(false),
                    cancelled: Cell::new(false),
                    waker: RefCell::new(Some(cx.waker().clone())),
                });
                sem.waiters.borrow_mut().push_back(Rc::clone(&w));
                self.waiter = Some(w);
                Poll::Pending
            }
            Some(w) => {
                if w.granted.get() {
                    let waited = sem.sim.now().saturating_since(self.started);
                    sem.stats
                        .record_acquire(waited, sem.waiters.borrow().len() as u64);
                    race::edge(&sem.race_sync, |det, s| det.acquire(s));
                    self.waiter = None;
                    Poll::Ready(())
                } else {
                    *w.waker.borrow_mut() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for SemAcquire<'_> {
    fn drop(&mut self) {
        if let Some(w) = self.waiter.take() {
            if w.granted.get() {
                // Granted but never observed: return the permits.
                self.sem.release(w.need);
            } else {
                w.cancelled.set(true);
            }
        }
    }
}

struct WaitSlot {
    signalled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
    /// Per-waiter simsan sync: the waker releases into it at wake time,
    /// the waiter acquires it when its `Wait` resolves, so a woken task
    /// inherits exactly its waker's clock (a precise edge, not a
    /// queue-wide one).
    race_sync: Cell<u32>,
}

/// A condition-variable-style wait queue.
///
/// Tasks call [`WaitQueue::wait`] in a predicate loop; state changers call
/// [`WaitQueue::wake_one`] / [`WaitQueue::wake_all`]. Because the executor
/// is single-threaded and non-preemptive, checking the predicate and then
/// awaiting is free of lost-wakeup races as long as no `.await` separates
/// the two.
#[derive(Default)]
pub struct WaitQueue {
    waiters: RefCell<VecDeque<Rc<WaitSlot>>>,
}

impl WaitQueue {
    /// Creates an empty wait queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a future completing at the next wake targeting this waiter.
    pub fn wait(&self) -> Wait {
        let slot = Rc::new(WaitSlot {
            signalled: Cell::new(false),
            waker: RefCell::new(None),
            race_sync: Cell::new(0),
        });
        self.waiters.borrow_mut().push_back(Rc::clone(&slot));
        Wait { slot }
    }

    /// Wakes the oldest waiter, if any. Returns true if one was woken.
    pub fn wake_one(&self) -> bool {
        let slot = self.waiters.borrow_mut().pop_front();
        match slot {
            Some(s) => {
                race::edge(&s.race_sync, |det, sy| det.release(sy));
                s.signalled.set(true);
                if let Some(w) = s.waker.borrow_mut().take() {
                    w.wake();
                }
                true
            }
            None => false,
        }
    }

    /// Wakes every current waiter.
    pub fn wake_all(&self) {
        let slots: Vec<_> = self.waiters.borrow_mut().drain(..).collect();
        for s in slots {
            race::edge(&s.race_sync, |det, sy| det.release(sy));
            s.signalled.set(true);
            if let Some(w) = s.waker.borrow_mut().take() {
                w.wake();
            }
        }
    }

    /// Number of registered waiters.
    pub fn len(&self) -> usize {
        self.waiters.borrow().len()
    }

    /// Whether no waiter is registered.
    pub fn is_empty(&self) -> bool {
        self.waiters.borrow().is_empty()
    }
}

/// Future returned by [`WaitQueue::wait`].
pub struct Wait {
    slot: Rc<WaitSlot>,
}

impl Future for Wait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.slot.signalled.get() {
            race::edge(&self.slot.race_sync, |det, sy| det.acquire(sy));
            Poll::Ready(())
        } else {
            *self.slot.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// An edge-triggered event with a stored permit (like `tokio::sync::Notify`).
///
/// `notify` before `wait` is not lost: the next `wait` completes
/// immediately. Used to kick background evictors when a watermark is
/// crossed.
#[derive(Default)]
pub struct Event {
    permit: Cell<bool>,
    queue: WaitQueue,
    /// Simsan sync carrying the stored-permit edge (`notify` with no
    /// waiter → later `wait` consuming the permit); direct wakes take
    /// the per-waiter edge inside `queue` instead.
    race_sync: Cell<u32>,
}

impl Event {
    /// Creates an event with no stored permit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a permit and wakes one waiter if present.
    pub fn notify(&self) {
        if !self.queue.wake_one() {
            race::edge(&self.race_sync, |det, s| det.release(s));
            self.permit.set(true);
        }
    }

    /// Waits for a notification (consumes a stored permit if present).
    pub async fn wait(&self) {
        if self.permit.replace(false) {
            race::edge(&self.race_sync, |det, s| det.acquire(s));
            return;
        }
        self.queue.wait().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[test]
    fn mutex_is_fifo_and_measures_wait() {
        let sim = Simulation::new();
        let h = sim.handle();
        let m = Rc::new(SimMutex::new(h.clone(), Vec::new()));
        for id in 0..4u32 {
            let (h, m) = (h.clone(), Rc::clone(&m));
            sim.spawn(async move {
                let mut g = m.lock().await;
                h.sleep(100).await;
                g.push(id);
            });
        }
        sim.run();
        let m2 = Rc::clone(&m);
        let order = Simulation::new(); // separate sim not needed; inspect directly
        drop(order);
        assert_eq!(*m2.value.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(m.stats().acquisitions(), 4);
        assert_eq!(m.stats().contended(), 3);
        // Waiters 1..3 wait 100, 200, 300 ns respectively.
        assert_eq!(m.stats().wait().sum(), 600);
        assert_eq!(m.stats().wait().max(), 300);
    }

    #[test]
    fn mutex_uncontended_is_immediate() {
        let sim = Simulation::new();
        let h = sim.handle();
        let m = SimMutex::new(h.clone(), 5u32);
        let v = sim.block_on(async move {
            let g = m.lock().await;
            *g
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn cancelled_lock_does_not_stall_queue() {
        let sim = Simulation::new();
        let h = sim.handle();
        let m = Rc::new(SimMutex::new(h.clone(), ()));
        let m2 = Rc::clone(&m);
        let h2 = h.clone();
        let done = sim.block_on(async move {
            let g = m2.lock().await;
            // Create and drop a pending lock future (ticket 1).
            {
                let fut = m2.lock();
                drop(fut);
            }
            drop(g);
            h2.sleep(1).await;
            // Ticket 2 must still be served.
            let _g = m2.lock().await;
            true
        });
        assert!(done);
    }

    #[test]
    fn semaphore_fifo_grants() {
        let sim = Simulation::new();
        let h = sim.handle();
        let s = Rc::new(Semaphore::new(h.clone(), 2));
        let log = Rc::new(RefCell::new(Vec::new()));
        for id in 0..4u32 {
            let (h, s, log) = (h.clone(), Rc::clone(&s), Rc::clone(&log));
            sim.spawn(async move {
                s.acquire(1).await;
                log.borrow_mut().push(id);
                h.sleep(50).await;
                s.release(1);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(s.available(), 2);
    }

    #[test]
    fn semaphore_large_request_blocks_queue() {
        let sim = Simulation::new();
        let h = sim.handle();
        let s = Rc::new(Semaphore::new(h.clone(), 0));
        let log = Rc::new(RefCell::new(Vec::new()));
        // First waiter needs 2; second needs 1 and must wait behind it.
        for (id, need) in [(0u32, 2u64), (1, 1)] {
            let (s, log) = (Rc::clone(&s), Rc::clone(&log));
            sim.spawn(async move {
                s.acquire(need).await;
                log.borrow_mut().push(id);
            });
        }
        let s2 = Rc::clone(&s);
        let h2 = h.clone();
        let log2 = Rc::clone(&log);
        sim.spawn(async move {
            h2.sleep(10).await;
            // One permit is not enough for the head waiter (needs 2), so
            // the later small waiter must stay blocked behind it (FIFO).
            s2.release(1);
            h2.sleep(10).await;
            assert!(log2.borrow().is_empty());
            // Two more permits: the head (need 2) is served first, then
            // the small waiter takes the remaining permit.
            s2.release(2);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1]);
    }

    #[test]
    fn event_permit_is_not_lost() {
        let sim = Simulation::new();
        let e = Rc::new(Event::new());
        e.notify();
        let e2 = Rc::clone(&e);
        sim.block_on(async move { e2.wait().await });
    }

    #[test]
    fn waitqueue_wake_all() {
        let sim = Simulation::new();
        let q = Rc::new(WaitQueue::new());
        let n = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let (q, n) = (Rc::clone(&q), Rc::clone(&n));
            sim.spawn(async move {
                q.wait().await;
                n.set(n.get() + 1);
            });
        }
        let q2 = Rc::clone(&q);
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(5).await;
            q2.wake_all();
        });
        sim.run();
        assert_eq!(n.get(), 3);
    }

    #[test]
    fn queueing_delay_grows_with_contenders() {
        // The core mechanism of the reproduction: total waiting time at a
        // lock with fixed service time grows quadratically with the number
        // of simultaneous contenders.
        fn total_wait(contenders: u32) -> u64 {
            let sim = Simulation::new();
            let h = sim.handle();
            let m = Rc::new(SimMutex::new(h.clone(), ()));
            for _ in 0..contenders {
                let (h, m) = (h.clone(), Rc::clone(&m));
                sim.spawn(async move {
                    let _g = m.lock().await;
                    h.sleep(200).await;
                });
            }
            sim.run();
            m.stats().wait().sum()
        }
        let w8 = total_wait(8);
        let w48 = total_wait(48);
        // sum_{i<n} i*200 = n(n-1)*100: 8 -> 5_600, 48 -> 225_600.
        assert_eq!(w8, 5_600);
        assert_eq!(w48, 225_600);
    }
}
