//! Deterministic dense containers for the simulator's hot paths.
//!
//! The determinism pass (DESIGN.md §5) banned `HashMap`/`HashSet` for
//! their per-process random iteration order, and the hot paths landed on
//! `BTreeMap` — deterministic, but O(log n) with pointer-chasing on
//! every timer fire, TLB lookup, page-waiter wake and evicting-set
//! probe. The two containers here restore O(1) access while keeping
//! every *observable* order a pure function of the operation history:
//!
//! * [`Slab`] — an index-keyed arena with a dense LIFO free-list. Keys
//!   are handed out by the slab (recycled deterministically), so lookup
//!   is one bounds-checked array index.
//! * [`PageMap`] — an open-addressed map keyed by `u64` (page numbers,
//!   sequence numbers) using Fibonacci multiplicative hashing, linear
//!   probing and backward-shift deletion. The probe function is a fixed
//!   constant — no per-process SipHash keys — so layout, growth and
//!   probe order replay identically for the same insert/remove history.
//!
//! Neither container exposes raw storage-order iteration: walking a
//! `PageMap` in probe order would make behaviour depend on the hash
//! layout, which is deterministic but *not* semantically meaningful
//! (an innocuous capacity change would reorder it). Iteration is only
//! available in sorted-key form, which is what the fuzz suites compare
//! against a `BTreeMap` shadow model.

/// Sentinel for "no slot" in intrusive structures built on [`Slab`].
pub const NIL: u32 = u32::MAX;

/// An index-keyed arena with a dense free-list.
///
/// `insert` returns a stable `u32` key; `remove` recycles it LIFO. The
/// recycling order is part of the container's deterministic contract:
/// the same operation history always yields the same keys.
#[derive(Default)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its key (recycled LIFO when possible).
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                debug_assert!(self.slots[key as usize].is_none());
                self.slots[key as usize] = Some(value);
                key
            }
            None => {
                let key = u32::try_from(self.slots.len()).expect("slab key space exhausted");
                assert_ne!(key, NIL, "slab key space exhausted");
                self.slots.push(Some(value));
                key
            }
        }
    }

    /// Removes and returns the value at `key`, freeing the slot.
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let v = self.slots.get_mut(key as usize)?.take()?;
        self.free.push(key);
        self.len -= 1;
        Some(v)
    }

    /// Shared access to the value at `key`.
    pub fn get(&self, key: u32) -> Option<&T> {
        self.slots.get(key as usize)?.as_ref()
    }

    /// Mutable access to the value at `key`.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.slots.get_mut(key as usize)?.as_mut()
    }

    /// True if `key` holds a live value.
    pub fn contains(&self, key: u32) -> bool {
        self.slots.get(key as usize).is_some_and(Option::is_some)
    }

    /// Live keys in ascending order (the only iteration order offered;
    /// storage order is an implementation detail).
    pub fn keys_sorted(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i as u32))
    }
}

impl<T> std::ops::Index<u32> for Slab<T> {
    type Output = T;
    fn index(&self, key: u32) -> &T {
        self.get(key).expect("stale slab key")
    }
}

impl<T> std::ops::IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, key: u32) -> &mut T {
        self.get_mut(key).expect("stale slab key")
    }
}

/// Fibonacci multiplicative hash: spreads consecutive page numbers over
/// the table while staying a fixed pure function (no per-process keys).
#[inline]
fn fib_hash(key: u64, shift: u32) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// An open-addressed `u64 → V` map with deterministic layout.
///
/// Linear probing with backward-shift deletion (no tombstones), growth
/// at ¾ load. Point operations are O(1) expected with a probe sequence
/// fully determined by the key history — the structure the TLB,
/// page-waiter and evicting sets use instead of `BTreeMap`.
///
/// Keys and values live in parallel arrays so the probe loop touches 8
/// bytes per slot (the key array) and only dereferences a value on a
/// hit — measurably faster than probing `Option<(u64, V)>` slots in the
/// events/sec harness, where the per-core TLBs put a few thousand of
/// these probes on every fault path.
pub struct PageMap<V> {
    /// `key + 1` per slot; 0 marks an empty slot. Keys of `u64::MAX`
    /// are rejected at insert (page and sequence numbers never get
    /// there).
    keys: Vec<u64>,
    /// Value for each occupied slot, `None` where `keys` is 0.
    vals: Vec<Option<V>>,
    shift: u32,
    len: usize,
}

impl<V> Default for PageMap<V> {
    fn default() -> Self {
        PageMap::new()
    }
}

impl<V> PageMap<V> {
    const MIN_CAP: usize = 16;

    /// An empty map (allocates the minimum table eagerly so the probe
    /// arithmetic never special-cases zero capacity).
    pub fn new() -> Self {
        Self::with_pow2_capacity(Self::MIN_CAP)
    }

    /// An empty map sized for `n` entries without growing. The table is
    /// the smallest power of two keeping `n` at or under ¾ load — the
    /// same threshold [`insert`](Self::insert) grows at, so a map sized
    /// for its working set never reallocates *or* overshoots to the next
    /// power of two (a TLB's 1 536 entries fit 2 048 slots exactly).
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n * 4).div_ceil(3).next_power_of_two().max(Self::MIN_CAP);
        Self::with_pow2_capacity(cap)
    }

    fn with_pow2_capacity(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        let mut vals = Vec::new();
        vals.resize_with(cap, || None);
        PageMap {
            keys: vec![0; cap],
            vals,
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    /// Slot index of `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.mask();
        let tagged = key.checked_add(1)?; // u64::MAX is never stored
        let mut i = fib_hash(key, self.shift);
        loop {
            let k = self.keys[i];
            if k == tagged {
                return Some(i);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Shared access to the value under `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| self.vals[i].as_ref().expect("found slot is occupied"))
    }

    /// Mutable access to the value under `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        Some(self.vals[i].as_mut().expect("found slot is occupied"))
    }

    /// True if `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        assert_ne!(key, u64::MAX, "u64::MAX is reserved");
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let tagged = key + 1;
        let mut i = fib_hash(key, self.shift);
        loop {
            let k = self.keys[i];
            if k == 0 {
                self.keys[i] = tagged;
                self.vals[i] = Some(value);
                self.len += 1;
                return None;
            }
            if k == tagged {
                return self.vals[i].replace(value);
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns a mutable reference to the value under `key`, inserting
    /// `make()` first if absent (the `entry().or_insert_with()` shape).
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, make());
        }
        let i = self.find(key).expect("key just ensured present");
        self.vals[i].as_mut().expect("found slot is occupied")
    }

    /// Removes `key`, returning its value. Backward-shift deletion keeps
    /// probe chains tombstone-free, so lookup cost never decays.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        self.keys[hole] = 0;
        let value = self.vals[hole].take().expect("found slot is occupied");
        self.len -= 1;
        let mask = self.mask();
        let mut i = hole;
        loop {
            i = (i + 1) & mask;
            let k = self.keys[i];
            if k == 0 {
                break;
            }
            let home = fib_hash(k - 1, self.shift);
            // Shift `i` back into the hole iff its home position does not
            // lie strictly between the hole and `i` (cyclic distance test).
            if (i.wrapping_sub(home) & mask) >= (i.wrapping_sub(hole) & mask) {
                self.keys[hole] = k;
                self.keys[i] = 0;
                self.vals[hole] = self.vals[i].take();
                hole = i;
            }
        }
        Some(value)
    }

    /// Entries in ascending key order — the only iteration offered, so
    /// callers can never observe the hash layout.
    pub fn iter_sorted(&self) -> Vec<(u64, &V)> {
        let mut out: Vec<(u64, &V)> = self
            .keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != 0)
            .map(|(&k, v)| (k - 1, v.as_ref().expect("occupied slot has a value")))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, {
            let mut v = Vec::new();
            v.resize_with(new_cap, || None);
            v
        });
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = self.mask();
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == 0 {
                continue;
            }
            let mut i = fib_hash(k - 1, self.shift);
            while self.keys[i] != 0 {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_recycles_lifo() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.insert("c"), a, "freed key is recycled LIFO");
        assert_eq!(s[a], "c");
        assert_eq!(s.len(), 2);
        assert_eq!(s.keys_sorted().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn slab_stale_key_is_none() {
        let mut s = Slab::new();
        let k = s.insert(7u64);
        s.remove(k);
        assert_eq!(s.get(k), None);
        assert!(!s.contains(k));
        assert_eq!(s.remove(k), None, "double remove is inert");
    }

    #[test]
    fn pagemap_basic_ops() {
        let mut m = PageMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(42, "x"), None);
        assert_eq!(m.insert(42, "y"), Some("x"));
        assert_eq!(m.get(42), Some(&"y"));
        assert!(m.contains_key(42));
        assert_eq!(m.remove(42), Some("y"));
        assert_eq!(m.remove(42), None);
        assert!(m.is_empty());
    }

    #[test]
    fn pagemap_grows_and_keeps_entries() {
        let mut m = PageMap::new();
        for k in 0..10_000u64 {
            m.insert(k * 7, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 7), Some(&k), "key {k} survived growth");
        }
        let sorted = m.iter_sorted();
        assert!(sorted.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn pagemap_backward_shift_preserves_chains() {
        // Colliding keys (same home slot) must stay reachable after an
        // interior deletion — the case tombstone-free tables get wrong.
        let mut m = PageMap::new();
        // With a 16-slot table, keys that hash to the same bucket:
        let mut colliders = Vec::new();
        let mut k = 0u64;
        while colliders.len() < 4 {
            if fib_hash(k, 64 - 4) == 3 {
                colliders.push(k);
            }
            k += 1;
        }
        for &c in &colliders {
            m.insert(c, c);
        }
        m.remove(colliders[1]);
        for &c in [colliders[0], colliders[2], colliders[3]].iter() {
            assert_eq!(m.get(c), Some(&c), "collider {c} lost after deletion");
        }
    }

    #[test]
    fn pagemap_get_or_insert_with() {
        let mut m: PageMap<Vec<u32>> = PageMap::new();
        m.get_or_insert_with(5, Vec::new).push(1);
        m.get_or_insert_with(5, || panic!("must not re-create")).push(2);
        assert_eq!(m.get(5), Some(&vec![1, 2]));
    }
}
