//! Additional virtual-time primitives: reader–writer locks and channels.
//!
//! [`SimRwLock`] models kernel locks like `mmap_lock` that are
//! read-mostly on the fault path but exclusive for address-space
//! mutation. [`channel`] is an unbounded mpsc queue for actor-style
//! components.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::Location;
use std::rc::Rc;

use crate::race;
use crate::sync::{LockStats, WaitQueue};
use crate::time::SimTime;
use crate::SimHandle;

/// Reader–writer lock state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RwState {
    Free,
    Readers(u32),
    Writer,
}

/// A fair (writer-preferring) asynchronous reader–writer lock on virtual
/// time.
///
/// Readers share; writers exclude. Once a writer is waiting, new readers
/// queue behind it (no writer starvation), like Linux's `rw_semaphore`.
pub struct SimRwLock {
    sim: SimHandle,
    state: Cell<RwState>,
    waiting_writers: Cell<u32>,
    readers_queue: WaitQueue,
    writers_queue: WaitQueue,
    stats: LockStats,
    /// Lockdep class (see [`crate::lockdep`]); shared by both sides.
    class: u32,
    /// Simsan sync shared by both sides: every unlock (read or write)
    /// releases, every lock acquires. Conservative for reader–reader
    /// pairs (an extra edge, never a missed write edge).
    race_sync: Cell<u32>,
}

impl SimRwLock {
    /// Creates an unlocked lock in the default `SimRwLock` lockdep
    /// class; prefer [`SimRwLock::new_named`] for locks whose ordering
    /// matters.
    pub fn new(sim: SimHandle) -> Self {
        Self::new_named(sim, "SimRwLock")
    }

    /// Creates an unlocked lock in the lockdep class `name`.
    pub fn new_named(sim: SimHandle, name: &str) -> Self {
        let class = sim.lockdep().register_class(name);
        SimRwLock {
            sim,
            state: Cell::new(RwState::Free),
            waiting_writers: Cell::new(0),
            readers_queue: WaitQueue::new(),
            writers_queue: WaitQueue::new(),
            stats: LockStats::default(),
            class,
            race_sync: Cell::new(0),
        }
    }

    /// Forbids holding this lock's class across a virtual-time advance
    /// (see [`crate::sync::SimMutex::forbid_hold_across_sleep`]).
    pub fn forbid_hold_across_sleep(&self) {
        self.sim.lockdep().forbid_hold_across_sleep(self.class);
    }

    /// Contention statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    fn record(&self, started: SimTime) {
        let waited = self.sim.now().saturating_since(started);
        self.stats.record_acquire(
            waited,
            self.readers_queue.len() as u64 + self.writers_queue.len() as u64,
        );
    }

    /// Acquires the lock shared. Blocks while a writer holds it or waits.
    #[track_caller]
    pub fn read(&self) -> impl std::future::Future<Output = RwReadGuard<'_>> + '_ {
        self.read_at(Location::caller())
    }

    async fn read_at(&self, site: &'static Location<'static>) -> RwReadGuard<'_> {
        let started = self.sim.now();
        self.sim
            .lockdep()
            .check_acquire(self.sim.current_task_key(), self.class, site);
        loop {
            let can = match self.state.get() {
                RwState::Writer => false,
                _ => self.waiting_writers.get() == 0,
            };
            if can {
                let n = match self.state.get() {
                    RwState::Readers(n) => n,
                    _ => 0,
                };
                self.state.set(RwState::Readers(n + 1));
                self.record(started);
                let task = self.sim.current_task_key();
                self.sim.lockdep().acquired(task, self.class, site);
                race::edge(&self.race_sync, |det, s| det.acquire(s));
                return RwReadGuard { lock: self, task };
            }
            self.readers_queue.wait().await;
        }
    }

    /// Acquires the lock exclusive.
    #[track_caller]
    pub fn write(&self) -> impl std::future::Future<Output = RwWriteGuard<'_>> + '_ {
        self.write_at(Location::caller())
    }

    async fn write_at(&self, site: &'static Location<'static>) -> RwWriteGuard<'_> {
        let started = self.sim.now();
        self.sim
            .lockdep()
            .check_acquire(self.sim.current_task_key(), self.class, site);
        self.waiting_writers.set(self.waiting_writers.get() + 1);
        loop {
            if self.state.get() == RwState::Free {
                self.state.set(RwState::Writer);
                self.waiting_writers.set(self.waiting_writers.get() - 1);
                self.record(started);
                let task = self.sim.current_task_key();
                self.sim.lockdep().acquired(task, self.class, site);
                race::edge(&self.race_sync, |det, s| det.acquire(s));
                return RwWriteGuard { lock: self, task };
            }
            self.writers_queue.wait().await;
        }
    }

    fn release_read(&self) {
        race::edge(&self.race_sync, |det, s| det.release(s));
        match self.state.get() {
            RwState::Readers(1) => {
                self.state.set(RwState::Free);
                // Writers first (fairness), else wake queued readers.
                if !self.writers_queue.wake_one() {
                    self.readers_queue.wake_all();
                }
            }
            RwState::Readers(n) if n > 1 => self.state.set(RwState::Readers(n - 1)),
            other => unreachable!("release_read in state {other:?}"),
        }
    }

    fn release_write(&self) {
        race::edge(&self.race_sync, |det, s| det.release(s));
        debug_assert_eq!(self.state.get(), RwState::Writer);
        self.state.set(RwState::Free);
        if !self.writers_queue.wake_one() {
            self.readers_queue.wake_all();
        }
    }
}

/// Shared guard for [`SimRwLock`].
pub struct RwReadGuard<'a> {
    lock: &'a SimRwLock,
    task: crate::lockdep::TaskKey,
}

impl Drop for RwReadGuard<'_> {
    fn drop(&mut self) {
        self.lock.sim.lockdep().release(self.task, self.lock.class);
        self.lock.release_read();
    }
}

/// Exclusive guard for [`SimRwLock`].
pub struct RwWriteGuard<'a> {
    lock: &'a SimRwLock,
    task: crate::lockdep::TaskKey,
}

impl Drop for RwWriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.sim.lockdep().release(self.task, self.lock.class);
        self.lock.release_write();
    }
}

struct ChannelInner<T> {
    queue: RefCell<VecDeque<T>>,
    recv_waiters: WaitQueue,
    senders: Cell<usize>,
    receiver_alive: Cell<bool>,
    /// Simsan sync: sends (and the last sender's drop) release, receives
    /// acquire — covering the non-waiting receive path that never touches
    /// `recv_waiters`.
    race_sync: Cell<u32>,
}

/// Creates an unbounded mpsc channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(ChannelInner {
        queue: RefCell::new(VecDeque::new()),
        recv_waiters: WaitQueue::new(),
        senders: Cell::new(1),
        receiver_alive: Cell::new(true),
        race_sync: Cell::new(0),
    });
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: Rc<ChannelInner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.set(self.inner.senders.get() + 1);
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.inner.senders.set(self.inner.senders.get() - 1);
        if self.inner.senders.get() == 0 {
            race::edge(&self.inner.race_sync, |det, s| det.release(s));
            self.inner.recv_waiters.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message; returns false if the receiver is gone.
    pub fn send(&self, value: T) -> bool {
        if !self.inner.receiver_alive.get() {
            return false;
        }
        race::edge(&self.inner.race_sync, |det, s| det.release(s));
        self.inner.queue.borrow_mut().push_back(value);
        self.inner.recv_waiters.wake_one();
        true
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: Rc<ChannelInner<T>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receiver_alive.set(false);
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, or `None` once every sender is dropped
    /// and the queue is drained.
    pub async fn recv(&self) -> Option<T> {
        loop {
            if let Some(v) = self.inner.queue.borrow_mut().pop_front() {
                race::edge(&self.inner.race_sync, |det, s| det.acquire(s));
                return Some(v);
            }
            if self.inner.senders.get() == 0 {
                race::edge(&self.inner.race_sync, |det, s| det.acquire(s));
                return None;
            }
            self.inner.recv_waiters.wait().await;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let v = self.inner.queue.borrow_mut().pop_front();
        if v.is_some() {
            race::edge(&self.inner.race_sync, |det, s| det.acquire(s));
        }
        v
    }

    /// Queued messages.
    pub fn len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.queue.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[test]
    fn readers_share_writers_exclude() {
        let sim = Simulation::new();
        let h = sim.handle();
        let lock = Rc::new(SimRwLock::new(h.clone()));
        let peak = Rc::new(Cell::new(0u32));
        let cur = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let (h, lock, peak, cur) = (
                h.clone(),
                Rc::clone(&lock),
                Rc::clone(&peak),
                Rc::clone(&cur),
            );
            sim.spawn(async move {
                let _g = lock.read().await;
                cur.set(cur.get() + 1);
                peak.set(peak.get().max(cur.get()));
                h.sleep(100).await;
                cur.set(cur.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 4, "readers must run concurrently");

        // Writers serialize: 3 writers x 100ns = 300ns.
        let sim = Simulation::new();
        let h = sim.handle();
        let lock = Rc::new(SimRwLock::new(h.clone()));
        for _ in 0..3 {
            let (h, lock) = (h.clone(), Rc::clone(&lock));
            sim.spawn(async move {
                let _g = lock.write().await;
                h.sleep(100).await;
            });
        }
        assert_eq!(sim.run().as_nanos(), 300);
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let sim = Simulation::new();
        let h = sim.handle();
        let lock = Rc::new(SimRwLock::new(h.clone()));
        let log = Rc::new(RefCell::new(Vec::new()));
        // Reader A holds 0..100; writer arrives at 10; reader B at 20
        // must wait behind the writer (fairness).
        {
            let (h, lock, log) = (h.clone(), Rc::clone(&lock), Rc::clone(&log));
            sim.spawn(async move {
                let _g = lock.read().await;
                log.borrow_mut().push("ra");
                h.sleep(100).await;
            });
        }
        {
            let (h, lock, log) = (h.clone(), Rc::clone(&lock), Rc::clone(&log));
            sim.spawn(async move {
                h.sleep(10).await;
                let _g = lock.write().await;
                log.borrow_mut().push("w");
                h.sleep(50).await;
            });
        }
        {
            let (h, lock, log) = (h.clone(), Rc::clone(&lock), Rc::clone(&log));
            sim.spawn(async move {
                h.sleep(20).await;
                let _g = lock.read().await;
                log.borrow_mut().push("rb");
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["ra", "w", "rb"]);
    }

    #[test]
    fn channel_delivers_in_order() {
        let sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        let h = sim.handle();
        sim.spawn(async move {
            for i in 0..5 {
                h.sleep(10).await;
                assert!(tx.send(i));
            }
        });
        let got = sim.block_on(async move {
            let mut out = Vec::new();
            while let Some(v) = rx.recv().await {
                out.push(v);
            }
            out
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_close_semantics() {
        let sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        assert!(tx2.send(7));
        drop(tx2);
        let got = sim.block_on(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(got, (Some(7), None));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert!(!tx.send(1));
    }
}
