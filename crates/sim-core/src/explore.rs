//! Schedule exploration: pluggable ready-queue pick strategies.
//!
//! The executor's ready queue is FIFO by default, which gives every test
//! suite one fixed, reproducible schedule. That is the right default for
//! golden-value tests, but it also means a single interleaving of the
//! decoupled fault and eviction paths is ever exercised. The types here
//! make the ready-queue *pick* pluggable so a checker (see the
//! `mage-check` crate) can systematically explore many schedules:
//!
//! - [`ExplorationPolicy::Fifo`] — pick index 0, bit-for-bit identical to
//!   the historical executor;
//! - [`ExplorationPolicy::SeededRandom`] — pick uniformly among runnable
//!   tasks using a [`SplitMix64`] stream, consuming one draw per *real*
//!   choice point (a single-entry queue costs nothing, so schedules are a
//!   function of genuine scheduling decisions only);
//! - [`ExplorationPolicy::PriorityFuzz`] — assign each task id a fixed
//!   pseudo-random priority derived from the seed and always run the
//!   highest-priority runnable task. This starves "unlucky" tasks for
//!   long stretches and surfaces orderings uniform choice rarely hits.
//!
//! Interleavings only change at `await` points: a task still runs
//! uninterrupted between yields, so code that relies on the executor's
//! run-to-completion atomicity (e.g. the PTE lock fast path) stays
//! correct under every policy.
//!
//! The executor keeps its ready queue as an intrusive list through the
//! task arena; policies see it as a dense slice of stable slot ids
//! (materialized only for non-FIFO policies — the FIFO fast path pops
//! the list head without consulting the explorer at all).

use crate::rng::{mix64, SplitMix64};
use crate::time::SimTime;

/// How the executor picks the next task from the ready queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExplorationPolicy {
    /// Front of the queue, the deterministic default schedule.
    #[default]
    Fifo,
    /// Uniformly random pick among runnable tasks, seeded.
    SeededRandom {
        /// Seed for the pick stream.
        seed: u64,
    },
    /// Fixed per-task pseudo-random priorities derived from the seed;
    /// the highest-priority runnable task always runs first.
    PriorityFuzz {
        /// Seed for the priority assignment.
        seed: u64,
    },
}

impl ExplorationPolicy {
    /// Short stable name, for labels and repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            ExplorationPolicy::Fifo => "fifo",
            ExplorationPolicy::SeededRandom { .. } => "seeded-random",
            ExplorationPolicy::PriorityFuzz { .. } => "priority-fuzz",
        }
    }
}

/// Progress report from a bounded executor run (see
/// `Simulation::run_bounded` / `Simulation::block_on_bounded`).
#[derive(Clone, Copy, Debug)]
pub struct RunProgress {
    /// Virtual time when the run stopped.
    pub now: SimTime,
    /// Task polls performed by this run (not cumulative).
    pub polls: u64,
    /// True if the run stopped because the simulation drained or its
    /// goal completed; false if the poll budget stopped it first.
    pub completed: bool,
}

/// The executor-side state backing an [`ExplorationPolicy`]: the policy
/// itself plus the RNG stream that drives random picks.
pub(crate) struct Explorer {
    policy: ExplorationPolicy,
    rng: SplitMix64,
}

impl Explorer {
    pub(crate) fn new(policy: ExplorationPolicy) -> Self {
        let rng = match policy {
            ExplorationPolicy::Fifo => SplitMix64::new(0),
            ExplorationPolicy::SeededRandom { seed } | ExplorationPolicy::PriorityFuzz { seed } => {
                SplitMix64::new(mix64(seed))
            }
        };
        Explorer { policy, rng }
    }

    pub(crate) fn policy(&self) -> ExplorationPolicy {
        self.policy
    }

    /// True for the default FIFO policy — the executor's fast path pops
    /// the ready-list head directly, consuming no RNG.
    pub(crate) fn is_fifo(&self) -> bool {
        matches!(self.policy, ExplorationPolicy::Fifo)
    }

    /// Picks the index of the next task to poll from a non-empty ready
    /// set, given as a dense slice of stable task slot ids in FIFO
    /// order. Index 0 preserves the FIFO schedule exactly.
    pub(crate) fn pick(&self, ready: &[usize]) -> usize {
        debug_assert!(!ready.is_empty(), "pick on an empty ready queue");
        match self.policy {
            ExplorationPolicy::Fifo => 0,
            ExplorationPolicy::SeededRandom { .. } => {
                if ready.len() == 1 {
                    0
                } else {
                    self.rng.next_below(ready.len() as u64) as usize
                }
            }
            ExplorationPolicy::PriorityFuzz { seed } => {
                let mut best = 0usize;
                let mut best_prio = 0u64;
                for (i, &id) in ready.iter().enumerate() {
                    let prio = mix64(seed ^ mix64(id as u64 + 1));
                    if i == 0 || prio > best_prio {
                        best = i;
                        best_prio = prio;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_always_picks_front() {
        let e = Explorer::new(ExplorationPolicy::Fifo);
        assert!(e.is_fifo());
        for _ in 0..32 {
            assert_eq!(e.pick(&[3, 1, 2]), 0);
        }
    }

    #[test]
    fn seeded_random_is_reproducible_and_covers() {
        let picks = |seed| {
            let e = Explorer::new(ExplorationPolicy::SeededRandom { seed });
            assert!(!e.is_fifo());
            (0..64).map(|_| e.pick(&[0, 1, 2, 3])).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7), "same seed, same pick sequence");
        assert_ne!(picks(7), picks(8), "different seeds diverge");
        let mut seen = [false; 4];
        for p in picks(7) {
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "all queue positions reachable");
    }

    #[test]
    fn seeded_random_skips_draw_on_singleton_queue() {
        // A single runnable task is not a choice point: the pick stream
        // must not advance, so schedules depend only on real decisions.
        let e = Explorer::new(ExplorationPolicy::SeededRandom { seed: 9 });
        let before: Vec<usize> = (0..8).map(|_| e.pick(&[0, 1])).collect();
        let f = Explorer::new(ExplorationPolicy::SeededRandom { seed: 9 });
        let mut after = Vec::new();
        for _ in 0..8 {
            assert_eq!(f.pick(&[5]), 0);
            after.push(f.pick(&[0, 1]));
        }
        assert_eq!(before, after);
    }

    #[test]
    fn priority_fuzz_orders_by_fixed_priorities() {
        let e = Explorer::new(ExplorationPolicy::PriorityFuzz { seed: 3 });
        // The winner among a fixed id set never changes...
        let first = e.pick(&[10, 11, 12, 13]);
        for _ in 0..16 {
            assert_eq!(e.pick(&[10, 11, 12, 13]), first);
        }
        // ...and removing it promotes a deterministic runner-up.
        let mut q: Vec<usize> = vec![10, 11, 12, 13];
        q.remove(first);
        let second = e.pick(&q);
        for _ in 0..16 {
            assert_eq!(e.pick(&q), second);
        }
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ExplorationPolicy::Fifo.name(), "fifo");
        assert_eq!(ExplorationPolicy::SeededRandom { seed: 1 }.name(), "seeded-random");
        assert_eq!(ExplorationPolicy::PriorityFuzz { seed: 1 }.name(), "priority-fuzz");
        assert_eq!(ExplorationPolicy::default(), ExplorationPolicy::Fifo);
    }
}
