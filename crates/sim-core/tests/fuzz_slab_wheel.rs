//! Seeded differential fuzz of the slab-refactor data structures against
//! ordered-map shadow models.
//!
//! The hot-path refactor (DESIGN.md §11) replaced the executor's
//! `BinaryHeap + BTreeMap` timer pair and the per-page `BTreeMap` indexes
//! with a hierarchical [`TimerWheel`], an open-addressed [`PageMap`] and a
//! free-list [`Slab`]. The refactor is pinned end-to-end by the golden
//! seam tests; these fuzz runs pin it structure-by-structure: for each
//! seeded op stream, the new structure must agree exactly — contents,
//! sorted iteration order, and timer fire order — with the `BTreeMap` /
//! `BTreeSet` it replaced. Everything is seeded [`SplitMix64`], so a
//! failure reproduces bit-for-bit from the printed seed.

use mage_sim::rng::SplitMix64;
use mage_sim::slab::{PageMap, Slab};
use mage_sim::wheel::TimerWheel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::task::{Wake, Waker};

const SEEDS: [u64; 4] = [1, 42, 0xDEAD_BEEF, 0x5EED_5EED_5EED_5EED];

#[test]
fn pagemap_matches_btreemap_shadow() {
    for seed in SEEDS {
        let rng = SplitMix64::new(seed);
        let mut map: PageMap<u64> = PageMap::new();
        let mut shadow: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..20_000u64 {
            // Narrow key space forces probe collisions, backward-shift
            // deletes and growth through several capacities.
            let key = rng.next_below(512);
            match rng.next_below(10) {
                0..=4 => {
                    let val = rng.next_u64();
                    assert_eq!(
                        map.insert(key, val),
                        shadow.insert(key, val),
                        "seed {seed} step {step}: insert({key}) disagreed"
                    );
                }
                5..=7 => {
                    assert_eq!(
                        map.remove(key),
                        shadow.remove(&key),
                        "seed {seed} step {step}: remove({key}) disagreed"
                    );
                }
                8 => {
                    let val = rng.next_u64();
                    let got = *map.get_or_insert_with(key, || val);
                    let want = *shadow.entry(key).or_insert(val);
                    assert_eq!(got, want, "seed {seed} step {step}: get_or_insert({key})");
                }
                _ => {
                    assert_eq!(
                        map.get(key),
                        shadow.get(&key),
                        "seed {seed} step {step}: get({key}) disagreed"
                    );
                    assert_eq!(map.contains_key(key), shadow.contains_key(&key));
                }
            }
            assert_eq!(map.len(), shadow.len(), "seed {seed} step {step}: len");
            if step % 512 == 0 {
                let got: Vec<(u64, u64)> = map.iter_sorted().into_iter().map(|(k, &v)| (k, v)).collect();
                let want: Vec<(u64, u64)> = shadow.iter().map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, want, "seed {seed} step {step}: sorted iteration diverged");
            }
        }
        let got: Vec<(u64, u64)> = map.iter_sorted().into_iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<(u64, u64)> = shadow.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "seed {seed}: final contents diverged");
    }
}

#[test]
fn slab_matches_shadow_and_recycles_deterministically() {
    for seed in SEEDS {
        let rng = SplitMix64::new(seed);
        let mut slab: Slab<u64> = Slab::new();
        let mut shadow: BTreeMap<u32, u64> = BTreeMap::new();
        let mut live: Vec<u32> = Vec::new();
        for step in 0..20_000u64 {
            if live.is_empty() || rng.next_below(10) < 6 {
                let val = rng.next_u64();
                let key = slab.insert(val);
                assert!(
                    shadow.insert(key, val).is_none(),
                    "seed {seed} step {step}: slab reused live key {key}"
                );
                live.push(key);
            } else {
                let idx = rng.next_below(live.len() as u64) as usize;
                let key = live.swap_remove(idx);
                assert_eq!(
                    slab.remove(key),
                    shadow.remove(&key),
                    "seed {seed} step {step}: remove({key}) disagreed"
                );
                assert!(!slab.contains(key));
                assert_eq!(slab.get(key), None, "stale key must read as vacant");
            }
            assert_eq!(slab.len(), shadow.len(), "seed {seed} step {step}: len");
            if step % 1024 == 0 {
                let got: Vec<u32> = slab.keys_sorted().collect();
                let want: Vec<u32> = shadow.keys().copied().collect();
                assert_eq!(got, want, "seed {seed} step {step}: key sets diverged");
                for &k in &want {
                    assert_eq!(slab.get(k), shadow.get(&k));
                }
            }
        }
    }
}

/// Records the firing timer's seq into a shared log when woken.
struct RecordWake {
    seq: u64,
    log: Arc<Mutex<Vec<u64>>>,
}

impl Wake for RecordWake {
    fn wake(self: Arc<Self>) {
        self.log.lock().unwrap().push(self.seq);
    }
}

#[test]
fn wheel_fire_order_matches_btreeset_shadow() {
    for seed in SEEDS {
        let rng = SplitMix64::new(seed);
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let mut wheel = TimerWheel::new();
        // Shadow of the executor's historical timer pair: ascending
        // (deadline, seq) is the contract the wheel must reproduce.
        let mut shadow: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut cur = 0u64;
        let mut seq = 0u64;
        let mut out: Vec<Waker> = Vec::new();
        for round in 0..2_000u64 {
            // Insert a burst of timers with deltas spanning wheel levels:
            // same-tick (0), small, and up to ~2^40 ns jumps.
            for _ in 0..rng.next_below(4) + 1 {
                let delta = match rng.next_below(4) {
                    0 => 0,
                    1 => rng.next_below(64),
                    2 => rng.next_below(1 << 18),
                    _ => rng.next_below(1 << 40),
                };
                let deadline = cur + delta;
                wheel.insert(
                    deadline,
                    seq,
                    Waker::from(Arc::new(RecordWake {
                        seq,
                        log: Arc::clone(&log),
                    })),
                );
                shadow.insert((deadline, seq));
                seq += 1;
            }
            assert_eq!(
                wheel.peek(),
                shadow.first().map(|&(d, _)| d),
                "seed {seed} round {round}: earliest deadline disagreed"
            );
            // Advance to a random horizon and fire everything due, the
            // way the executor drains a tick group.
            let horizon = cur + rng.next_below(1 << 20);
            while wheel.fire_next(horizon, &mut out) {
                for w in out.drain(..) {
                    w.wake();
                }
            }
            cur = horizon;
            let mut fired = log.lock().unwrap();
            let mut expected = Vec::new();
            while let Some(&(d, s)) = shadow.first() {
                if d > horizon {
                    break;
                }
                shadow.remove(&(d, s));
                expected.push(s);
            }
            assert_eq!(
                *fired, expected,
                "seed {seed} round {round}: fire order diverged from (deadline, seq)"
            );
            fired.clear();
            assert_eq!(wheel.len(), shadow.len(), "seed {seed} round {round}: len");
        }
    }
}
