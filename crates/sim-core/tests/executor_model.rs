//! Randomized tests for the simulation kernel: determinism, time
//! ordering, histogram accuracy, and lock fairness under seeded random
//! schedules.

use std::cell::RefCell;
use std::rc::Rc;

use mage_sim::rng::SplitMix64;
use mage_sim::stats::Histogram;
use mage_sim::sync::SimMutex;
use mage_sim::Simulation;

/// Any set of sleeping tasks completes in deadline order, ties broken by
/// spawn order, and the simulation ends exactly at the latest deadline.
#[test]
fn sleeps_complete_in_time_order() {
    let rng = SplitMix64::new(0x51EE_9001);
    for _ in 0..32 {
        let delays: Vec<u64> = (0..1 + rng.next_below(49))
            .map(|_| rng.next_below(10_000))
            .collect();
        let sim = Simulation::new();
        let h = sim.handle();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let h = h.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.sleep(d).await;
                log.borrow_mut().push((h.now().as_nanos(), i));
            });
        }
        let end = sim.run();
        assert_eq!(end.as_nanos(), delays.iter().copied().max().unwrap_or(0));
        let log = log.borrow();
        // Completion times weakly increase; ties resolved by spawn index.
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert_eq!(delays[w[0].1], delays[w[1].1]);
                assert!(w[0].1 < w[1].1, "tie must respect spawn order");
            }
        }
        // Each task completed exactly at its deadline.
        for &(t, i) in log.iter() {
            assert_eq!(t, delays[i]);
        }
    }
}

/// Two identical simulations produce identical event traces.
#[test]
fn executor_is_deterministic() {
    let rng = SplitMix64::new(0xDE7E_3313);
    for _ in 0..32 {
        let delays: Vec<u64> = (0..1 + rng.next_below(39))
            .map(|_| rng.next_below(5_000))
            .collect();
        let trace = |delays: &[u64]| {
            let sim = Simulation::new();
            let h = sim.handle();
            let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let h = h.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    h.sleep(d % 97).await;
                    h.yield_now().await;
                    h.sleep(d / 97).await;
                    log.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        };
        assert_eq!(trace(&delays), trace(&delays));
    }
}

/// The mutex admits contenders in exact lock() call order no matter how
/// their arrival times and hold times interleave.
#[test]
fn mutex_is_strictly_fifo() {
    let rng = SplitMix64::new(0xF1F0_4242);
    for _ in 0..32 {
        let arrivals: Vec<(u64, u64)> = (0..2 + rng.next_below(28))
            .map(|_| (rng.next_below(1_000), 1 + rng.next_below(499)))
            .collect();
        let sim = Simulation::new();
        let h = sim.handle();
        let m = Rc::new(SimMutex::new(h.clone(), ()));
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let requested: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &(arrive, hold)) in arrivals.iter().enumerate() {
            let (h, m) = (h.clone(), Rc::clone(&m));
            let (order, requested) = (Rc::clone(&order), Rc::clone(&requested));
            sim.spawn(async move {
                h.sleep(arrive).await;
                requested.borrow_mut().push(i);
                let fut = m.lock();
                let _g = fut.await;
                order.borrow_mut().push(i);
                h.sleep(hold).await;
            });
        }
        sim.run();
        assert_eq!(&*order.borrow(), &*requested.borrow());
    }
}

/// Histogram quantiles stay within the documented ~3% relative error of
/// the exact empirical quantile.
#[test]
fn histogram_quantile_error_bounded() {
    let rng = SplitMix64::new(0x4157_0611);
    for _ in 0..64 {
        let mut values: Vec<u64> = (0..10 + rng.next_below(490))
            .map(|_| 1 + rng.next_below(9_999_999))
            .collect();
        let q = (rng.next_f64() * 0.99 + 0.01).min(1.0);
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let approx = h.quantile(q) as f64;
        assert!(
            approx >= exact * 0.96 && approx <= exact * 1.04 + 1.0,
            "quantile({q}) = {approx} vs exact {exact}"
        );
    }
}
