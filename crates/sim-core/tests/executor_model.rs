//! Property tests for the simulation kernel: determinism, time ordering,
//! histogram accuracy, and lock fairness under arbitrary schedules.

use std::cell::RefCell;
use std::rc::Rc;

use mage_sim::stats::Histogram;
use mage_sim::sync::SimMutex;
use mage_sim::Simulation;
use proptest::prelude::*;

proptest! {
    /// Any set of sleeping tasks completes in deadline order, ties broken
    /// by spawn order, and the simulation ends exactly at the latest
    /// deadline.
    #[test]
    fn sleeps_complete_in_time_order(delays in proptest::collection::vec(0u64..10_000, 1..50)) {
        let sim = Simulation::new();
        let h = sim.handle();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let h = h.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.sleep(d).await;
                log.borrow_mut().push((h.now().as_nanos(), i));
            });
        }
        let end = sim.run();
        prop_assert_eq!(end.as_nanos(), delays.iter().copied().max().unwrap_or(0));
        let log = log.borrow();
        // Completion times weakly increase; ties resolved by spawn index.
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                let d0 = delays[w[0].1];
                let d1 = delays[w[1].1];
                prop_assert_eq!(d0, d1);
                prop_assert!(w[0].1 < w[1].1, "tie must respect spawn order");
            }
        }
        // Each task completed exactly at its deadline.
        for &(t, i) in log.iter() {
            prop_assert_eq!(t, delays[i]);
        }
    }

    /// Two identical simulations produce identical event traces.
    #[test]
    fn executor_is_deterministic(delays in proptest::collection::vec(0u64..5_000, 1..40)) {
        let trace = |delays: &[u64]| {
            let sim = Simulation::new();
            let h = sim.handle();
            let log: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let h = h.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    h.sleep(d % 97).await;
                    h.yield_now().await;
                    h.sleep(d / 97).await;
                    log.borrow_mut().push(i);
                });
            }
            sim.run();
            let result = log.borrow().clone();
            result
        };
        prop_assert_eq!(trace(&delays), trace(&delays));
    }

    /// The mutex admits contenders in exact lock() call order no matter
    /// how their arrival times and hold times interleave.
    #[test]
    fn mutex_is_strictly_fifo(
        arrivals in proptest::collection::vec((0u64..1_000, 1u64..500), 2..30)
    ) {
        let sim = Simulation::new();
        let h = sim.handle();
        let m = Rc::new(SimMutex::new(h.clone(), ()));
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let requested: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &(arrive, hold)) in arrivals.iter().enumerate() {
            let (h, m) = (h.clone(), Rc::clone(&m));
            let (order, requested) = (Rc::clone(&order), Rc::clone(&requested));
            sim.spawn(async move {
                h.sleep(arrive).await;
                requested.borrow_mut().push(i);
                let fut = m.lock();
                let _g = fut.await;
                order.borrow_mut().push(i);
                h.sleep(hold).await;
            });
        }
        sim.run();
        prop_assert_eq!(&*order.borrow(), &*requested.borrow());
    }

    /// Histogram quantiles stay within the documented ~3% relative error
    /// of the exact empirical quantile.
    #[test]
    fn histogram_quantile_error_bounded(
        mut values in proptest::collection::vec(1u64..10_000_000, 10..500),
        q in 0.01f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let approx = h.quantile(q) as f64;
        prop_assert!(
            approx >= exact * 0.96 && approx <= exact * 1.04 + 1.0,
            "quantile({}) = {} vs exact {}", q, approx, exact
        );
    }
}
