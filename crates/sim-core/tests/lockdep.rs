//! Lockdep behaviour tests: ordering cycles and hold-across-sleep are
//! caught, reported with full acquisition chains, and — because the
//! executor is deterministic — reproduce identically across runs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use mage_sim::sync::SimMutex;
use mage_sim::sync_ext::SimRwLock;
use mage_sim::Simulation;

/// Runs `f` and returns the panic payload message it must produce.
fn panic_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is not a string")
}

/// Two tasks acquiring {A, B} in opposite orders is the canonical
/// inversion; lockdep must catch it at the second-order acquisition and
/// name both chains.
fn ab_ba_inversion() -> String {
    panic_message(|| {
        let sim = Simulation::new();
        let h = sim.handle();
        let a = Rc::new(SimMutex::new_named(h.clone(), "lock-a", ()));
        let b = Rc::new(SimMutex::new_named(h.clone(), "lock-b", ()));
        {
            let (h, a, b) = (h.clone(), Rc::clone(&a), Rc::clone(&b));
            sim.spawn(async move {
                let _ga = a.lock().await;
                h.sleep(10).await;
                let _gb = b.lock().await;
            });
        }
        {
            let (h, a, b) = (h.clone(), Rc::clone(&a), Rc::clone(&b));
            sim.spawn(async move {
                h.sleep(5).await;
                let _gb = b.lock().await;
                h.sleep(10).await;
                let _ga = a.lock().await;
            });
        }
        sim.run();
    })
}

#[test]
fn ab_ba_cycle_is_detected_with_chains() {
    let msg = ab_ba_inversion();
    assert!(msg.contains("lock ordering cycle"), "got: {msg}");
    // Both classes appear, with the acquisition sites of both chains.
    assert!(msg.contains("lock-a"), "got: {msg}");
    assert!(msg.contains("lock-b"), "got: {msg}");
    assert!(msg.contains("tests/lockdep.rs"), "chains must carry lock() sites: {msg}");
    assert!(msg.contains("current chain"), "got: {msg}");
}

#[test]
fn cycle_report_is_deterministic_across_runs() {
    // Same seed-free program, two runs: the deterministic executor must
    // produce byte-identical reports (same task, same sites, same chain).
    assert_eq!(ab_ba_inversion(), ab_ba_inversion());
}

#[test]
fn consistent_order_is_accepted() {
    let sim = Simulation::new();
    let h = sim.handle();
    let a = Rc::new(SimMutex::new_named(h.clone(), "ord-a", ()));
    let b = Rc::new(SimMutex::new_named(h.clone(), "ord-b", ()));
    for _ in 0..3 {
        let (h, a, b) = (h.clone(), Rc::clone(&a), Rc::clone(&b));
        sim.spawn(async move {
            let _ga = a.lock().await;
            h.sleep(7).await;
            let _gb = b.lock().await;
            h.sleep(3).await;
        });
    }
    sim.run();
    assert_eq!(h.lockdep().edges(), 1, "one ord-a -> ord-b edge");
}

#[test]
fn three_lock_cycle_is_detected() {
    // A -> B, B -> C, then C -> A closes a length-3 cycle.
    let msg = panic_message(|| {
        let sim = Simulation::new();
        let h = sim.handle();
        let locks: Vec<Rc<SimMutex<()>>> = ["cyc-a", "cyc-b", "cyc-c"]
            .iter()
            .map(|n| Rc::new(SimMutex::new_named(h.clone(), n, ())))
            .collect();
        for (first, second) in [(0usize, 1usize), (1, 2), (2, 0)] {
            let h = h.clone();
            let x = Rc::clone(&locks[first]);
            let y = Rc::clone(&locks[second]);
            sim.spawn(async move {
                let _gx = x.lock().await;
                h.sleep(1).await;
                let _gy = y.lock().await;
                h.sleep(1).await;
            });
        }
        sim.run();
    });
    assert!(msg.contains("lock ordering cycle"), "got: {msg}");
    assert!(
        msg.contains("cyc-a") && msg.contains("cyc-b") && msg.contains("cyc-c"),
        "all three classes in the report: {msg}"
    );
}

#[test]
fn rwlock_participates_in_ordering() {
    let msg = panic_message(|| {
        let sim = Simulation::new();
        let h = sim.handle();
        let rw = Rc::new(SimRwLock::new_named(h.clone(), "rw-map"));
        let m = Rc::new(SimMutex::new_named(h.clone(), "plain-lock", ()));
        {
            let (h, rw, m) = (h.clone(), Rc::clone(&rw), Rc::clone(&m));
            sim.spawn(async move {
                let _gr = rw.read().await;
                h.sleep(10).await;
                let _gm = m.lock().await;
            });
        }
        {
            let (h, rw, m) = (h.clone(), Rc::clone(&rw), Rc::clone(&m));
            sim.spawn(async move {
                h.sleep(5).await;
                let _gm = m.lock().await;
                h.sleep(10).await;
                let _gw = rw.write().await;
            });
        }
        sim.run();
    });
    assert!(msg.contains("lock ordering cycle"), "got: {msg}");
    assert!(msg.contains("rw-map") && msg.contains("plain-lock"), "got: {msg}");
}

/// Holding a flagged guard across a time-advancing await panics with the
/// held chain; unflagged guards may sleep (service-time modeling).
fn hold_across_sleep() -> String {
    panic_message(|| {
        let sim = Simulation::new();
        let h = sim.handle();
        let m = Rc::new(SimMutex::new_named(h.clone(), "no-sleep-lock", 0u64));
        m.forbid_hold_across_sleep();
        let h2 = h.clone();
        sim.spawn(async move {
            let _g = m.lock().await;
            h2.sleep(100).await; // flagged guard held across the advance
        });
        sim.run();
    })
}

#[test]
fn flagged_guard_across_sleep_is_detected() {
    let msg = hold_across_sleep();
    assert!(msg.contains("held across virtual-time advance"), "got: {msg}");
    assert!(msg.contains("no-sleep-lock"), "got: {msg}");
    assert!(msg.contains("held chain"), "got: {msg}");
    assert!(msg.contains("tests/lockdep.rs"), "chain must carry the lock() site: {msg}");
}

#[test]
fn hold_across_sleep_report_is_deterministic() {
    assert_eq!(hold_across_sleep(), hold_across_sleep());
}

#[test]
fn unflagged_guard_may_sleep() {
    // The default: guards model critical-section service time by
    // sleeping while held. Must not trip lockdep.
    let sim = Simulation::new();
    let h = sim.handle();
    let m = Rc::new(SimMutex::new_named(h.clone(), "service-lock", ()));
    for _ in 0..4 {
        let (h, m) = (h.clone(), Rc::clone(&m));
        sim.spawn(async move {
            let _g = m.lock().await;
            h.sleep(100).await;
        });
    }
    assert_eq!(sim.run().as_nanos(), 400);
}

#[test]
fn same_class_nesting_is_allowed() {
    // Shard arrays share one class; nested same-class acquisition is an
    // accepted ordered pattern.
    let sim = Simulation::new();
    let h = sim.handle();
    let s1 = Rc::new(SimMutex::new_named(h.clone(), "shard", ()));
    let s2 = Rc::new(SimMutex::new_named(h.clone(), "shard", ()));
    sim.block_on(async move {
        let _g1 = s1.lock().await;
        let _g2 = s2.lock().await;
    });
    assert_eq!(h.lockdep().classes(), 1);
}

#[test]
fn release_unwinds_ordering_state() {
    // A then (drop A) then B, and B then (drop B) then A, in sequence on
    // one task: no overlap, no edge, no cycle.
    let sim = Simulation::new();
    let h = sim.handle();
    let a = Rc::new(SimMutex::new_named(h.clone(), "seq-a", ()));
    let b = Rc::new(SimMutex::new_named(h.clone(), "seq-b", ()));
    sim.block_on(async move {
        {
            let _ga = a.lock().await;
        }
        {
            let _gb = b.lock().await;
        }
        {
            let _gb = b.lock().await;
        }
        {
            let _ga = a.lock().await;
        }
    });
    assert_eq!(h.lockdep().edges(), 0, "sequential holds create no edges");
}
