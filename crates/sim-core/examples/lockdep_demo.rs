//! Demonstrates lockdep catching a classic two-lock ordering inversion.
//! Run with `cargo run -p mage-sim --example lockdep_demo` — it panics
//! with both acquisition chains, identically on every run.

use std::rc::Rc;

use mage_sim::sync::SimMutex;
use mage_sim::Simulation;

fn main() {
    let sim = Simulation::new();
    let h = sim.handle();
    let fault_path = Rc::new(SimMutex::new_named(h.clone(), "demo.fault-path", ()));
    let evict_path = Rc::new(SimMutex::new_named(h.clone(), "demo.evict-path", ()));

    {
        let (h, a, b) = (h.clone(), Rc::clone(&fault_path), Rc::clone(&evict_path));
        sim.spawn(async move {
            let _fp = a.lock().await;
            h.sleep(10).await;
            let _ep = b.lock().await;
        });
    }
    {
        let (h, a, b) = (h.clone(), Rc::clone(&fault_path), Rc::clone(&evict_path));
        sim.spawn(async move {
            h.sleep(5).await;
            let _ep = b.lock().await;
            h.sleep(10).await;
            let _fp = a.lock().await;
        });
    }
    sim.run();
    println!("unreachable: lockdep should have panicked");
}
