//! Workload generators and experiment runners for the MAGE reproduction.
//!
//! Far-memory behaviour is determined by the page-granularity access
//! *pattern* and the compute-per-access ratio, not by the application's
//! arithmetic (DESIGN.md §1), so each of the paper's applications
//! (Table 1) is modeled as an access-stream generator:
//!
//! | paper application | generator | pattern |
//! |---|---|---|
//! | GapBS page rank (Kronecker) | [`WorkloadKind::RandomGraph`] | uniform-random pages, light compute |
//! | XSBench (nuclide grid) | [`WorkloadKind::XsBench`] | uniform-random pages, heavy compute |
//! | Sequential scan (dataframe) | [`WorkloadKind::SeqScan`] | per-thread sequential shards |
//! | GUPS (phase change) | [`WorkloadKind::Gups`] | zipf over 80% region, then a disjoint 20% region |
//! | Metis map/reduce | [`WorkloadKind::Metis`] | sequential map over input + scattered writes, then random reduce |
//! | sequential-read microbench | [`WorkloadKind::SeqFault`] | every access faults (§3.2 setup) |
//!
//! [`runner`] drives the closed-loop batch experiments; [`memcached`]
//! implements the open-loop latency-critical service of §6.3.

pub mod ablation;
pub mod memcached;
pub mod patterns;
pub mod runner;

pub use ablation::{run_ablation, PolicyCell};
pub use patterns::{Op, Stream, WorkloadKind, Zipf};
pub use runner::{run_batch, RunConfig, RunReport};
