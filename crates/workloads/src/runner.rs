//! Experiment runners: closed-loop batch jobs, open-loop fault storms,
//! and raw-RDMA load generators.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mage::{Access, FarMemory, MachineParams, SystemConfig};
use mage_mmu::{CoreId, Topology};
use mage_sim::rng::SplitMix64;
use mage_sim::stats::{Counter, Histogram};
use mage_sim::time::{Nanos, SECS};
use mage_sim::Simulation;

use crate::patterns::{Stream, WorkloadKind};

/// Configuration of one closed-loop batch experiment.
#[derive(Clone)]
pub struct RunConfig {
    /// The system under test.
    pub system: SystemConfig,
    /// Access pattern.
    pub kind: WorkloadKind,
    /// Application threads (thread *i* runs on core *i*).
    pub threads: usize,
    /// Working-set size in pages.
    pub wss_pages: u64,
    /// Fraction of the WSS resident locally (1 − offload ratio).
    pub local_ratio: f64,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Unmeasured operations per thread executed before the measurement
    /// window (lets cache residency converge to the access distribution;
    /// statistics and the clock origin are reset afterwards).
    pub warmup_ops: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Start with every page remote (§3.2 fault-storm setup).
    pub all_remote: bool,
    /// Switch phase-change workloads to phase 1 at this virtual time.
    pub phase_change_at_ns: Option<Nanos>,
    /// Switch phase-change workloads to phase 1 after this many ops per
    /// thread (Metis-style explicit barrier).
    pub phase_change_at_op: Option<u64>,
    /// Record an ops-throughput timeline at this interval.
    pub sample_interval_ns: Option<Nanos>,
    /// Machine topology.
    pub topo: Topology,
}

impl RunConfig {
    /// A testbed-shaped run with sensible defaults.
    pub fn new(
        system: SystemConfig,
        kind: WorkloadKind,
        threads: usize,
        wss_pages: u64,
        local_ratio: f64,
    ) -> Self {
        RunConfig {
            system,
            kind,
            threads,
            wss_pages,
            local_ratio,
            ops_per_thread: (wss_pages / threads.max(1) as u64).max(1_000),
            warmup_ops: 0,
            seed: 42,
            all_remote: false,
            phase_change_at_ns: None,
            phase_change_at_op: None,
            sample_interval_ns: None,
            topo: Topology::xeon_6348_dual(),
        }
    }

    fn local_pages(&self) -> u64 {
        if self.local_ratio >= 0.999 {
            // All-local runs need headroom above the watermarks (which
            // scale with both the eviction batch and memory size) so that
            // nothing ever evicts.
            self.wss_pages
                + self.wss_pages / 16
                + 3 * (self.system.evictors as u64) * (self.system.eviction_batch as u64)
                + 256
        } else {
            ((self.wss_pages as f64 * self.local_ratio) as u64).max(512)
        }
    }
}

/// Results of one batch run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// System name.
    pub system: &'static str,
    /// Virtual runtime of the job (start → slowest thread done), ns.
    pub runtime_ns: Nanos,
    /// Total application operations completed.
    pub total_ops: u64,
    /// Major faults observed.
    pub major_faults: u64,
    /// Per-thread major-fault counts (feeds the §3.1 ideal model).
    pub faults_per_thread: Vec<u64>,
    /// Mean major-fault latency, ns.
    pub fault_mean_ns: f64,
    /// p50 major-fault latency, ns.
    pub fault_p50_ns: u64,
    /// p99 major-fault latency, ns.
    pub fault_p99_ns: u64,
    /// Per-component fault breakdown means.
    pub breakdown: mage::BreakdownMeans,
    /// Synchronous evictions performed on the fault path.
    pub sync_evictions: u64,
    /// Pages evicted in the background.
    pub evicted_pages: u64,
    /// Mean TLB-shootdown latency, ns.
    pub shootdown_mean_ns: f64,
    /// Mean per-IPI latency, ns.
    pub ipi_mean_ns: f64,
    /// Achieved RDMA read bandwidth, Gbps.
    pub read_gbps: f64,
    /// Achieved RDMA write bandwidth, Gbps.
    pub write_gbps: f64,
    /// Pages prefetched.
    pub prefetches: u64,
    /// Ops-per-bucket timeline, if sampling was enabled.
    pub timeline: Vec<(Nanos, u64)>,
    /// Per-thread instant of the phase-0 → phase-1 switch (0 if none).
    pub phase_switch_ns: Vec<Nanos>,
    /// Faults that cancelled an in-flight eviction (refault dedup).
    pub evict_cancels: u64,
    /// Time faulting threads spent waiting for free pages (count, mean).
    pub free_wait_count: u64,
    /// Mean free-page wait, ns.
    pub free_wait_mean_ns: f64,
    /// RDMA transfers re-posted after an injected fault.
    pub transfer_retries: u64,
    /// Transfers that exhausted the retry budget.
    pub transfer_failures: u64,
    /// Fault-ins aborted after retry exhaustion.
    pub aborted_faults: u64,
    /// Eviction victims re-inserted after a failed writeback.
    pub requeued_victims: u64,
}

impl RunReport {
    /// Application throughput in M ops/s.
    pub fn mops(&self) -> f64 {
        if self.runtime_ns == 0 {
            return 0.0;
        }
        self.total_ops as f64 * 1e3 / self.runtime_ns as f64
    }

    /// Major-fault throughput in M faults/s.
    pub fn fault_mops(&self) -> f64 {
        if self.runtime_ns == 0 {
            return 0.0;
        }
        self.major_faults as f64 * 1e3 / self.runtime_ns as f64
    }

    /// Jobs/hour for a batch job of this runtime.
    pub fn jobs_per_hour(&self) -> f64 {
        if self.runtime_ns == 0 {
            return 0.0;
        }
        3_600.0e9 / self.runtime_ns as f64
    }
}

/// Runs one closed-loop batch experiment to completion.
pub fn run_batch(cfg: &RunConfig) -> RunReport {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: cfg.topo,
        app_threads: cfg.threads,
        local_pages: cfg.local_pages(),
        remote_pages: cfg.wss_pages + 1024,
        tlb_entries: 1_536,
        seed: cfg.seed,
    };
    let engine = FarMemory::launch(sim.handle(), cfg.system.clone(), params);
    let vma = engine.mmap(cfg.wss_pages);
    if cfg.all_remote {
        engine.populate_all_remote(&vma);
    } else {
        engine.populate(&vma);
    }

    let ops_counter = Rc::new(Counter::new());
    let phase = Rc::new(Cell::new(0usize));
    let done = Rc::new(Cell::new(0usize));
    let timeline = Rc::new(RefCell::new(Vec::new()));
    let warmed = Rc::new(Cell::new(0usize));
    let start_line = Rc::new(mage_sim::sync::WaitQueue::new());
    let t_start = Rc::new(Cell::new(0u64));

    // Phase-change trigger by virtual time (GUPS).
    if let Some(at) = cfg.phase_change_at_ns {
        let h = sim.handle();
        let p = Rc::clone(&phase);
        sim.spawn(async move {
            h.sleep(at).await;
            p.set(1);
        });
    }

    // Throughput timeline sampler.
    if let Some(interval) = cfg.sample_interval_ns {
        let h = sim.handle();
        let ops = Rc::clone(&ops_counter);
        let tl = Rc::clone(&timeline);
        let done = Rc::clone(&done);
        let threads = cfg.threads;
        sim.spawn(async move {
            let mut last = 0u64;
            while done.get() < threads {
                h.sleep(interval).await;
                let cur = ops.get();
                tl.borrow_mut().push((h.now().as_nanos(), cur - last));
                last = cur;
            }
        });
    }

    // Application threads.
    let mut joins = Vec::new();
    for t in 0..cfg.threads {
        let engine = Rc::clone(&engine);
        let h = sim.handle();
        let ops_counter = Rc::clone(&ops_counter);
        let phase = Rc::clone(&phase);
        let done = Rc::clone(&done);
        let mut stream = Stream::new(cfg.kind, t, cfg.threads, cfg.wss_pages, cfg.seed);
        let ops = cfg.ops_per_thread;
        let warmup = cfg.warmup_ops;
        let base = vma.start_vpn;
        let phase_at_op = cfg.phase_change_at_op;
        let warmed = Rc::clone(&warmed);
        let start_line = Rc::clone(&start_line);
        let t_start = Rc::clone(&t_start);
        let threads = cfg.threads;
        joins.push(sim.spawn(async move {
            let core = CoreId(t as u32);
            // Warmup: converge residency, then rendezvous at a start line
            // where the last thread resets the statistics.
            if warmup > 0 {
                for _ in 0..warmup {
                    let op = stream.next_op();
                    engine.access(core, base + op.page, op.write).await;
                    let compute = engine.inflate_compute(op.compute_ns);
                    if compute > 0 {
                        h.sleep(compute).await;
                    }
                }
            }
            warmed.set(warmed.get() + 1);
            if warmed.get() == threads {
                engine.stats().reset();
                t_start.set(h.now().as_nanos());
                start_line.wake_all();
            } else {
                start_line.wait().await;
            }
            let mut faults = 0u64;
            let mut switch_ns = 0u64;
            for i in 0..ops {
                if let Some(at) = phase_at_op {
                    if i == at {
                        stream.set_phase(1);
                        switch_ns = h.now().as_nanos();
                    }
                }
                if stream.kind().has_phases()
                    && phase.get() != stream.phase()
                    && phase_at_op.is_none()
                {
                    stream.set_phase(phase.get());
                    switch_ns = h.now().as_nanos();
                }
                let op = stream.next_op();
                let access = engine.access(core, base + op.page, op.write).await;
                if matches!(access, Access::Major { .. }) {
                    faults += 1;
                }
                let compute = engine.inflate_compute(op.compute_ns);
                if compute > 0 {
                    h.sleep(compute).await;
                }
                ops_counter.inc();
            }
            done.set(done.get() + 1);
            (faults, switch_ns, h.now().as_nanos())
        }));
    }

    let per_thread = sim.block_on(async move {
        let mut out = Vec::new();
        for j in joins {
            out.push(j.await);
        }
        out
    });
    engine.shutdown();

    let runtime_ns = per_thread
        .iter()
        .map(|&(_, _, end)| end)
        .max()
        .unwrap_or(0)
        .saturating_sub(t_start.get());
    let faults_per_thread: Vec<u64> = per_thread.iter().map(|&(f, _, _)| f).collect();
    let phase_switch_ns: Vec<Nanos> = per_thread.iter().map(|&(_, s, _)| s).collect();
    report_from(
        &engine,
        cfg,
        runtime_ns,
        ops_counter.get(),
        faults_per_thread,
        phase_switch_ns,
        timeline,
    )
}

fn report_from(
    engine: &FarMemory,
    cfg: &RunConfig,
    runtime_ns: Nanos,
    total_ops: u64,
    faults_per_thread: Vec<u64>,
    phase_switch_ns: Vec<Nanos>,
    timeline: Rc<RefCell<Vec<(Nanos, u64)>>>,
) -> RunReport {
    let s = engine.stats();
    let ipi = engine.interrupts().stats();
    let free_wait = s.free_wait.borrow().clone();
    RunReport {
        system: cfg.system.name,
        runtime_ns,
        total_ops,
        major_faults: s.major_faults.get(),
        faults_per_thread,
        fault_mean_ns: s.fault_latency.mean(),
        fault_p50_ns: s.fault_latency.p50(),
        fault_p99_ns: s.fault_latency.p99(),
        breakdown: s.breakdown.means(),
        sync_evictions: s.sync_evictions.get(),
        evicted_pages: s.evicted_pages.get() + s.sync_evicted_pages.get(),
        shootdown_mean_ns: ipi.shootdown_latency.mean(),
        ipi_mean_ns: ipi.ipi_latency.mean(),
        read_gbps: engine.nic().read_gbps(runtime_ns),
        write_gbps: engine.nic().write_gbps(runtime_ns),
        prefetches: s.prefetches.get(),
        timeline: timeline.borrow().clone(),
        phase_switch_ns,
        evict_cancels: s.evict_cancels.get(),
        free_wait_count: free_wait.count(),
        free_wait_mean_ns: free_wait.mean(),
        transfer_retries: s.transfer_retries.get(),
        transfer_failures: s.transfer_failures.get(),
        aborted_faults: s.aborted_faults.get(),
        requeued_victims: s.requeued_victims.get(),
    }
}

/// Report of an open-loop experiment.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Offered load, M ops/s.
    pub offered_mops: f64,
    /// Achieved completion rate, M ops/s.
    pub achieved_mops: f64,
    /// Mean request latency, ns.
    pub mean_ns: f64,
    /// p50 request latency, ns.
    pub p50_ns: u64,
    /// p99 request latency, ns.
    pub p99_ns: u64,
    /// Synchronous evictions during the run.
    pub sync_evictions: u64,
    /// Achieved read bandwidth, Gbps.
    pub read_gbps: f64,
    /// Requests that stalled waiting for a free page.
    pub free_waits: u64,
    /// Longest free-page stall, ns.
    pub free_wait_max_ns: u64,
    /// p99 of the engine-level fault latency (excluding request queueing).
    pub fault_p99_ns: u64,
}

/// Drives the fault path open-loop at `rate_mops` for `duration_ns`,
/// touching fresh (remote) pages in sequence (Fig. 15 setup).
pub fn run_open_loop_faults(
    system: SystemConfig,
    threads: usize,
    wss_pages: u64,
    local_ratio: f64,
    rate_mops: f64,
    duration_ns: Nanos,
    seed: u64,
) -> OpenLoopReport {
    let sim = Simulation::new();
    let local_pages = ((wss_pages as f64 * local_ratio) as u64).max(1024);
    let params = MachineParams {
        topo: Topology::xeon_6348_dual(),
        app_threads: threads,
        local_pages,
        remote_pages: wss_pages + 1024,
        tlb_entries: 1_536,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(wss_pages);
    // Normal placement: local memory starts full of resident pages so the
    // driver operates in eviction steady state from the first request
    // (the paper's Fig. 15 regime), not in a one-off fill phase.
    engine.populate(&vma);
    let first_remote = engine.accounting().resident_pages();
    let remote_span = wss_pages - first_remote;

    let latency = Rc::new(Histogram::new());
    let completed = Rc::new(Counter::new());
    let issued = Rc::new(Counter::new());

    // The generator issues requests with exponential inter-arrivals,
    // spreading them round-robin over the worker cores.
    let h = sim.handle();
    let gen_engine = Rc::clone(&engine);
    let gen_latency = Rc::clone(&latency);
    let gen_completed = Rc::clone(&completed);
    let gen_issued = Rc::clone(&issued);
    let base = vma.start_vpn;
    sim.spawn(async move {
        let rng = SplitMix64::new(seed);
        let mean_gap_ns = 1e3 / rate_mops; // ns between arrivals
        let mut next_page = 0u64;
        let mut core = 0u32;
        while h.now().as_nanos() < duration_ns {
            let u = rng.next_f64();
            let gap = (-(1.0 - u).ln() * mean_gap_ns).max(1.0) as u64;
            h.sleep(gap).await;
            let page = base + first_remote + (next_page % remote_span);
            next_page += 1;
            let c = CoreId(core % threads as u32);
            core += 1;
            gen_issued.inc();
            let e = Rc::clone(&gen_engine);
            let lat = Rc::clone(&gen_latency);
            let comp = Rc::clone(&gen_completed);
            let h2 = h.clone();
            h.spawn(async move {
                let t0 = h2.now();
                e.access(c, page, false).await;
                lat.record(h2.now() - t0);
                comp.inc();
            });
        }
    });

    let h = sim.handle();
    sim.block_on(async move { h.sleep(duration_ns + 2 * SECS / 100).await });
    engine.shutdown();

    let free_wait = engine.stats().free_wait.borrow().clone();
    OpenLoopReport {
        offered_mops: rate_mops,
        achieved_mops: completed.get() as f64 * 1e3 / duration_ns as f64,
        mean_ns: latency.mean(),
        p50_ns: latency.p50(),
        p99_ns: latency.p99(),
        sync_evictions: engine.stats().sync_evictions.get(),
        read_gbps: engine.nic().read_gbps(duration_ns),
        free_waits: free_wait.count(),
        free_wait_max_ns: free_wait.max(),
        fault_p99_ns: engine.stats().fault_latency.p99(),
    }
}

/// Raw RDMA reads at `rate_mops` with 4 background writer threads
/// saturating the write direction (the Fig. 15 "RDMA" baseline).
pub fn run_raw_rdma(rate_mops: f64, duration_ns: Nanos, seed: u64) -> OpenLoopReport {
    use mage_fabric::{Nic, NicConfig};
    let sim = Simulation::new();
    let nic = Rc::new(Nic::new(sim.handle(), NicConfig::bluefield2_200g()));
    let latency = Rc::new(Histogram::new());
    let completed = Rc::new(Counter::new());

    // Background writers: keep the tx direction busy, mirroring eviction
    // traffic ("4 background threads constantly performing RDMA writes").
    for _ in 0..4 {
        let nic = Rc::clone(&nic);
        let h = sim.handle();
        sim.spawn(async move {
            while h.now().as_nanos() < duration_ns {
                let _ = nic.post_write(4096).await;
            }
        });
    }

    let h = sim.handle();
    let gen_nic = Rc::clone(&nic);
    let gen_latency = Rc::clone(&latency);
    let gen_completed = Rc::clone(&completed);
    sim.spawn(async move {
        let rng = SplitMix64::new(seed);
        let mean_gap_ns = 1e3 / rate_mops;
        while h.now().as_nanos() < duration_ns {
            let u = rng.next_f64();
            let gap = (-(1.0 - u).ln() * mean_gap_ns).max(1.0) as u64;
            h.sleep(gap).await;
            let nic = Rc::clone(&gen_nic);
            let lat = Rc::clone(&gen_latency);
            let comp = Rc::clone(&gen_completed);
            let h2 = h.clone();
            h.spawn(async move {
                let t0 = h2.now();
                let _ = nic.post_read(4096).await;
                lat.record(h2.now() - t0);
                comp.inc();
            });
        }
    });

    let h = sim.handle();
    sim.block_on(async move { h.sleep(duration_ns + SECS / 100).await });

    OpenLoopReport {
        offered_mops: rate_mops,
        achieved_mops: completed.get() as f64 * 1e3 / duration_ns as f64,
        mean_ns: latency.mean(),
        p50_ns: latency.p50(),
        p99_ns: latency.p99(),
        sync_evictions: 0,
        read_gbps: nic.read_gbps(duration_ns),
        free_waits: 0,
        free_wait_max_ns: 0,
        fault_p99_ns: latency.p99(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(system: SystemConfig, kind: WorkloadKind, local_ratio: f64) -> RunConfig {
        let mut cfg = RunConfig::new(system, kind, 4, 8_192, local_ratio);
        cfg.ops_per_thread = 4_000;
        cfg.topo = Topology::single_socket(10);
        cfg
    }

    #[test]
    fn all_local_run_has_no_faults() {
        let report = run_batch(&tiny(
            SystemConfig::mage_lib(),
            WorkloadKind::RandomGraph,
            1.0,
        ));
        assert_eq!(report.major_faults, 0, "all-local must not fault");
        assert!(report.total_ops == 16_000);
        assert!(report.mops() > 0.0);
    }

    #[test]
    fn offloading_causes_faults_and_slowdown() {
        let local = run_batch(&tiny(
            SystemConfig::mage_lib(),
            WorkloadKind::RandomGraph,
            1.0,
        ));
        let off = run_batch(&tiny(
            SystemConfig::mage_lib(),
            WorkloadKind::RandomGraph,
            0.5,
        ));
        assert!(off.major_faults > 1_000);
        assert!(off.runtime_ns > local.runtime_ns);
        assert!(off.read_gbps > 0.0);
    }

    #[test]
    fn mage_beats_hermit_at_high_offload() {
        // The differentiation regime is high thread count (the paper's
        // Fig. 18b shows near-parity at 4 threads).
        let run16 = |system: SystemConfig| {
            let mut cfg = RunConfig::new(system, WorkloadKind::RandomGraph, 16, 16_384, 0.4);
            cfg.ops_per_thread = 6_000;
            cfg.warmup_ops = 1_500;
            run_batch(&cfg)
        };
        let mage = run16(SystemConfig::mage_lib());
        let hermit = run16(SystemConfig::hermit());
        assert!(
            mage.mops() > hermit.mops(),
            "mage {:.3} vs hermit {:.3} Mops",
            mage.mops(),
            hermit.mops()
        );
        assert_eq!(mage.sync_evictions, 0);
    }

    #[test]
    fn timeline_sampling_records_buckets() {
        let mut cfg = tiny(SystemConfig::mage_lib(), WorkloadKind::Gups, 0.85);
        cfg.sample_interval_ns = Some(200_000);
        cfg.phase_change_at_ns = Some(1_000_000);
        let report = run_batch(&cfg);
        assert!(report.timeline.len() > 3);
        let total: u64 = report.timeline.iter().map(|&(_, o)| o).sum();
        assert!(total <= report.total_ops);
    }

    #[test]
    fn deterministic_reports() {
        let a = run_batch(&tiny(SystemConfig::dilos(), WorkloadKind::XsBench, 0.7));
        let b = run_batch(&tiny(SystemConfig::dilos(), WorkloadKind::XsBench, 0.7));
        assert_eq!(a.runtime_ns, b.runtime_ns);
        assert_eq!(a.major_faults, b.major_faults);
        assert_eq!(a.fault_p99_ns, b.fault_p99_ns);
    }

    #[test]
    fn open_loop_latency_grows_with_load() {
        let lo = run_open_loop_faults(
            SystemConfig::mage_lib(),
            8,
            200_000,
            0.4,
            0.2,
            20_000_000,
            1,
        );
        let hi = run_open_loop_faults(
            SystemConfig::mage_lib(),
            8,
            200_000,
            0.4,
            4.0,
            20_000_000,
            1,
        );
        assert!(hi.p99_ns > lo.p99_ns, "hi {} lo {}", hi.p99_ns, lo.p99_ns);
        assert!(lo.achieved_mops > 0.1);
    }

    #[test]
    fn raw_rdma_saturates_near_ceiling() {
        let r = run_raw_rdma(5.0, 50_000_000, 3);
        assert!(r.achieved_mops > 4.0, "achieved {}", r.achieved_mops);
        let sat = run_raw_rdma(8.0, 50_000_000, 3);
        // Offered above the 5.86 Mops ceiling: queueing explodes p99.
        assert!(sat.p99_ns > 10 * r.p99_ns);
    }
}
