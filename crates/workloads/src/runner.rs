//! Experiment runners: closed-loop batch jobs, open-loop fault storms,
//! and raw-RDMA load generators.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mage::{Access, FarMemory, MachineParams, MetricsWindow, SystemConfig};
use mage_mmu::{CoreId, Topology};
use mage_sim::rng::SplitMix64;
use mage_sim::stats::{Counter, Histogram};
use mage_sim::time::{Nanos, SECS};
use mage_sim::trace::Tracer;
use mage_sim::Simulation;

use crate::patterns::{Stream, WorkloadKind};

/// Configuration of one closed-loop batch experiment.
#[derive(Clone)]
pub struct RunConfig {
    /// The system under test.
    pub system: SystemConfig,
    /// Access pattern.
    pub kind: WorkloadKind,
    /// Application threads (thread *i* runs on core *i*).
    pub threads: usize,
    /// Working-set size in pages.
    pub wss_pages: u64,
    /// Fraction of the WSS resident locally (1 − offload ratio).
    pub local_ratio: f64,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Unmeasured operations per thread executed before the measurement
    /// window (lets cache residency converge to the access distribution;
    /// statistics and the clock origin are reset afterwards).
    pub warmup_ops: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Start with every page remote (§3.2 fault-storm setup).
    pub all_remote: bool,
    /// Skip population entirely: pages start unmapped and zero-fill on
    /// first touch, so setup is O(1) and host metadata stays O(touched
    /// pages). The honest mode for huge sparse address spaces; takes
    /// precedence over `all_remote`.
    pub lazy_populate: bool,
    /// Switch phase-change workloads to phase 1 at this virtual time.
    pub phase_change_at_ns: Option<Nanos>,
    /// Switch phase-change workloads to phase 1 after this many ops per
    /// thread (Metis-style explicit barrier).
    pub phase_change_at_op: Option<u64>,
    /// Record an ops-throughput timeline at this interval.
    pub sample_interval_ns: Option<Nanos>,
    /// Attach a virtual-time tracer and export the run as Chrome
    /// `trace_event` JSON in [`RunReport::trace_json`].
    pub capture_trace: bool,
    /// Machine topology.
    pub topo: Topology,
}

impl RunConfig {
    /// A testbed-shaped run with sensible defaults.
    pub fn new(
        system: SystemConfig,
        kind: WorkloadKind,
        threads: usize,
        wss_pages: u64,
        local_ratio: f64,
    ) -> Self {
        RunConfig {
            system,
            kind,
            threads,
            wss_pages,
            local_ratio,
            ops_per_thread: (wss_pages / threads.max(1) as u64).max(1_000),
            warmup_ops: 0,
            seed: 42,
            all_remote: false,
            lazy_populate: false,
            phase_change_at_ns: None,
            phase_change_at_op: None,
            sample_interval_ns: None,
            capture_trace: false,
            topo: Topology::xeon_6348_dual(),
        }
    }

    fn local_pages(&self) -> u64 {
        if self.local_ratio >= 0.999 {
            // All-local runs need headroom above the watermarks (which
            // scale with both the eviction batch and memory size) so that
            // nothing ever evicts.
            self.wss_pages
                + self.wss_pages / 16
                + 3 * (self.system.evictors as u64) * (self.system.eviction_batch as u64)
                + 256
        } else {
            ((self.wss_pages as f64 * self.local_ratio) as u64).max(512)
        }
    }
}

/// Results of one batch run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// System name.
    pub system: &'static str,
    /// Virtual runtime of the job (start → slowest thread done), ns.
    pub runtime_ns: Nanos,
    /// Total application operations completed.
    pub total_ops: u64,
    /// Major faults observed.
    pub major_faults: u64,
    /// Per-thread major-fault counts (feeds the §3.1 ideal model).
    pub faults_per_thread: Vec<u64>,
    /// Mean major-fault latency, ns.
    pub fault_mean_ns: f64,
    /// p50 major-fault latency, ns.
    pub fault_p50_ns: u64,
    /// p99 major-fault latency, ns.
    pub fault_p99_ns: u64,
    /// Per-component fault breakdown means.
    pub breakdown: mage::BreakdownMeans,
    /// Synchronous evictions performed on the fault path.
    pub sync_evictions: u64,
    /// Pages evicted in the background.
    pub evicted_pages: u64,
    /// Mean TLB-shootdown latency, ns.
    pub shootdown_mean_ns: f64,
    /// Mean per-IPI latency, ns.
    pub ipi_mean_ns: f64,
    /// Achieved RDMA read bandwidth, Gbps.
    pub read_gbps: f64,
    /// Achieved RDMA write bandwidth, Gbps.
    pub write_gbps: f64,
    /// Pages prefetched.
    pub prefetches: u64,
    /// Ops-per-bucket timeline, if sampling was enabled.
    pub timeline: Vec<(Nanos, u64)>,
    /// Per-thread instant of the phase-0 → phase-1 switch (0 if none).
    pub phase_switch_ns: Vec<Nanos>,
    /// Faults that cancelled an in-flight eviction (refault dedup).
    pub evict_cancels: u64,
    /// Time faulting threads spent waiting for free pages (count, mean).
    pub free_wait_count: u64,
    /// Mean free-page wait, ns.
    pub free_wait_mean_ns: f64,
    /// RDMA transfers re-posted after an injected fault.
    pub transfer_retries: u64,
    /// Transfers that exhausted the retry budget.
    pub transfer_failures: u64,
    /// Fault-ins aborted after retry exhaustion.
    pub aborted_faults: u64,
    /// Eviction victims re-inserted after a failed writeback.
    pub requeued_victims: u64,
    /// Reads served from a surviving replica after the primary's node
    /// went unreachable (zero without a replicated backend).
    pub failover_reads: u64,
    /// Pages copied back to full replication after a node outage.
    pub rereplicated_pages: u64,
    /// Replica slots still degraded when the run ended (end-of-run
    /// gauge, not a window delta).
    pub degraded_pages: u64,
    /// Major faults whose page was still on the accounting ghost list —
    /// pages the eviction policy gave up on too early. The numerator of
    /// [`RunReport::re_fault_rate`].
    pub re_faults: u64,
    /// All ghost-list hits (re-faults plus eviction cancels/requeues).
    pub ghost_hits: u64,
    /// Chrome `trace_event` JSON of the run, when
    /// [`RunConfig::capture_trace`] was set.
    pub trace_json: Option<String>,
    /// Total executor task polls the run performed — the discrete-event
    /// count behind the wall-clock events/sec figure in `BENCH_*.json`.
    pub executor_polls: u64,
    /// Page-table nodes allocated by the end of the run (host-metadata
    /// gauge: O(touched pages), never O(address-space span)).
    pub pt_nodes: u64,
    /// Replica-table entries tracked by the end of the run (0 without a
    /// replicated backend; O(touched slots), never O(max rpn)).
    pub replica_entries: u64,
}

impl RunReport {
    /// Application throughput in M ops/s.
    pub fn mops(&self) -> f64 {
        if self.runtime_ns == 0 {
            return 0.0;
        }
        self.total_ops as f64 * 1e3 / self.runtime_ns as f64
    }

    /// Fraction of major faults that re-fetched a recently evicted page
    /// (lower is better — the policy-ablation figure of merit).
    pub fn re_fault_rate(&self) -> f64 {
        if self.major_faults == 0 {
            return 0.0;
        }
        self.re_faults as f64 / self.major_faults as f64
    }

    /// Major-fault throughput in M faults/s.
    pub fn fault_mops(&self) -> f64 {
        if self.runtime_ns == 0 {
            return 0.0;
        }
        self.major_faults as f64 * 1e3 / self.runtime_ns as f64
    }

    /// Jobs/hour for a batch job of this runtime.
    pub fn jobs_per_hour(&self) -> f64 {
        if self.runtime_ns == 0 {
            return 0.0;
        }
        3_600.0e9 / self.runtime_ns as f64
    }
}

/// Runs one closed-loop batch experiment to completion.
pub fn run_batch(cfg: &RunConfig) -> RunReport {
    let sim = Simulation::new();
    let params = MachineParams {
        topo: cfg.topo,
        app_threads: cfg.threads,
        local_pages: cfg.local_pages(),
        remote_pages: cfg.wss_pages + 1024,
        tlb_entries: 1_536,
        seed: cfg.seed,
    };
    let engine = FarMemory::launch(sim.handle(), cfg.system.clone(), params);
    let vma = engine.mmap(cfg.wss_pages);
    if cfg.lazy_populate {
        engine.populate_lazy(&vma);
    } else if cfg.all_remote {
        engine.populate_all_remote(&vma);
    } else {
        engine.populate(&vma);
    }
    let tracer = cfg.capture_trace.then(|| {
        let t = Tracer::new(sim.handle());
        engine.attach_tracer(Rc::clone(&t));
        t
    });

    let ops_counter = Rc::new(Counter::new());
    let phase = Rc::new(Cell::new(0usize));
    let done = Rc::new(Cell::new(0usize));
    let timeline = Rc::new(RefCell::new(Vec::new()));
    let sampled = Rc::new(Cell::new(0u64));
    let warmed = Rc::new(Cell::new(0usize));
    let start_line = Rc::new(mage_sim::sync::WaitQueue::new());
    let t_start = Rc::new(Cell::new(0u64));
    // Start line of the measurement window, captured by the last thread
    // to finish warmup. Replaces the destructive stats reset: the window
    // covers every stat source (engine, NIC, IPIs, accounting), so warmup
    // traffic can no longer leak into bandwidth or shootdown figures.
    let start_snap = Rc::new(RefCell::new(None));

    // Phase-change trigger by virtual time (GUPS).
    if let Some(at) = cfg.phase_change_at_ns {
        let h = sim.handle();
        let p = Rc::clone(&phase);
        sim.spawn(async move {
            h.sleep(at).await;
            p.set(1);
        });
    }

    // Throughput timeline sampler. `sampled` tracks how many ops the
    // pushed buckets cover so the final partial bucket can be flushed
    // after the join (the sampler itself is parked mid-sleep when the
    // last thread finishes and never sees the remainder).
    if let Some(interval) = cfg.sample_interval_ns {
        let h = sim.handle();
        let ops = Rc::clone(&ops_counter);
        let tl = Rc::clone(&timeline);
        let done = Rc::clone(&done);
        let sampled = Rc::clone(&sampled);
        let threads = cfg.threads;
        sim.spawn(async move {
            while done.get() < threads {
                h.sleep(interval).await;
                let cur = ops.get();
                tl.borrow_mut().push((h.now().as_nanos(), cur - sampled.get()));
                sampled.set(cur);
            }
        });
    }

    // Application threads.
    let mut joins = Vec::new();
    for t in 0..cfg.threads {
        let engine = Rc::clone(&engine);
        let h = sim.handle();
        let ops_counter = Rc::clone(&ops_counter);
        let phase = Rc::clone(&phase);
        let done = Rc::clone(&done);
        let mut stream = Stream::new(cfg.kind, t, cfg.threads, cfg.wss_pages, cfg.seed);
        let ops = cfg.ops_per_thread;
        let warmup = cfg.warmup_ops;
        let base = vma.start_vpn;
        let phase_at_op = cfg.phase_change_at_op;
        let warmed = Rc::clone(&warmed);
        let start_line = Rc::clone(&start_line);
        let t_start = Rc::clone(&t_start);
        let start_snap = Rc::clone(&start_snap);
        let threads = cfg.threads;
        joins.push(sim.spawn(async move {
            let core = CoreId(t as u32);
            // Warmup: converge residency, then rendezvous at a start line
            // where the last thread opens the measurement window.
            if warmup > 0 {
                for _ in 0..warmup {
                    let op = stream.next_op();
                    engine.access(core, base + op.page, op.write).await;
                    let compute = engine.inflate_compute(op.compute_ns);
                    if compute > 0 {
                        h.sleep(compute).await;
                    }
                }
            }
            warmed.set(warmed.get() + 1);
            if warmed.get() == threads {
                *start_snap.borrow_mut() = Some(engine.metrics().snapshot());
                t_start.set(h.now().as_nanos());
                start_line.wake_all();
            } else {
                start_line.wait().await;
            }
            let mut faults = 0u64;
            let mut switch_ns = 0u64;
            for i in 0..ops {
                if let Some(at) = phase_at_op {
                    if i == at {
                        stream.set_phase(1);
                        switch_ns = h.now().as_nanos();
                    }
                }
                if stream.kind().has_phases()
                    && phase.get() != stream.phase()
                    && phase_at_op.is_none()
                {
                    stream.set_phase(phase.get());
                    switch_ns = h.now().as_nanos();
                }
                let op = stream.next_op();
                let access = engine.access(core, base + op.page, op.write).await;
                if matches!(access, Access::Major { .. }) {
                    faults += 1;
                }
                let compute = engine.inflate_compute(op.compute_ns);
                if compute > 0 {
                    h.sleep(compute).await;
                }
                ops_counter.inc();
            }
            done.set(done.get() + 1);
            (faults, switch_ns, h.now().as_nanos())
        }));
    }

    let per_thread = sim.block_on(async move {
        let mut out = Vec::new();
        for j in joins {
            out.push(j.await);
        }
        out
    });
    engine.shutdown();

    let end_abs = per_thread.iter().map(|&(_, _, end)| end).max().unwrap_or(0);
    let runtime_ns = end_abs.saturating_sub(t_start.get());
    // Flush the final partial bucket: block_on returns the instant the
    // last thread finishes, before the sampler's next tick, so without
    // this the trailing `total % interval` ops would vanish from the
    // timeline and `sum(timeline) != total_ops`.
    if cfg.sample_interval_ns.is_some() {
        let cur = ops_counter.get();
        if cur > sampled.get() {
            timeline.borrow_mut().push((end_abs, cur - sampled.get()));
        }
    }
    let start = start_snap
        .borrow_mut()
        .take()
        .expect("rendezvous captured a start snapshot");
    let window = engine.metrics().window_since(&start);
    let faults_per_thread: Vec<u64> = per_thread.iter().map(|&(f, _, _)| f).collect();
    let phase_switch_ns: Vec<Nanos> = per_thread.iter().map(|&(_, s, _)| s).collect();
    let mut report = report_from(
        cfg,
        &window,
        runtime_ns,
        ops_counter.get(),
        faults_per_thread,
        phase_switch_ns,
        timeline,
        tracer.map(|t| t.to_chrome_json()),
    );
    report.executor_polls = sim.polls();
    report.degraded_pages = engine.backend().degraded_pages();
    report.pt_nodes = engine.page_table().node_count() as u64;
    report.replica_entries = engine.backend().replica_entries();
    report
}

#[allow(clippy::too_many_arguments)]
fn report_from(
    cfg: &RunConfig,
    w: &MetricsWindow,
    runtime_ns: Nanos,
    total_ops: u64,
    faults_per_thread: Vec<u64>,
    phase_switch_ns: Vec<Nanos>,
    timeline: Rc<RefCell<Vec<(Nanos, u64)>>>,
    trace_json: Option<String>,
) -> RunReport {
    RunReport {
        system: cfg.system.name,
        runtime_ns,
        total_ops,
        major_faults: w.major_faults,
        faults_per_thread,
        fault_mean_ns: w.fault_latency.mean(),
        fault_p50_ns: w.fault_latency.p50(),
        fault_p99_ns: w.fault_latency.p99(),
        breakdown: w.breakdown_means(),
        sync_evictions: w.sync_evictions,
        evicted_pages: w.evicted_pages + w.sync_evicted_pages,
        shootdown_mean_ns: w.shootdown_latency.mean(),
        ipi_mean_ns: w.ipi_latency.mean(),
        read_gbps: w.read_gbps(runtime_ns),
        write_gbps: w.write_gbps(runtime_ns),
        prefetches: w.prefetches,
        timeline: timeline.borrow().clone(),
        phase_switch_ns,
        evict_cancels: w.evict_cancels,
        free_wait_count: w.free_wait.count(),
        free_wait_mean_ns: w.free_wait.mean(),
        transfer_retries: w.transfer_retries,
        transfer_failures: w.transfer_failures,
        aborted_faults: w.aborted_faults,
        requeued_victims: w.requeued_victims,
        failover_reads: w.failover_reads,
        rereplicated_pages: w.rereplicated_pages,
        degraded_pages: 0,
        re_faults: w.re_faults,
        ghost_hits: w.ghost_hits,
        trace_json,
        executor_polls: 0,
        pt_nodes: 0,
        replica_entries: 0,
    }
}

/// Report of an open-loop experiment.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Offered load, M ops/s.
    pub offered_mops: f64,
    /// Achieved completion rate, M ops/s.
    pub achieved_mops: f64,
    /// Mean request latency, ns.
    pub mean_ns: f64,
    /// p50 request latency, ns.
    pub p50_ns: u64,
    /// p99 request latency, ns.
    pub p99_ns: u64,
    /// Synchronous evictions during the run.
    pub sync_evictions: u64,
    /// Achieved read bandwidth, Gbps.
    pub read_gbps: f64,
    /// Requests that stalled waiting for a free page.
    pub free_waits: u64,
    /// Longest free-page stall, ns.
    pub free_wait_max_ns: u64,
    /// p99 of the engine-level fault latency (excluding request queueing).
    pub fault_p99_ns: u64,
    /// Requests the generator issued during the offered-load window.
    pub issued_requests: u64,
    /// Requests that completed by the end of the drain (in or out of the
    /// window; their latencies are all in the distribution).
    pub completed_requests: u64,
    /// Requests still in flight when the bounded drain gave up — the
    /// right-censored residue the latency distribution cannot see. Zero
    /// whenever the drain finishes, i.e. at any sustainable load.
    pub censored_requests: u64,
}

/// Drives the fault path open-loop at `rate_mops` for `duration_ns`,
/// touching fresh (remote) pages in sequence (Fig. 15 setup).
pub fn run_open_loop_faults(
    system: SystemConfig,
    threads: usize,
    wss_pages: u64,
    local_ratio: f64,
    rate_mops: f64,
    duration_ns: Nanos,
    seed: u64,
) -> OpenLoopReport {
    let sim = Simulation::new();
    let local_pages = ((wss_pages as f64 * local_ratio) as u64).max(1024);
    let params = MachineParams {
        topo: Topology::xeon_6348_dual(),
        app_threads: threads,
        local_pages,
        remote_pages: wss_pages + 1024,
        tlb_entries: 1_536,
        seed,
    };
    let engine = FarMemory::launch(sim.handle(), system, params);
    let vma = engine.mmap(wss_pages);
    // Normal placement: local memory starts full of resident pages so the
    // driver operates in eviction steady state from the first request
    // (the paper's Fig. 15 regime), not in a one-off fill phase.
    engine.populate(&vma);
    let first_remote = engine.accounting().resident_pages();
    let remote_span = wss_pages - first_remote;

    let latency = Rc::new(Histogram::new());
    let completed = Rc::new(Counter::new());
    let issued = Rc::new(Counter::new());
    let in_window = Rc::new(Counter::new());

    // The generator issues requests with exponential inter-arrivals,
    // spreading them round-robin over the worker cores.
    let h = sim.handle();
    let gen_engine = Rc::clone(&engine);
    let gen_latency = Rc::clone(&latency);
    let gen_completed = Rc::clone(&completed);
    let gen_issued = Rc::clone(&issued);
    let gen_in_window = Rc::clone(&in_window);
    let base = vma.start_vpn;
    sim.spawn(async move {
        let rng = SplitMix64::new(seed);
        let mean_gap_ns = 1e3 / rate_mops; // ns between arrivals
        let mut next_page = 0u64;
        let mut core = 0u32;
        while h.now().as_nanos() < duration_ns {
            let u = rng.next_f64();
            let gap = (-(1.0 - u).ln() * mean_gap_ns).max(1.0) as u64;
            h.sleep(gap).await;
            let page = base + first_remote + (next_page % remote_span);
            next_page += 1;
            let c = CoreId(core % threads as u32);
            core += 1;
            gen_issued.inc();
            let e = Rc::clone(&gen_engine);
            let lat = Rc::clone(&gen_latency);
            let comp = Rc::clone(&gen_completed);
            let win = Rc::clone(&gen_in_window);
            let h2 = h.clone();
            h.spawn(async move {
                let t0 = h2.now();
                e.access(c, page, false).await;
                lat.record(h2.now() - t0);
                comp.inc();
                if h2.now().as_nanos() <= duration_ns {
                    win.inc();
                }
            });
        }
    });

    // Drain until every issued request completes (bounded): a fixed-length
    // drain right-censors the tail — precisely the slow requests that an
    // overloaded system queues past the cutoff — which deflates p99 at the
    // loads where it matters most. The NIC byte count is sampled at the
    // window edge so bandwidth covers the offered-load window only.
    let h = sim.handle();
    let drain_completed = Rc::clone(&completed);
    let drain_issued = Rc::clone(&issued);
    let drain_engine = Rc::clone(&engine);
    let window_read_bytes = sim.block_on(async move {
        h.sleep(duration_ns).await;
        let bytes = drain_engine.nic().stats().read_bytes.get();
        let cutoff = duration_ns + 2 * SECS;
        while drain_completed.get() < drain_issued.get() && h.now().as_nanos() < cutoff {
            h.sleep(50_000).await;
        }
        bytes
    });
    engine.shutdown();

    let free_wait = engine.stats().free_wait.borrow().clone();
    OpenLoopReport {
        offered_mops: rate_mops,
        achieved_mops: in_window.get() as f64 * 1e3 / duration_ns as f64,
        mean_ns: latency.mean(),
        p50_ns: latency.p50(),
        p99_ns: latency.p99(),
        sync_evictions: engine.stats().sync_evictions.get(),
        read_gbps: window_read_bytes as f64 * 8.0 / duration_ns as f64,
        free_waits: free_wait.count(),
        free_wait_max_ns: free_wait.max(),
        fault_p99_ns: engine.stats().fault_latency.p99(),
        issued_requests: issued.get(),
        completed_requests: completed.get(),
        censored_requests: issued.get() - completed.get(),
    }
}

/// Raw RDMA reads at `rate_mops` with 4 background writer threads
/// saturating the write direction (the Fig. 15 "RDMA" baseline).
pub fn run_raw_rdma(rate_mops: f64, duration_ns: Nanos, seed: u64) -> OpenLoopReport {
    use mage_fabric::{Nic, NicConfig};
    let sim = Simulation::new();
    let nic = Rc::new(Nic::new(sim.handle(), NicConfig::bluefield2_200g()));
    let latency = Rc::new(Histogram::new());
    let completed = Rc::new(Counter::new());
    let issued = Rc::new(Counter::new());
    let in_window = Rc::new(Counter::new());

    // Background writers: keep the tx direction busy, mirroring eviction
    // traffic ("4 background threads constantly performing RDMA writes").
    for _ in 0..4 {
        let nic = Rc::clone(&nic);
        let h = sim.handle();
        sim.spawn(async move {
            while h.now().as_nanos() < duration_ns {
                let _ = nic.post_write(4096).await;
            }
        });
    }

    let h = sim.handle();
    let gen_nic = Rc::clone(&nic);
    let gen_latency = Rc::clone(&latency);
    let gen_completed = Rc::clone(&completed);
    let gen_issued = Rc::clone(&issued);
    let gen_in_window = Rc::clone(&in_window);
    sim.spawn(async move {
        let rng = SplitMix64::new(seed);
        let mean_gap_ns = 1e3 / rate_mops;
        while h.now().as_nanos() < duration_ns {
            let u = rng.next_f64();
            let gap = (-(1.0 - u).ln() * mean_gap_ns).max(1.0) as u64;
            h.sleep(gap).await;
            gen_issued.inc();
            let nic = Rc::clone(&gen_nic);
            let lat = Rc::clone(&gen_latency);
            let comp = Rc::clone(&gen_completed);
            let win = Rc::clone(&gen_in_window);
            let h2 = h.clone();
            h.spawn(async move {
                let t0 = h2.now();
                let _ = nic.post_read(4096).await;
                lat.record(h2.now() - t0);
                comp.inc();
                if h2.now().as_nanos() <= duration_ns {
                    win.inc();
                }
            });
        }
    });

    // Same uncensored-tail protocol as `run_open_loop_faults`: drain every
    // issued read (bounded), window the byte count at the load cutoff.
    let h = sim.handle();
    let drain_completed = Rc::clone(&completed);
    let drain_issued = Rc::clone(&issued);
    let drain_nic = Rc::clone(&nic);
    let window_read_bytes = sim.block_on(async move {
        h.sleep(duration_ns).await;
        let bytes = drain_nic.stats().read_bytes.get();
        let cutoff = duration_ns + 2 * SECS;
        while drain_completed.get() < drain_issued.get() && h.now().as_nanos() < cutoff {
            h.sleep(50_000).await;
        }
        bytes
    });

    OpenLoopReport {
        offered_mops: rate_mops,
        achieved_mops: in_window.get() as f64 * 1e3 / duration_ns as f64,
        mean_ns: latency.mean(),
        p50_ns: latency.p50(),
        p99_ns: latency.p99(),
        sync_evictions: 0,
        read_gbps: window_read_bytes as f64 * 8.0 / duration_ns as f64,
        free_waits: 0,
        free_wait_max_ns: 0,
        fault_p99_ns: latency.p99(),
        issued_requests: issued.get(),
        completed_requests: completed.get(),
        censored_requests: issued.get() - completed.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(system: SystemConfig, kind: WorkloadKind, local_ratio: f64) -> RunConfig {
        let mut cfg = RunConfig::new(system, kind, 4, 8_192, local_ratio);
        cfg.ops_per_thread = 4_000;
        cfg.topo = Topology::single_socket(10);
        cfg
    }

    #[test]
    fn all_local_run_has_no_faults() {
        let report = run_batch(&tiny(
            SystemConfig::mage_lib(),
            WorkloadKind::RandomGraph,
            1.0,
        ));
        assert_eq!(report.major_faults, 0, "all-local must not fault");
        assert!(report.total_ops == 16_000);
        assert!(report.mops() > 0.0);
    }

    #[test]
    fn offloading_causes_faults_and_slowdown() {
        let local = run_batch(&tiny(
            SystemConfig::mage_lib(),
            WorkloadKind::RandomGraph,
            1.0,
        ));
        let off = run_batch(&tiny(
            SystemConfig::mage_lib(),
            WorkloadKind::RandomGraph,
            0.5,
        ));
        assert!(off.major_faults > 1_000);
        assert!(off.runtime_ns > local.runtime_ns);
        assert!(off.read_gbps > 0.0);
    }

    #[test]
    fn mage_beats_hermit_at_high_offload() {
        // The differentiation regime is high thread count (the paper's
        // Fig. 18b shows near-parity at 4 threads).
        let run16 = |system: SystemConfig| {
            let mut cfg = RunConfig::new(system, WorkloadKind::RandomGraph, 16, 16_384, 0.4);
            cfg.ops_per_thread = 6_000;
            cfg.warmup_ops = 1_500;
            run_batch(&cfg)
        };
        let mage = run16(SystemConfig::mage_lib());
        let hermit = run16(SystemConfig::hermit());
        assert!(
            mage.mops() > hermit.mops(),
            "mage {:.3} vs hermit {:.3} Mops",
            mage.mops(),
            hermit.mops()
        );
        assert_eq!(mage.sync_evictions, 0);
    }

    #[test]
    fn timeline_sampling_records_buckets() {
        let mut cfg = tiny(SystemConfig::mage_lib(), WorkloadKind::Gups, 0.85);
        cfg.sample_interval_ns = Some(200_000);
        cfg.phase_change_at_ns = Some(1_000_000);
        let report = run_batch(&cfg);
        assert!(report.timeline.len() > 3);
        let total: u64 = report.timeline.iter().map(|&(_, o)| o).sum();
        assert_eq!(total, report.total_ops, "final partial bucket must be flushed");
    }

    #[test]
    fn deterministic_reports() {
        let a = run_batch(&tiny(SystemConfig::dilos(), WorkloadKind::XsBench, 0.7));
        let b = run_batch(&tiny(SystemConfig::dilos(), WorkloadKind::XsBench, 0.7));
        assert_eq!(a.runtime_ns, b.runtime_ns);
        assert_eq!(a.major_faults, b.major_faults);
        assert_eq!(a.fault_p99_ns, b.fault_p99_ns);
    }

    #[test]
    fn open_loop_latency_grows_with_load() {
        let lo = run_open_loop_faults(
            SystemConfig::mage_lib(),
            8,
            200_000,
            0.4,
            0.2,
            20_000_000,
            1,
        );
        let hi = run_open_loop_faults(
            SystemConfig::mage_lib(),
            8,
            200_000,
            0.4,
            4.0,
            20_000_000,
            1,
        );
        assert!(hi.p99_ns > lo.p99_ns, "hi {} lo {}", hi.p99_ns, lo.p99_ns);
        assert!(lo.achieved_mops > 0.1);
    }

    #[test]
    fn raw_rdma_saturates_near_ceiling() {
        let r = run_raw_rdma(5.0, 50_000_000, 3);
        assert!(r.achieved_mops > 4.0, "achieved {}", r.achieved_mops);
        let sat = run_raw_rdma(8.0, 50_000_000, 3);
        // Offered above the 5.86 Mops ceiling: queueing explodes p99.
        assert!(sat.p99_ns > 10 * r.p99_ns);
    }
}
