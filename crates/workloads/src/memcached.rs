//! Open-loop Memcached-style latency-critical service (§6.3).
//!
//! Requests arrive Poisson at a configured load, keys follow a
//! Zipf(0.99) popularity distribution over the KV store's pages
//! (Facebook USR: 99.8% GET / 0.2% SET), and each of the (24 in the
//! paper) worker threads serves its own FIFO request queue. The reported
//! metric is the p99 *sojourn* time — queueing plus service plus any
//! page faults taken while touching the key's pages.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mage::{FarMemory, MachineParams, SystemConfig};
use mage_mmu::{CoreId, Topology};
use mage_sim::rng::SplitMix64;
use mage_sim::slab::PageMap;
use mage_sim::stats::{Counter, Histogram};
use mage_sim::sync::WaitQueue;
use mage_sim::time::{Nanos, SimTime};
use mage_sim::Simulation;

use crate::patterns::Zipf;

/// Configuration of a Memcached latency experiment.
#[derive(Clone)]
pub struct MemcachedConfig {
    /// System under test.
    pub system: SystemConfig,
    /// Worker threads (the paper uses 24 to stay on one socket).
    pub workers: usize,
    /// KV-store size in pages.
    pub data_pages: u64,
    /// Fraction of the store resident locally.
    pub local_ratio: f64,
    /// Offered load in M ops/s.
    pub load_mops: f64,
    /// Run duration in virtual ns.
    pub duration_ns: Nanos,
    /// GET fraction (0.998 for Facebook USR).
    pub get_ratio: f64,
    /// Key-popularity skew.
    pub zipf_theta: f64,
    /// Pure service compute per request, ns.
    pub service_ns: Nanos,
    /// Seed.
    pub seed: u64,
    /// Simulated client connections. Each request is attributed to a
    /// connection (activity is Zipf-skewed, like key popularity — most
    /// connections are mostly idle), and per-connection bookkeeping is
    /// sparse, so millions of simulated connections cost the host only
    /// the connections that were actually active in the window.
    pub connections: u64,
    /// Skip KV-store population: pages zero-fill on first touch, making
    /// setup O(1) so the store can span hundreds of simulated GiB. The
    /// ≥256 GiB scale scenario uses this; classic runs populate eagerly
    /// to model a pre-warmed store.
    pub lazy_populate: bool,
}

impl MemcachedConfig {
    /// The paper's §6.3 setup scaled down.
    pub fn paper(system: SystemConfig, data_pages: u64) -> Self {
        MemcachedConfig {
            system,
            workers: 24,
            data_pages,
            local_ratio: 0.5,
            load_mops: 0.8,
            duration_ns: 50_000_000,
            get_ratio: 0.998,
            zipf_theta: 0.99,
            service_ns: 1_500,
            seed: 42,
            connections: 1_000_000,
            lazy_populate: false,
        }
    }
}

/// Results of a Memcached run.
#[derive(Clone, Debug)]
pub struct MemcachedReport {
    /// Offered load, M ops/s.
    pub offered_mops: f64,
    /// Completed requests per second, M ops/s.
    pub achieved_mops: f64,
    /// Mean sojourn, ns.
    pub mean_ns: f64,
    /// Median sojourn, ns.
    pub p50_ns: u64,
    /// 99th-percentile sojourn, ns (the paper's SLO metric).
    pub p99_ns: u64,
    /// Major faults taken while serving.
    pub major_faults: u64,
    /// Synchronous evictions on the serving path.
    pub sync_evictions: u64,
    /// p99 of the major-fault latency itself (excluding queueing).
    pub fault_p99_ns: u64,
    /// Requests that stalled waiting for a free page.
    pub free_waits: u64,
    /// Longest free-page stall, ns.
    pub free_wait_max_ns: u64,
    /// Faults that waited on a page mid-eviction or mid-fault.
    pub page_lock_waits: u64,
    /// Distinct connections that issued at least one request (host
    /// bookkeeping is proportional to this, not to
    /// [`MemcachedConfig::connections`]).
    pub active_connections: u64,
    /// Distinct KV pages requested during the run (host metadata is
    /// proportional to this, not to [`MemcachedConfig::data_pages`]).
    pub touched_pages: u64,
    /// Page-table nodes allocated by the end of the run.
    pub pt_nodes: u64,
    /// Executor task polls the run performed (the deterministic event
    /// count; the scale bench's events/sec numerator).
    pub executor_polls: u64,
    /// Final virtual time of the run, ns.
    pub runtime_ns: u64,
}

struct WorkerQueue {
    requests: RefCell<VecDeque<(SimTime, u64, bool)>>,
    signal: WaitQueue,
}

/// Runs the Memcached experiment.
pub fn run_memcached(cfg: &MemcachedConfig) -> MemcachedReport {
    let sim = Simulation::new();
    let local_pages = if cfg.local_ratio >= 0.999 {
        // All-local: headroom above the (memory-scaled) watermarks so
        // nothing evicts.
        cfg.data_pages
            + cfg.data_pages / 16
            + 3 * (cfg.system.evictors as u64) * (cfg.system.eviction_batch as u64)
            + 256
    } else {
        ((cfg.data_pages as f64 * cfg.local_ratio) as u64).max(1024)
    };
    let params = MachineParams {
        topo: Topology::xeon_6348_dual(),
        app_threads: cfg.workers,
        local_pages,
        remote_pages: cfg.data_pages + 1024,
        tlb_entries: 1_536,
        seed: cfg.seed,
    };
    let engine = FarMemory::launch(sim.handle(), cfg.system.clone(), params);
    let vma = engine.mmap(cfg.data_pages);
    if cfg.lazy_populate {
        engine.populate_lazy(&vma);
    } else {
        engine.populate(&vma);
    }

    let queues: Vec<Rc<WorkerQueue>> = (0..cfg.workers)
        .map(|_| {
            Rc::new(WorkerQueue {
                requests: RefCell::new(VecDeque::new()),
                signal: WaitQueue::new(),
            })
        })
        .collect();
    let sojourn = Rc::new(Histogram::new());
    let completed = Rc::new(Counter::new());
    let stop = Rc::new(std::cell::Cell::new(false));

    // Workers.
    for (w, queue) in queues.iter().enumerate() {
        let engine = Rc::clone(&engine);
        let queue = Rc::clone(queue);
        let sojourn = Rc::clone(&sojourn);
        let completed = Rc::clone(&completed);
        let stop = Rc::clone(&stop);
        let h = sim.handle();
        let base = vma.start_vpn;
        let service = cfg.service_ns;
        sim.spawn(async move {
            let core = CoreId(w as u32);
            loop {
                let next = queue.requests.borrow_mut().pop_front();
                let Some((arrival, page, write)) = next else {
                    if stop.get() {
                        break;
                    }
                    queue.signal.wait().await;
                    continue;
                };
                engine.access(core, base + page, write).await;
                let compute = engine.inflate_compute(service);
                h.sleep(compute).await;
                sojourn.record(h.now().saturating_since(arrival));
                completed.inc();
            }
        });
    }

    // Load generator. Connection attribution and touched-page tracking
    // are sparse PageMaps: the host pays for *active* connections and
    // *requested* pages, so the config can claim millions of connections
    // over a multi-hundred-GiB store without dense bookkeeping.
    let conn_seen: Rc<RefCell<PageMap<u32>>> = Rc::new(RefCell::new(PageMap::new()));
    let page_seen: Rc<RefCell<PageMap<()>>> = Rc::new(RefCell::new(PageMap::new()));
    {
        let h = sim.handle();
        let queues = queues.clone();
        let stop = Rc::clone(&stop);
        let zipf = Zipf::new(cfg.data_pages, cfg.zipf_theta);
        let mean_gap_ns = 1e3 / cfg.load_mops;
        let duration = cfg.duration_ns;
        let get_ratio = cfg.get_ratio;
        let seed = cfg.seed;
        let connections = cfg.connections.max(1);
        let conn_seen = Rc::clone(&conn_seen);
        let page_seen = Rc::clone(&page_seen);
        sim.spawn(async move {
            let rng = SplitMix64::new(seed);
            // Separate stream for connection attribution, so the request
            // schedule (gaps, keys, GET/SET mix) is a function of `seed`
            // alone regardless of the connection-count knob.
            let conn_rng = SplitMix64::new(seed ^ 0xC0_77EC_7104);
            let conn_zipf = (connections > 1).then(|| Zipf::new(connections, 0.99));
            let mut next_worker = 0usize;
            while h.now().as_nanos() < duration {
                let u = rng.next_f64();
                let gap = (-(1.0 - u).ln() * mean_gap_ns).max(1.0) as u64;
                h.sleep(gap).await;
                let page = zipf.sample(&rng);
                let write = rng.next_f64() >= get_ratio;
                // Zipf-ranked connection activity, scattered over the id
                // space so hot connections are not adjacent ids.
                let conn = match &conn_zipf {
                    Some(z) => mage_sim::rng::mix64(z.sample(&conn_rng)) % connections,
                    None => 0,
                };
                *conn_seen.borrow_mut().get_or_insert_with(conn, || 0) += 1;
                page_seen.borrow_mut().get_or_insert_with(page, || ());
                let q = &queues[next_worker];
                next_worker = (next_worker + 1) % queues.len();
                q.requests.borrow_mut().push_back((h.now(), page, write));
                q.signal.wake_one();
            }
            // Drain: let workers exit once their queues are empty.
            stop.set(true);
            for q in &queues {
                q.signal.wake_all();
            }
        });
    }

    let h = sim.handle();
    let drain = cfg.duration_ns + 20_000_000;
    sim.block_on(async move { h.sleep(drain).await });
    engine.shutdown();

    let active_connections = conn_seen.borrow().len() as u64;
    let touched_pages = page_seen.borrow().len() as u64;
    MemcachedReport {
        offered_mops: cfg.load_mops,
        achieved_mops: completed.get() as f64 * 1e3 / cfg.duration_ns as f64,
        mean_ns: sojourn.mean(),
        p50_ns: sojourn.p50(),
        p99_ns: sojourn.p99(),
        major_faults: engine.stats().major_faults.get(),
        sync_evictions: engine.stats().sync_evictions.get(),
        fault_p99_ns: engine.stats().fault_latency.p99(),
        free_waits: {
            let fw = engine.stats().free_wait.borrow();
            fw.count()
        },
        free_wait_max_ns: {
            let fw = engine.stats().free_wait.borrow();
            fw.max()
        },
        page_lock_waits: engine.stats().page_lock_waits.get(),
        active_connections,
        touched_pages,
        pt_nodes: engine.page_table().node_count() as u64,
        executor_polls: sim.polls(),
        runtime_ns: sim.handle().now().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemConfig, local_ratio: f64, load_mops: f64) -> MemcachedReport {
        let mut cfg = MemcachedConfig::paper(system, 30_000);
        cfg.workers = 8;
        cfg.local_ratio = local_ratio;
        cfg.load_mops = load_mops;
        cfg.duration_ns = 20_000_000;
        run_memcached(&cfg)
    }

    #[test]
    fn all_local_service_is_fast() {
        let r = quick(SystemConfig::mage_lib(), 1.0, 0.3);
        assert_eq!(r.major_faults, 0);
        assert!(r.p99_ns < 20_000, "p99 {}", r.p99_ns);
        assert!(r.achieved_mops > 0.25);
    }

    #[test]
    fn offloading_raises_tail_latency() {
        let local = quick(SystemConfig::mage_lib(), 1.0, 0.3);
        let off = quick(SystemConfig::mage_lib(), 0.4, 0.3);
        assert!(off.major_faults > 0);
        assert!(off.p99_ns > local.p99_ns);
    }

    #[test]
    fn million_connections_over_huge_store_cost_o_touched() {
        // The "millions of users" regime: 1M simulated connections over
        // a 256 GiB (2^26-page) store, lazily populated. The run must
        // complete with host bookkeeping proportional to what was
        // touched — active connections and requested pages — never to
        // the configured capacity.
        let mut cfg = MemcachedConfig::paper(SystemConfig::mage_lib(), 1u64 << 26);
        cfg.workers = 8;
        cfg.connections = 1_000_000;
        cfg.lazy_populate = true;
        cfg.duration_ns = 2_000_000;
        let r = run_memcached(&cfg);
        let requests = (r.achieved_mops * cfg.duration_ns as f64 / 1e3) as u64;
        assert!(requests > 100, "run must actually serve requests");
        assert!(r.active_connections > 0 && r.active_connections <= requests + 1);
        assert!(r.touched_pages > 0 && r.touched_pages <= requests + 1);
        // 5-level paths over a sparse space: < 5 nodes per touched page.
        assert!(
            r.pt_nodes <= 1 + 5 * r.touched_pages,
            "pt nodes {} not O(touched pages {})",
            r.pt_nodes,
            r.touched_pages
        );
    }

    #[test]
    fn mage_tail_beats_hermit_under_pressure() {
        let mage = quick(SystemConfig::mage_lib(), 0.4, 0.5);
        let hermit = quick(SystemConfig::hermit(), 0.4, 0.5);
        assert!(
            mage.p99_ns < hermit.p99_ns,
            "mage p99 {} vs hermit {}",
            mage.p99_ns,
            hermit.p99_ns
        );
    }
}
