//! Access-pattern generators for the paper's applications (Table 1).

use mage_sim::rng::SplitMix64;

/// A Zipf(θ) sampler over `{0, …, n-1}` using the continuous
/// inverse-CDF approximation (adequate for workload skew; the exact
/// harmonic normalization differs by <2% at θ = 0.99).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    one_minus_theta: f64,
    norm: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty domain");
        // Strictly open interval: θ = 0.0 is uniform (use next_below),
        // θ = 1.0 divides by zero in the inverse CDF. The old
        // `(0.0..1.0).contains` check admitted θ = 0.0.
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in the open interval (0,1), got {theta}"
        );
        let one_minus_theta = 1.0 - theta;
        Zipf {
            n,
            one_minus_theta,
            norm: (n as f64).powf(one_minus_theta) - 1.0,
        }
    }

    /// Draws one sample; small indices are the hottest.
    pub fn sample(&self, rng: &SplitMix64) -> u64 {
        let u = rng.next_f64();
        // Mathematically x ≥ 1, but powf is not correctly rounded: for
        // bases barely above 1.0 it can land just below 1.0, and then
        // `x as u64 - 1` underflows (a debug-build panic; in release a
        // wrap to u64::MAX that the range clamp silently masked). Clamp
        // the float, not the wrapped integer.
        let x = (u * self.norm + 1.0)
            .powf(1.0 / self.one_minus_theta)
            .max(1.0);
        (x as u64 - 1).min(self.n - 1)
    }
}

/// One application memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Page index within the working set.
    pub page: u64,
    /// Whether the access writes.
    pub write: bool,
    /// Application compute following the access, ns.
    pub compute_ns: u64,
}

/// Which application's access pattern to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// GapBS page rank: random graph walks over a Kronecker (power-law)
    /// graph — zipf-skewed page popularity, light per-access compute.
    RandomGraph,
    /// XSBench: random unionized-grid lookups — mildly skewed pages,
    /// heavy per-access compute.
    XsBench,
    /// Dataframe-style sequential scan over per-thread shards.
    SeqScan,
    /// GUPS with a phase change: zipfian updates in the first 80% of the
    /// working set (phase 0), then the remaining 20% (phase 1).
    Gups,
    /// Metis MapReduce: sequential map over an input shard with scattered
    /// intermediate writes (phase 0), then random-read reduce (phase 1).
    Metis,
    /// §3.2 microbenchmark: sequential reads over a private region sized
    /// so that every access is a major fault.
    SeqFault,
}

impl WorkloadKind {
    /// Base per-access compute in ns (before virtualization inflation).
    pub fn compute_ns(&self) -> u64 {
        match self {
            WorkloadKind::RandomGraph => 150,
            WorkloadKind::XsBench => 1_400,
            // Table 2: the paper's checksum scan sustains 8.61 M ops/s
            // all-local at 48 threads => ~5.6 us per 4 KiB page.
            WorkloadKind::SeqScan => 5_600,
            WorkloadKind::Gups => 120,
            WorkloadKind::Metis => 400,
            WorkloadKind::SeqFault => 0,
        }
    }

    /// Whether this workload has a phase change (drives Figs. 11–12).
    pub fn has_phases(&self) -> bool {
        matches!(self, WorkloadKind::Gups | WorkloadKind::Metis)
    }
}

/// A per-thread access stream.
///
/// Streams are infinite; the runner decides how many ops to draw. Phase
/// changes (GUPS, Metis) are driven externally via [`Stream::set_phase`].
pub struct Stream {
    kind: WorkloadKind,
    thread: u64,
    threads: u64,
    wss_pages: u64,
    rng: SplitMix64,
    zipf_a: Zipf,
    zipf_b: Zipf,
    /// Hot component of the random-access workloads (power-law page
    /// popularity).
    zipf_wss: Zipf,
    /// Probability (per mille) that an access is uniform over the whole
    /// working set instead of zipf-hot.
    uniform_permille: u32,
    seq_pos: u64,
    phase: usize,
}

impl Stream {
    /// Creates the stream for `thread` of `threads` over `wss_pages`.
    pub fn new(
        kind: WorkloadKind,
        thread: usize,
        threads: usize,
        wss_pages: u64,
        seed: u64,
    ) -> Self {
        let region_a = (wss_pages * 4 / 5).max(1);
        let region_b = (wss_pages - region_a).max(1);
        // Mixture calibrated against the paper's ideal curves (Figs. 1,
        // 3, 9): a zipf(0.99) hot component (power-law vertex/grid
        // popularity) plus a uniform cold component. Solving the §3.1
        // ideal model against the paper's reported drops gives ~3%
        // uniform for GapBS and ~43% for XSBench (whose heavy per-access
        // compute hides a far more uniform grid).
        let uniform_permille = match kind {
            WorkloadKind::RandomGraph => 30u32,
            _ => 430,
        };
        Stream {
            kind,
            thread: thread as u64,
            threads: threads.max(1) as u64,
            wss_pages,
            rng: SplitMix64::new(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9)),
            zipf_a: Zipf::new(region_a, 0.99),
            zipf_b: Zipf::new(region_b, 0.99),
            zipf_wss: Zipf::new(wss_pages, 0.99),
            uniform_permille,
            seq_pos: 0,
            phase: 0,
        }
    }

    /// Draws a page from the zipf+uniform mixture, scattering hot ranks
    /// across the address space so that popularity is not spatially
    /// sequential.
    fn mixed_page(&mut self) -> u64 {
        if self.rng.next_below(1_000) < self.uniform_permille as u64 {
            self.rng.next_below(self.wss_pages)
        } else {
            let rank = self.zipf_wss.sample(&self.rng);
            mage_sim::rng::mix64(rank) % self.wss_pages
        }
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Current phase (0 or 1).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Switches the stream to `phase` (working-set shift).
    pub fn set_phase(&mut self, phase: usize) {
        if phase != self.phase {
            self.phase = phase;
            self.seq_pos = 0;
        }
    }

    /// My contiguous shard of `[0, wss)` for sequential workloads.
    fn shard(&self) -> (u64, u64) {
        let per = self.wss_pages / self.threads;
        let start = self.thread * per;
        let len = if self.thread == self.threads - 1 {
            self.wss_pages - start
        } else {
            per
        };
        (start, len.max(1))
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let compute = self.kind.compute_ns();
        match self.kind {
            WorkloadKind::RandomGraph => Op {
                page: self.mixed_page(),
                write: self.rng.next_below(20) == 0,
                compute_ns: compute,
            },
            WorkloadKind::XsBench => Op {
                page: self.mixed_page(),
                write: false,
                compute_ns: compute,
            },
            WorkloadKind::SeqScan | WorkloadKind::SeqFault => {
                let (start, len) = self.shard();
                let page = start + self.seq_pos % len;
                self.seq_pos += 1;
                Op {
                    page,
                    write: false,
                    compute_ns: compute,
                }
            }
            WorkloadKind::Gups => {
                let region_a = (self.wss_pages * 4 / 5).max(1);
                let page = if self.phase == 0 {
                    self.zipf_a.sample(&self.rng)
                } else {
                    region_a + self.zipf_b.sample(&self.rng)
                };
                Op {
                    page: page.min(self.wss_pages - 1),
                    write: true,
                    compute_ns: compute,
                }
            }
            WorkloadKind::Metis => {
                // Input 60%, intermediate 30%, output 10% of the WSS.
                let input = (self.wss_pages * 6 / 10).max(1);
                let inter = (self.wss_pages * 3 / 10).max(1);
                let output = (self.wss_pages - input - inter).max(1);
                if self.phase == 0 {
                    // Map: sequential input reads; every 4th op scatters a
                    // write into the intermediate region.
                    self.seq_pos += 1;
                    if self.seq_pos.is_multiple_of(4) {
                        Op {
                            page: input + self.rng.next_below(inter),
                            write: true,
                            compute_ns: compute,
                        }
                    } else {
                        let (start, len) = {
                            let per = input / self.threads;
                            let s = self.thread * per;
                            (s, per.max(1))
                        };
                        Op {
                            page: start + (self.seq_pos / 4 * 3 + self.seq_pos % 4) % len,
                            write: false,
                            compute_ns: compute,
                        }
                    }
                } else {
                    // Reduce: random intermediate reads + output writes.
                    self.seq_pos += 1;
                    if self.seq_pos.is_multiple_of(8) {
                        Op {
                            page: input + inter + self.rng.next_below(output),
                            write: true,
                            compute_ns: compute,
                        }
                    } else {
                        Op {
                            page: input + self.rng.next_below(inter),
                            write: false,
                            compute_ns: compute,
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10_000, 0.99);
        let rng = SplitMix64::new(1);
        let mut head = 0u64;
        let n = 100_000;
        for _ in 0..n {
            let v = z.sample(&rng);
            assert!(v < 10_000);
            if v < 100 {
                head += 1;
            }
        }
        // Zipf(0.99): the top 1% of keys draw well over a third of
        // accesses; uniform would give 1%.
        assert!(head as f64 / n as f64 > 0.3, "head share {head}");
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn zipf_rejects_theta_zero() {
        // θ = 0.0 is documented out of domain (uniform is next_below's
        // job); the old half-open range check accepted it.
        Zipf::new(100, 0.0);
    }

    #[test]
    fn zipf_huge_domain_never_underflows() {
        // n ≥ 2^32: norm is large, so tiny u values produce inverse-CDF
        // bases barely above 1.0 where powf's rounding can dip below
        // 1.0. Before the float clamp, `x as u64 - 1` then underflowed —
        // a panic in this debug-built test, a wrap to u64::MAX silently
        // hidden by `.min(n-1)` in release. Drive the sampler hard over
        // the huge domain (many seeds reach the u ≈ 0 head) and pin that
        // every draw is in range and rank 0 is genuinely reachable.
        let n = 1u64 << 33;
        let z = Zipf::new(n, 0.99);
        let mut saw_zero = false;
        for seed in 0..64u64 {
            let rng = SplitMix64::new(seed);
            for _ in 0..10_000 {
                let v = z.sample(&rng);
                assert!(v < n, "sample {v} out of range");
                saw_zero |= v == 0;
            }
        }
        assert!(saw_zero, "the hottest rank must be reachable, not clamped away");
    }

    #[test]
    fn zipf_deterministic_for_seed() {
        let z = Zipf::new(1000, 0.9);
        let a = SplitMix64::new(7);
        let b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&a), z.sample(&b));
        }
    }

    #[test]
    fn seqscan_shards_are_disjoint_and_cover() {
        let threads = 4;
        let wss = 1_000;
        let mut seen = vec![false; wss as usize];
        for t in 0..threads {
            let mut s = Stream::new(WorkloadKind::SeqScan, t, threads, wss, 1);
            let (start, len) = s.shard();
            for _ in 0..len {
                let op = s.next_op();
                assert!(op.page >= start && op.page < start + len);
                seen[op.page as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "shards must cover the WSS");
    }

    #[test]
    fn seqscan_wraps_around() {
        let mut s = Stream::new(WorkloadKind::SeqScan, 0, 2, 100, 1);
        let first = s.next_op().page;
        for _ in 0..49 {
            s.next_op();
        }
        assert_eq!(s.next_op().page, first, "wraps after the shard");
    }

    #[test]
    fn gups_phases_use_disjoint_regions() {
        let wss = 10_000;
        let mut s = Stream::new(WorkloadKind::Gups, 0, 1, wss, 3);
        let boundary = wss * 4 / 5;
        for _ in 0..1_000 {
            assert!(s.next_op().page < boundary, "phase 0 stays in region A");
        }
        s.set_phase(1);
        for _ in 0..1_000 {
            assert!(s.next_op().page >= boundary, "phase 1 stays in region B");
        }
    }

    #[test]
    fn gups_is_write_heavy() {
        let mut s = Stream::new(WorkloadKind::Gups, 0, 1, 1000, 3);
        assert!((0..100).all(|_| s.next_op().write));
    }

    #[test]
    fn metis_map_reads_input_reduce_reads_intermediate() {
        let wss = 10_000;
        let input = wss * 6 / 10;
        let inter = wss * 3 / 10;
        let mut s = Stream::new(WorkloadKind::Metis, 0, 2, wss, 5);
        let mut map_reads_in_input = 0;
        for _ in 0..400 {
            let op = s.next_op();
            if !op.write && op.page < input {
                map_reads_in_input += 1;
            }
        }
        assert!(map_reads_in_input > 250);
        s.set_phase(1);
        let mut reduce_in_inter = 0;
        for _ in 0..400 {
            let op = s.next_op();
            if op.page >= input && op.page < input + inter {
                reduce_in_inter += 1;
            }
        }
        assert!(reduce_in_inter > 250);
    }

    #[test]
    fn compute_costs_ordered() {
        assert!(WorkloadKind::XsBench.compute_ns() > WorkloadKind::RandomGraph.compute_ns());
        assert_eq!(WorkloadKind::SeqFault.compute_ns(), 0);
    }
}
