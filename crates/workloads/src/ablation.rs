//! Fig-17-style eviction-policy ablation behind `BENCH_policies.json`.
//!
//! The sweep crosses the policy zoo (`EvictionPolicyKind`) with two
//! access patterns and three local-memory fractions on the MAGE-Lib
//! preset, holding everything else fixed — so each cell isolates the
//! victim-selection policy exactly the way the paper's Fig. 17 isolates
//! one knob at a time. The figure of merit is the *re-fault rate*:
//! the fraction of major faults whose page was still on the accounting
//! ghost list, i.e. pages the policy evicted and then needed right back
//! (lower is better). Throughput and tail latency ride along so accuracy
//! gains that cost throughput are visible in the same row.
//!
//! All metrics are virtual-time quantities from
//! [`RunReport`](crate::runner::RunReport) measurement
//! windows — unlike the hotloop harness there is no wall clock anywhere,
//! so the committed report is bit-reproducible across hosts.
//!
//! The emitted JSON (`schema: mage-bench-policies/v1`) is hand-rolled —
//! the workspace has no serde — and parsed back by the same module for
//! validation and the CI smoke stage.

use mage::{EvictionPolicyKind, SystemConfig};
use mage_mmu::Topology;

use crate::patterns::WorkloadKind;
use crate::runner::{run_batch, RunConfig};

/// JSON schema marker written to (and expected in) `BENCH_policies.json`.
pub const SCHEMA: &str = "mage-bench-policies/v1";

/// Local-memory fractions swept (the x-axis of the ablation).
pub const LOCAL_FRACTIONS: [f64; 3] = [0.2, 0.5, 0.8];

/// The policy zoo under ablation. `AgingClock` rides along so the sweep
/// covers every built-in (the acceptance bar is ≥ 3 policies).
pub fn policies() -> Vec<EvictionPolicyKind> {
    vec![
        EvictionPolicyKind::SecondChance,
        EvictionPolicyKind::Fifo,
        EvictionPolicyKind::AgingClock { hot_rounds: 3 },
        EvictionPolicyKind::ApproxLru,
        EvictionPolicyKind::S3Fifo,
    ]
}

/// The two access patterns swept: skewed point updates with a phase
/// change (GUPS) and power-law graph walks (page rank).
pub fn workloads() -> [WorkloadKind; 2] {
    [WorkloadKind::Gups, WorkloadKind::RandomGraph]
}

/// Stable id of a workload in the report.
pub fn workload_name(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::RandomGraph => "pagerank",
        WorkloadKind::XsBench => "xsbench",
        WorkloadKind::SeqScan => "seqscan",
        WorkloadKind::Gups => "gups",
        WorkloadKind::Metis => "metis",
        WorkloadKind::SeqFault => "seqfault",
    }
}

/// One measured cell of the policy × workload × fraction cube.
#[derive(Clone, Debug)]
pub struct PolicyCell {
    /// Policy display name (`EvictionPolicyKind::name`).
    pub policy: &'static str,
    /// Workload id ([`workload_name`]).
    pub workload: &'static str,
    /// Fraction of the working set resident locally.
    pub local_frac: f64,
    /// Application throughput, M ops/s.
    pub mops: f64,
    /// Major faults in the measurement window.
    pub major_faults: u64,
    /// Major faults that hit the ghost list (evicted too early).
    pub re_faults: u64,
    /// All ghost hits (re-faults + cancels + requeues).
    pub ghost_hits: u64,
    /// `re_faults / major_faults` — the figure of merit, lower is better.
    pub re_fault_rate: f64,
    /// p99 major-fault latency, ns.
    pub fault_p99_ns: u64,
}

fn run_cell(
    policy: EvictionPolicyKind,
    kind: WorkloadKind,
    local_frac: f64,
    quick: bool,
) -> PolicyCell {
    let (wss, ops, threads) = if quick {
        (2_048, 512, 2)
    } else {
        (8_192, 2_048, 4)
    };
    let system = SystemConfig::mage_lib().with_eviction_policy(policy);
    let mut cfg = RunConfig::new(system, kind, threads, wss, local_frac);
    cfg.ops_per_thread = ops;
    // Let residency converge to the access distribution before measuring,
    // so the window sees steady-state policy behaviour, not cold start.
    cfg.warmup_ops = ops / 4;
    cfg.seed = 0xAB1A;
    cfg.topo = Topology::single_socket(16);
    let report = run_batch(&cfg);
    PolicyCell {
        policy: policy.name(),
        workload: workload_name(kind),
        local_frac,
        mops: report.mops(),
        major_faults: report.major_faults,
        re_faults: report.re_faults,
        ghost_hits: report.ghost_hits,
        re_fault_rate: report.re_fault_rate(),
        fault_p99_ns: report.fault_p99_ns,
    }
}

/// Runs the full cube. `quick` shrinks every cell (~10× less work) for
/// the CI smoke stage; cell ids are identical in both modes.
pub fn run_ablation(quick: bool) -> Vec<PolicyCell> {
    let mut cells = Vec::new();
    for kind in workloads() {
        for &frac in &LOCAL_FRACTIONS {
            for policy in policies() {
                cells.push(run_cell(policy, kind, frac, quick));
            }
        }
    }
    cells
}

/// `(workload, local_frac)` groups where S3-FIFO's re-fault rate is
/// strictly below every other policy's.
pub fn s3fifo_win_cells(cells: &[PolicyCell]) -> Vec<(&'static str, f64)> {
    let mut wins = Vec::new();
    for kind in workloads() {
        let w = workload_name(kind);
        for &frac in &LOCAL_FRACTIONS {
            let group: Vec<&PolicyCell> = cells
                .iter()
                .filter(|c| c.workload == w && c.local_frac == frac)
                .collect();
            let Some(s3) = group.iter().find(|c| c.policy == "s3-fifo") else {
                continue;
            };
            if group
                .iter()
                .filter(|c| c.policy != "s3-fifo")
                .all(|c| s3.re_fault_rate < c.re_fault_rate)
            {
                wins.push((w, frac));
            }
        }
    }
    wins
}

/// Renders the cells as `mage-bench-policies/v1` JSON.
pub fn render_json(cells: &[PolicyCell], quick: bool) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let mut line = format!(
            "    {{\"policy\": \"{}\", \"workload\": \"{}\", \"local_frac\": {:.2}, \
             \"mops\": {:.4}, \"major_faults\": {}, \"re_faults\": {}, \
             \"ghost_hits\": {}, \"re_fault_rate\": {:.6}, \"fault_p99_ns\": {}}}",
            c.policy,
            c.workload,
            c.local_frac,
            c.mops,
            c.major_faults,
            c.re_faults,
            c.ghost_hits,
            c.re_fault_rate,
            c.fault_p99_ns,
        );
        if i + 1 < cells.len() {
            line.push(',');
        }
        line.push('\n');
        out.push_str(&line);
    }
    out.push_str("  ],\n");
    let wins = s3fifo_win_cells(cells);
    out.push_str("  \"s3fifo_refault_wins\": [\n");
    for (i, (w, frac)) in wins.iter().enumerate() {
        let mut line = format!("    {{\"workload\": \"{w}\", \"local_frac\": {frac:.2}}}");
        if i + 1 < wins.len() {
            line.push(',');
        }
        line.push('\n');
        out.push_str(&line);
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(policy, workload, local_frac, re_fault_rate)` rows from a
/// previously emitted report. A minimal scanner over our own stable
/// output format — not a general JSON parser.
pub fn parse_cells(json: &str) -> Vec<(String, String, f64, f64)> {
    fn str_field(line: &str, key: &str) -> Option<String> {
        let tag = format!("\"{key}\": \"");
        let at = line.find(&tag)?;
        let rest = &line[at + tag.len()..];
        Some(rest[..rest.find('"')?].to_string())
    }
    fn num_field(line: &str, key: &str) -> Option<f64> {
        let tag = format!("\"{key}\": ");
        let at = line.find(&tag)?;
        let tail = &line[at + tag.len()..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        num.parse().ok()
    }
    let mut rows = Vec::new();
    for line in json.lines() {
        let (Some(policy), Some(workload), Some(frac), Some(rate)) = (
            str_field(line, "policy"),
            str_field(line, "workload"),
            num_field(line, "local_frac"),
            num_field(line, "re_fault_rate"),
        ) else {
            continue;
        };
        rows.push((policy, workload, frac, rate));
    }
    rows
}

/// Validates an emitted report: schema marker, a complete cube (every
/// policy × workload × fraction cell present exactly once) and sane
/// rates. Returns the parsed rows.
pub fn validate_report(json: &str) -> Result<Vec<(String, String, f64, f64)>, String> {
    if !json.contains(SCHEMA) {
        return Err(format!("missing schema marker {SCHEMA:?}"));
    }
    let rows = parse_cells(json);
    let expected = policies().len() * workloads().len() * LOCAL_FRACTIONS.len();
    if rows.len() != expected {
        return Err(format!("expected {expected} cells, found {}", rows.len()));
    }
    for policy in policies() {
        for kind in workloads() {
            for &frac in &LOCAL_FRACTIONS {
                let hits = rows
                    .iter()
                    .filter(|(p, w, f, _)| {
                        p == policy.name()
                            && w == workload_name(kind)
                            && (f - frac).abs() < 1e-9
                    })
                    .count();
                if hits != 1 {
                    return Err(format!(
                        "cell ({}, {}, {frac}) appears {hits} times",
                        policy.name(),
                        workload_name(kind)
                    ));
                }
            }
        }
    }
    for (policy, workload, frac, rate) in &rows {
        if !(0.0..=1.0).contains(rate) {
            return Err(format!(
                "cell ({policy}, {workload}, {frac}) has re-fault rate {rate} outside [0, 1]"
            ));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_parses_and_validates() {
        // Synthetic cells: the renderer/parser round-trip must not need a
        // (slow) simulation run.
        let mut cells = Vec::new();
        for kind in workloads() {
            for &frac in &LOCAL_FRACTIONS {
                for (i, policy) in policies().into_iter().enumerate() {
                    cells.push(PolicyCell {
                        policy: policy.name(),
                        workload: workload_name(kind),
                        local_frac: frac,
                        mops: 1.0 + i as f64,
                        major_faults: 1_000,
                        re_faults: 100 * (i as u64 + 1),
                        ghost_hits: 120 * (i as u64 + 1),
                        re_fault_rate: 0.1 * (i as f64 + 1.0),
                        fault_p99_ns: 10_000,
                    });
                }
            }
        }
        let json = render_json(&cells, true);
        let rows = validate_report(&json).expect("synthetic report validates");
        assert_eq!(rows.len(), cells.len());
        // S3-FIFO is listed last (highest synthetic rate) => no wins.
        assert!(s3fifo_win_cells(&cells).is_empty());
        assert!(json.contains("\"s3fifo_refault_wins\": ["));
    }

    #[test]
    fn winner_detection_requires_strict_wins() {
        let mk = |policy: &'static str, rate: f64| PolicyCell {
            policy,
            workload: "gups",
            local_frac: 0.5,
            mops: 1.0,
            major_faults: 100,
            re_faults: (rate * 100.0) as u64,
            ghost_hits: 0,
            re_fault_rate: rate,
            fault_p99_ns: 1,
        };
        let tie = vec![mk("second-chance", 0.2), mk("s3-fifo", 0.2)];
        assert!(s3fifo_win_cells(&tie).is_empty(), "ties are not wins");
        let win = vec![mk("second-chance", 0.2), mk("s3-fifo", 0.1)];
        assert_eq!(s3fifo_win_cells(&win), vec![("gups", 0.5)]);
    }

    #[test]
    fn validate_rejects_incomplete_cubes() {
        assert!(validate_report("{}").is_err());
        let one_cell = format!(
            "{{\"schema\": \"{SCHEMA}\"}}\n    {{\"policy\": \"fifo\", \"workload\": \"gups\", \
             \"local_frac\": 0.20, \"re_fault_rate\": 0.5}}\n"
        );
        assert!(validate_report(&one_cell).is_err(), "cube incomplete");
    }
}
