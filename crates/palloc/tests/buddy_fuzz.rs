//! Adversarial seeded fuzz for the buddy allocator: arbitrary
//! interleavings of mixed-order allocs and frees against a shadow model
//! of outstanding blocks.
//!
//! Invariants checked after every operation:
//! - a returned block is order-aligned and inside the managed range;
//! - outstanding blocks never overlap;
//! - frame conservation: `free_frames + Σ 2^order(outstanding)` equals
//!   the total at all times;
//! - freeing everything coalesces back to a fully free pool.

use std::collections::BTreeSet;

use mage_palloc::buddy::MAX_ORDER;
use mage_palloc::BuddyAllocator;
use mage_sim::rng::{self, SplitMix64};

/// Shadow model: the set of outstanding (base, order) blocks.
struct Shadow {
    total: u64,
    live: Vec<(u64, u32)>,
}

impl Shadow {
    fn frames_out(&self) -> u64 {
        self.live.iter().map(|&(_, o)| 1u64 << o).sum()
    }

    fn check(&self, b: &BuddyAllocator) {
        assert_eq!(
            b.free_frames() + self.frames_out(),
            self.total,
            "frame conservation broken"
        );
        // Outstanding blocks are disjoint: sort by base, check gaps.
        let mut spans: Vec<(u64, u64)> = self
            .live
            .iter()
            .map(|&(base, o)| (base, base + (1u64 << o)))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlapping blocks: [{:#x},{:#x}) and [{:#x},{:#x})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}

#[test]
fn mixed_order_alloc_free_fuzz() {
    let cases = SplitMix64::new(0xB0DD7);
    for case in 0..24u64 {
        let nframes = 1 + cases.next_below(5_000);
        let stream = rng::stream(0xB0DD7, case);
        let mut b = BuddyAllocator::new(nframes);
        let mut shadow = Shadow {
            total: nframes,
            live: Vec::new(),
        };
        for _ in 0..400 {
            if stream.next_below(2) == 0 {
                let order = stream.next_below(u64::from(MAX_ORDER) / 2 + 1) as u32;
                if let Some(base) = b.alloc(order) {
                    assert_eq!(base % (1 << order), 0, "misaligned block {base:#x}");
                    assert!(
                        base + (1u64 << order) <= nframes,
                        "block {base:#x} order {order} out of range"
                    );
                    shadow.live.push((base, order));
                } else {
                    // Refusal must mean no sufficiently large block
                    // could exist, not that frames leaked: a pool with
                    // zero outstanding frames always satisfies order 0.
                    if order == 0 {
                        assert_eq!(b.free_frames(), 0, "order-0 refusal with free frames");
                    }
                }
            } else if !shadow.live.is_empty() {
                let i = stream.next_below(shadow.live.len() as u64) as usize;
                let (base, order) = shadow.live.swap_remove(i);
                b.free(base, order);
            }
            shadow.check(&b);
        }
        // Drain: free everything, expect full coalescing.
        for (base, order) in shadow.live.drain(..) {
            b.free(base, order);
        }
        assert_eq!(b.free_frames(), nframes, "case {case}: pool did not recoalesce");
    }
}

#[test]
fn batch_paths_agree_with_single_frame_paths() {
    let stream = rng::stream(0xBA7C4, 0);
    let mut b = BuddyAllocator::new(2_048);
    let mut held: Vec<u64> = Vec::new();
    for _ in 0..64 {
        let want = 1 + stream.next_below(32) as usize;
        let before = held.len();
        b.alloc_batch(want, &mut held);
        let got = held.len() - before;
        assert!(got <= want);
        // Uniqueness across everything currently held.
        let unique: BTreeSet<u64> = held.iter().copied().collect();
        assert_eq!(unique.len(), held.len(), "batch returned a duplicate frame");
        if stream.next_below(3) == 0 {
            let keep = stream.next_below(held.len() as u64 + 1) as usize;
            let returned: Vec<u64> = held.split_off(keep);
            b.free_batch(&returned);
        }
    }
    b.free_batch(&held);
    assert_eq!(b.free_frames(), 2_048);
}

#[test]
#[should_panic(expected = "double or invalid free")]
fn double_free_is_detected() {
    let mut b = BuddyAllocator::new(64);
    let f = b.alloc(0).expect("frame");
    b.free(f, 0);
    b.free(f, 0);
}

#[test]
#[should_panic(expected = "double or invalid free")]
fn freeing_an_unallocated_block_is_detected() {
    let mut b = BuddyAllocator::new(64);
    b.free(8, 1);
}
