//! Physical-frame and remote-slot allocators for far-memory paging.
//!
//! Page circulation — frames moving between the free pool and the used
//! pool as pages fault in and evict — is Challenge 3 of the paper
//! (§3.3.3). This crate provides every allocator design the paper
//! compares:
//!
//! **Local (frame) allocators**, see [`local::LocalAllocator`]:
//!
//! - a global-lock **buddy** allocator (DiLOS's bottleneck: "a global
//!   sleepable mutex protecting its physical page allocator", §3.2),
//! - Linux-style **per-CPU page caches** in front of the buddy (Hermit's
//!   fast path),
//! - MAGE's **three-level hierarchy**: per-core free-page caches, a shared
//!   concurrent queue for batch operations, and the buddy as fallback
//!   (§5.2). Application threads and eviction threads take different
//!   paths: faulting threads pop from their core cache; evictors push
//!   whole reclaimed batches to the shared queue.
//!
//! **Remote allocators**, see [`remote::RemoteAllocator`]:
//!
//! - a Linux-swap-style global-spinlock **slot bitmap** (Hermit's
//!   bottleneck, §3.3.3),
//! - **VMA-level direct mapping** with no allocation at all (DiLOS and
//!   MAGE: `local_addr + 512KB` maps to `remote_addr + 512KB`, §4.2.3).

pub mod buddy;
pub mod local;
pub mod remote;

pub use buddy::BuddyAllocator;
pub use local::{LocalAllocStats, LocalAllocator, LocalAllocatorKind};
pub use remote::{RemoteAllocator, SwapBitmap};
