//! A binary buddy allocator over physical frame numbers.
//!
//! This is the classic power-of-two buddy system used by Linux and OSv
//! (§3.3.3): memory is carved into blocks of `2^order` frames; freeing a
//! block coalesces it with its buddy whenever the buddy is also free. The
//! allocator itself is synchronous — concurrency policy (global lock,
//! per-CPU caches, MAGE's multi-layer hierarchy) is layered on top in
//! [`crate::local`].

use mage_sim::slab::PageMap;
use std::collections::BTreeSet;

/// Maximum block order (2^10 frames = 4 MiB blocks at 4 KiB pages).
pub const MAX_ORDER: u32 = 10;

/// A binary buddy allocator handing out frame numbers.
///
/// # Examples
///
/// ```
/// use mage_palloc::BuddyAllocator;
///
/// let mut b = BuddyAllocator::new(1024);
/// let f = b.alloc(0).expect("frame available");
/// assert!(f < 1024);
/// b.free(f, 0);
/// assert_eq!(b.free_frames(), 1024);
/// ```
pub struct BuddyAllocator {
    nframes: u64,
    /// Free blocks per order. Deliberately a `BTreeSet`: `alloc` picks the
    /// *smallest* free base at each order, and that ordered choice is part
    /// of the deterministic frame-allocation contract pinned by the seam
    /// goldens — an unordered index would change which frames come back.
    /// This is a cold path relative to the per-core caches in
    /// [`crate::local`], which absorb the hot alloc/free traffic.
    free_lists: Vec<BTreeSet<u64>>,
    /// Outstanding allocations (base → order), for exact double-free
    /// detection. Pure point lookups, so an open-addressed [`PageMap`]
    /// suffices: a base can be outstanding at only one order at a time.
    outstanding: PageMap<u32>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `0..nframes`, all free.
    pub fn new(nframes: u64) -> Self {
        let mut b = BuddyAllocator {
            nframes,
            free_lists: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            outstanding: PageMap::new(),
            free_frames: 0,
        };
        // Seed with maximal aligned blocks covering [0, nframes).
        let mut base = 0;
        while base < nframes {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if base % size == 0 && base + size <= nframes {
                    break;
                }
                order -= 1;
            }
            b.free_lists[order as usize].insert(base);
            b.free_frames += 1 << order;
            base += 1 << order;
        }
        b
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.nframes
    }

    /// Allocates a block of `2^order` frames, returning its base frame.
    pub fn alloc(&mut self, order: u32) -> Option<u64> {
        assert!(order <= MAX_ORDER, "order {order} too large");
        // Find the smallest available order >= requested.
        let found = (order..=MAX_ORDER).find(|&o| !self.free_lists[o as usize].is_empty())?;
        // Deterministic choice: smallest base in that order.
        let base = *self.free_lists[found as usize]
            .first()
            .expect("non-empty list");
        self.free_lists[found as usize].remove(&base);
        // Split down to the requested order, returning upper halves.
        let mut o = found;
        while o > order {
            o -= 1;
            let buddy = base + (1u64 << o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.free_frames -= 1 << order;
        self.outstanding.insert(base, order);
        Some(base)
    }

    /// Allocates `n` single frames (order 0), stopping early if exhausted.
    pub fn alloc_batch(&mut self, n: usize, out: &mut Vec<u64>) {
        for _ in 0..n {
            match self.alloc(0) {
                Some(f) => out.push(f),
                None => break,
            }
        }
    }

    /// Frees a block of `2^order` frames at `base`, coalescing buddies.
    ///
    /// # Panics
    ///
    /// Panics if the block is misaligned, out of range, or (detectably)
    /// already free — a double free.
    pub fn free(&mut self, base: u64, order: u32) {
        assert!(order <= MAX_ORDER, "order {order} too large");
        assert_eq!(base % (1 << order), 0, "misaligned free of {base:#x}");
        assert!(base + (1 << order) <= self.nframes, "free out of range");
        assert_eq!(
            self.outstanding.remove(base),
            Some(order),
            "double or invalid free of block {base:#x} order {order}"
        );
        let freed_frames = 1u64 << order;
        let mut base = base;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = base ^ (1u64 << order);
            if buddy + (1 << order) > self.nframes
                || !self.free_lists[order as usize].remove(&buddy)
            {
                break;
            }
            base = base.min(buddy);
            order += 1;
        }
        let inserted = self.free_lists[order as usize].insert(base);
        debug_assert!(inserted, "free-list corruption at {base:#x} order {order}");
        self.free_frames += freed_frames;
    }

    /// Frees a batch of single frames.
    pub fn free_batch(&mut self, frames: &[u64]) {
        for &f in frames {
            self.free(f, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::rng::SplitMix64;

    #[test]
    fn full_pool_after_construction() {
        for n in [1u64, 7, 64, 1000, 4096] {
            let b = BuddyAllocator::new(n);
            assert_eq!(b.free_frames(), n, "nframes {n}");
        }
    }

    #[test]
    fn alloc_free_roundtrip_restores_pool() {
        let mut b = BuddyAllocator::new(256);
        let mut got = Vec::new();
        while let Some(f) = b.alloc(0) {
            got.push(f);
        }
        assert_eq!(got.len(), 256);
        // All frames distinct and in range.
        let set: BTreeSet<u64> = got.iter().copied().collect();
        assert_eq!(set.len(), 256);
        assert!(got.iter().all(|&f| f < 256));
        b.free_batch(&got);
        assert_eq!(b.free_frames(), 256);
        // After coalescing, a max-order block must be allocatable again.
        assert!(b.alloc(8).is_some());
    }

    #[test]
    fn split_and_coalesce() {
        let mut b = BuddyAllocator::new(16);
        let x = b.alloc(2).expect("4 frames"); // [0,4)
        assert_eq!(b.free_frames(), 12);
        let y = b.alloc(2).expect("4 frames"); // [4,8)
        assert_eq!(x ^ 4, y, "buddies allocated adjacently");
        b.free(x, 2);
        b.free(y, 2);
        assert_eq!(b.free_frames(), 16);
        // Coalesced back: an order-4 block exists.
        assert_eq!(b.alloc(4), Some(0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(4);
        assert!(b.alloc(2).is_some());
        assert!(b.alloc(0).is_none());
    }

    #[test]
    #[should_panic(expected = "double or invalid free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(16);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(16);
        b.free(1, 1);
    }

    #[test]
    fn alloc_batch_partial_on_exhaustion() {
        let mut b = BuddyAllocator::new(10);
        let mut out = Vec::new();
        b.alloc_batch(20, &mut out);
        assert_eq!(out.len(), 10);
    }

    /// Any interleaving of allocs and frees preserves the invariants:
    /// no frame handed out twice, free count consistent, and freeing
    /// everything restores the full pool. 64 seeded random interleavings.
    #[test]
    fn random_alloc_free_invariants() {
        for seed in 0..64u64 {
            let rng = SplitMix64::new(0xB0DD_1E50 ^ seed);
            let n = 128u64;
            let mut b = BuddyAllocator::new(n);
            let mut held: Vec<(u64, u32)> = Vec::new();
            let mut held_frames: BTreeSet<u64> = BTreeSet::new();
            let nops = 1 + rng.next_below(199);
            for _ in 0..nops {
                match rng.next_below(4) {
                    op @ (0 | 1) => {
                        // Alloc order 0 or 1.
                        let order = op as u32;
                        if let Some(base) = b.alloc(order) {
                            for i in 0..(1u64 << order) {
                                assert!(
                                    held_frames.insert(base + i),
                                    "frame {} double-allocated",
                                    base + i
                                );
                            }
                            held.push((base, order));
                        }
                    }
                    _ => {
                        if let Some((base, order)) = held.pop() {
                            for i in 0..(1u64 << order) {
                                held_frames.remove(&(base + i));
                            }
                            b.free(base, order);
                        }
                    }
                }
                assert_eq!(
                    b.free_frames() + held_frames.len() as u64,
                    n,
                    "conservation violated (seed {seed})"
                );
            }
            for (base, order) in held.drain(..) {
                b.free(base, order);
            }
            assert_eq!(b.free_frames(), n);
        }
    }
}
