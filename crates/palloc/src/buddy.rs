//! A binary buddy allocator over physical frame numbers.
//!
//! This is the classic power-of-two buddy system used by Linux and OSv
//! (§3.3.3): memory is carved into blocks of `2^order` frames; freeing a
//! block coalesces it with its buddy whenever the buddy is also free. The
//! allocator itself is synchronous — concurrency policy (global lock,
//! per-CPU caches, MAGE's multi-layer hierarchy) is layered on top in
//! [`crate::local`].

use mage_sim::slab::PageMap;
use std::collections::BTreeSet;

/// Maximum block order (2^10 frames = 4 MiB blocks at 4 KiB pages).
pub const MAX_ORDER: u32 = 10;

/// A binary buddy allocator handing out frame numbers.
///
/// # Examples
///
/// ```
/// use mage_palloc::BuddyAllocator;
///
/// let mut b = BuddyAllocator::new(1024);
/// let f = b.alloc(0).expect("frame available");
/// assert!(f < 1024);
/// b.free(f, 0);
/// assert_eq!(b.free_frames(), 1024);
/// ```
pub struct BuddyAllocator {
    nframes: u64,
    /// Free blocks per order. Deliberately a `BTreeSet`: `alloc` picks the
    /// *smallest* free base at each order, and that ordered choice is part
    /// of the deterministic frame-allocation contract pinned by the seam
    /// goldens — an unordered index would change which frames come back.
    /// This is a cold path relative to the per-core caches in
    /// [`crate::local`], which absorb the hot alloc/free traffic.
    free_lists: Vec<BTreeSet<u64>>,
    /// Frontier of the *pristine run*: the never-touched max-order blocks
    /// `[pristine_next, pristine_end)` that construction left
    /// unmaterialized. Construction used to eagerly insert every aligned
    /// block of `[0, nframes)` — O(capacity) host work and memory, which
    /// at terabyte-scale simulated DRAM dominated setup. The run is
    /// consumed lazily, in ascending base order, only when `alloc` needs
    /// a max-order block the materialized set cannot provide; blocks in
    /// it count as free the whole time.
    ///
    /// Determinism/bit-identity argument (the seam goldens pin the exact
    /// frame sequence): every materialized max-order entry has a base
    /// below `pristine_next` — entries come either from construction's
    /// tail decomposition (bases ≥ `pristine_end` can never coalesce to
    /// max order, since `pristine_end + 2^MAX_ORDER > nframes`) or from
    /// frees of previously allocated blocks, and any allocated base lies
    /// below the frontier at its alloc time. So "min of the set, else
    /// the frontier block" is exactly the global smallest free base the
    /// eager representation would have picked.
    pristine_next: u64,
    pristine_end: u64,
    /// Outstanding allocations (base → order), for exact double-free
    /// detection. Pure point lookups, so an open-addressed [`PageMap`]
    /// suffices: a base can be outstanding at only one order at a time.
    outstanding: PageMap<u32>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `0..nframes`, all free.
    ///
    /// O(1) in `nframes`: the aligned max-order run `[0, pristine_end)`
    /// is represented by the pristine frontier, and only the tail
    /// `[pristine_end, nframes)` — at most one block per order — is
    /// materialized eagerly.
    pub fn new(nframes: u64) -> Self {
        let pristine_end = nframes & !((1u64 << MAX_ORDER) - 1);
        let mut b = BuddyAllocator {
            nframes,
            free_lists: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            pristine_next: 0,
            pristine_end,
            outstanding: PageMap::new(),
            free_frames: nframes,
        };
        // Seed the sub-max-order tail with maximal aligned blocks.
        let mut base = pristine_end;
        while base < nframes {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if base.is_multiple_of(size) && base + size <= nframes {
                    break;
                }
                order -= 1;
            }
            debug_assert!(order < MAX_ORDER, "tail blocks are sub-max-order");
            b.free_lists[order as usize].insert(base);
            base += 1 << order;
        }
        b
    }

    /// Whether any free block of exactly `order` exists (materialized or
    /// pristine).
    fn has_free_at(&self, order: u32) -> bool {
        !self.free_lists[order as usize].is_empty()
            || (order == MAX_ORDER && self.pristine_next < self.pristine_end)
    }

    /// Takes the smallest free base at `order`, preferring the
    /// materialized set (whose max-order entries always lie below the
    /// pristine frontier — see the `pristine_next` invariant).
    fn take_smallest(&mut self, order: u32) -> u64 {
        if let Some(&base) = self.free_lists[order as usize].first() {
            self.free_lists[order as usize].remove(&base);
            return base;
        }
        debug_assert_eq!(order, MAX_ORDER, "only max order can be pristine");
        let base = self.pristine_next;
        debug_assert!(base < self.pristine_end, "pristine run exhausted");
        self.pristine_next += 1 << MAX_ORDER;
        base
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.nframes
    }

    /// Host-side metadata entries currently held: materialized free-list
    /// blocks plus outstanding-allocation records. The pristine run costs
    /// two words however large it is, so right after construction this is
    /// O(1) in `nframes` — the scale bench and the sparse-space
    /// regression read it to pin O(touched) behaviour.
    pub fn metadata_entries(&self) -> u64 {
        self.free_lists.iter().map(|l| l.len() as u64).sum::<u64>() + self.outstanding.len() as u64
    }

    /// Allocates a block of `2^order` frames, returning its base frame.
    pub fn alloc(&mut self, order: u32) -> Option<u64> {
        assert!(order <= MAX_ORDER, "order {order} too large");
        // Find the smallest available order >= requested.
        let found = (order..=MAX_ORDER).find(|&o| self.has_free_at(o))?;
        // Deterministic choice: smallest base in that order.
        let base = self.take_smallest(found);
        // Split down to the requested order, returning upper halves.
        let mut o = found;
        while o > order {
            o -= 1;
            let buddy = base + (1u64 << o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.free_frames -= 1 << order;
        self.outstanding.insert(base, order);
        Some(base)
    }

    /// Allocates `n` single frames (order 0), stopping early if exhausted.
    pub fn alloc_batch(&mut self, n: usize, out: &mut Vec<u64>) {
        for _ in 0..n {
            match self.alloc(0) {
                Some(f) => out.push(f),
                None => break,
            }
        }
    }

    /// Frees a block of `2^order` frames at `base`, coalescing buddies.
    ///
    /// # Panics
    ///
    /// Panics if the block is misaligned, out of range, or (detectably)
    /// already free — a double free.
    pub fn free(&mut self, base: u64, order: u32) {
        assert!(order <= MAX_ORDER, "order {order} too large");
        assert_eq!(base % (1 << order), 0, "misaligned free of {base:#x}");
        assert!(base + (1 << order) <= self.nframes, "free out of range");
        assert_eq!(
            self.outstanding.remove(base),
            Some(order),
            "double or invalid free of block {base:#x} order {order}"
        );
        let freed_frames = 1u64 << order;
        let mut base = base;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = base ^ (1u64 << order);
            if buddy + (1 << order) > self.nframes
                || !self.free_lists[order as usize].remove(&buddy)
            {
                break;
            }
            base = base.min(buddy);
            order += 1;
        }
        let inserted = self.free_lists[order as usize].insert(base);
        debug_assert!(inserted, "free-list corruption at {base:#x} order {order}");
        self.free_frames += freed_frames;
    }

    /// Frees a batch of single frames.
    pub fn free_batch(&mut self, frames: &[u64]) {
        for &f in frames {
            self.free(f, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::rng::SplitMix64;

    #[test]
    fn full_pool_after_construction() {
        for n in [1u64, 7, 64, 1000, 4096] {
            let b = BuddyAllocator::new(n);
            assert_eq!(b.free_frames(), n, "nframes {n}");
        }
    }

    #[test]
    fn construction_is_o1_even_for_terabyte_pools() {
        // 2^38 frames = 1 PiB of simulated DRAM: the pristine run makes
        // construction O(1), an unaligned tail contributes at most one
        // block per sub-max order, and the pool is still fully usable.
        let unaligned = BuddyAllocator::new((1u64 << 38) + 777);
        assert_eq!(unaligned.free_frames(), (1u64 << 38) + 777);
        assert!(
            unaligned.metadata_entries() <= MAX_ORDER as u64,
            "construction must not materialize the whole pool: {} entries",
            unaligned.metadata_entries()
        );
        // Aligned pool: frames come out smallest-base-first across the
        // pristine frontier (an unaligned pool's sub-max tail blocks
        // legitimately win the low-order search first, as they always
        // did under eager seeding).
        let n = 1u64 << 38;
        let mut b = BuddyAllocator::new(n);
        assert_eq!(b.free_frames(), n);
        assert_eq!(b.metadata_entries(), 0);
        assert_eq!(b.alloc(0), Some(0));
        assert_eq!(b.alloc(MAX_ORDER), Some(1 << MAX_ORDER));
        b.free(0, 0);
        assert_eq!(b.alloc(0), Some(0));
    }

    /// The eager-seeded allocator this module used to build: every
    /// maximal aligned block of `[0, nframes)` materialized up front.
    /// The lazy pristine-run representation must be observationally
    /// identical — same bases from `alloc`, same `None`s, same free
    /// count — under any interleaving, because the seam goldens pin the
    /// exact frame sequence.
    struct EagerRef {
        nframes: u64,
        free_lists: Vec<BTreeSet<u64>>,
        free_frames: u64,
    }

    impl EagerRef {
        fn new(nframes: u64) -> Self {
            let mut r = EagerRef {
                nframes,
                free_lists: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
                free_frames: 0,
            };
            let mut base = 0;
            while base < nframes {
                let mut order = MAX_ORDER;
                loop {
                    let size = 1u64 << order;
                    if base.is_multiple_of(size) && base + size <= nframes {
                        break;
                    }
                    order -= 1;
                }
                r.free_lists[order as usize].insert(base);
                r.free_frames += 1 << order;
                base += 1 << order;
            }
            r
        }

        fn alloc(&mut self, order: u32) -> Option<u64> {
            let found =
                (order..=MAX_ORDER).find(|&o| !self.free_lists[o as usize].is_empty())?;
            let base = *self.free_lists[found as usize].first().expect("non-empty");
            self.free_lists[found as usize].remove(&base);
            let mut o = found;
            while o > order {
                o -= 1;
                self.free_lists[o as usize].insert(base + (1u64 << o));
            }
            self.free_frames -= 1 << order;
            Some(base)
        }

        fn free(&mut self, base: u64, order: u32) {
            let freed = 1u64 << order;
            let mut base = base;
            let mut order = order;
            while order < MAX_ORDER {
                let buddy = base ^ (1u64 << order);
                if buddy + (1 << order) > self.nframes
                    || !self.free_lists[order as usize].remove(&buddy)
                {
                    break;
                }
                base = base.min(buddy);
                order += 1;
            }
            self.free_lists[order as usize].insert(base);
            self.free_frames += freed;
        }
    }

    #[test]
    fn lazy_seeding_matches_eager_reference_bit_for_bit() {
        // Pool sizes straddling the max-order boundary: aligned, with a
        // mixed-order tail, smaller than one max-order block, and large
        // enough that allocation crosses the pristine frontier repeatedly.
        for n in [1000u64, 1024, 1026, 3000, 4096, 5333, 8192] {
            for seed in 0..32u64 {
                let rng = SplitMix64::new(0x5EED_BA5E ^ seed);
                let mut lazy = BuddyAllocator::new(n);
                let mut eager = EagerRef::new(n);
                let mut held: Vec<(u64, u32)> = Vec::new();
                for step in 0..400 {
                    assert_eq!(
                        lazy.free_frames(),
                        eager.free_frames,
                        "free count diverged (n {n} seed {seed} step {step})"
                    );
                    if rng.next_below(3) < 2 || held.is_empty() {
                        let order = rng.next_below(MAX_ORDER as u64 + 1) as u32;
                        let a = lazy.alloc(order);
                        let b = eager.alloc(order);
                        assert_eq!(
                            a, b,
                            "alloc(order {order}) diverged (n {n} seed {seed} step {step})"
                        );
                        if let Some(base) = a {
                            held.push((base, order));
                        }
                    } else {
                        let idx = rng.next_below(held.len() as u64) as usize;
                        let (base, order) = held.swap_remove(idx);
                        lazy.free(base, order);
                        eager.free(base, order);
                    }
                }
                for (base, order) in held {
                    lazy.free(base, order);
                    eager.free(base, order);
                }
                assert_eq!(lazy.free_frames(), n);
                assert_eq!(eager.free_frames, n);
            }
        }
    }

    #[test]
    fn alloc_free_roundtrip_restores_pool() {
        let mut b = BuddyAllocator::new(256);
        let mut got = Vec::new();
        while let Some(f) = b.alloc(0) {
            got.push(f);
        }
        assert_eq!(got.len(), 256);
        // All frames distinct and in range.
        let set: BTreeSet<u64> = got.iter().copied().collect();
        assert_eq!(set.len(), 256);
        assert!(got.iter().all(|&f| f < 256));
        b.free_batch(&got);
        assert_eq!(b.free_frames(), 256);
        // After coalescing, a max-order block must be allocatable again.
        assert!(b.alloc(8).is_some());
    }

    #[test]
    fn split_and_coalesce() {
        let mut b = BuddyAllocator::new(16);
        let x = b.alloc(2).expect("4 frames"); // [0,4)
        assert_eq!(b.free_frames(), 12);
        let y = b.alloc(2).expect("4 frames"); // [4,8)
        assert_eq!(x ^ 4, y, "buddies allocated adjacently");
        b.free(x, 2);
        b.free(y, 2);
        assert_eq!(b.free_frames(), 16);
        // Coalesced back: an order-4 block exists.
        assert_eq!(b.alloc(4), Some(0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(4);
        assert!(b.alloc(2).is_some());
        assert!(b.alloc(0).is_none());
    }

    #[test]
    #[should_panic(expected = "double or invalid free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(16);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(16);
        b.free(1, 1);
    }

    #[test]
    fn alloc_batch_partial_on_exhaustion() {
        let mut b = BuddyAllocator::new(10);
        let mut out = Vec::new();
        b.alloc_batch(20, &mut out);
        assert_eq!(out.len(), 10);
    }

    /// Any interleaving of allocs and frees preserves the invariants:
    /// no frame handed out twice, free count consistent, and freeing
    /// everything restores the full pool. 64 seeded random interleavings.
    #[test]
    fn random_alloc_free_invariants() {
        for seed in 0..64u64 {
            let rng = SplitMix64::new(0xB0DD_1E50 ^ seed);
            let n = 128u64;
            let mut b = BuddyAllocator::new(n);
            let mut held: Vec<(u64, u32)> = Vec::new();
            let mut held_frames: BTreeSet<u64> = BTreeSet::new();
            let nops = 1 + rng.next_below(199);
            for _ in 0..nops {
                match rng.next_below(4) {
                    op @ (0 | 1) => {
                        // Alloc order 0 or 1.
                        let order = op as u32;
                        if let Some(base) = b.alloc(order) {
                            for i in 0..(1u64 << order) {
                                assert!(
                                    held_frames.insert(base + i),
                                    "frame {} double-allocated",
                                    base + i
                                );
                            }
                            held.push((base, order));
                        }
                    }
                    _ => {
                        if let Some((base, order)) = held.pop() {
                            for i in 0..(1u64 << order) {
                                held_frames.remove(&(base + i));
                            }
                            b.free(base, order);
                        }
                    }
                }
                assert_eq!(
                    b.free_frames() + held_frames.len() as u64,
                    n,
                    "conservation violated (seed {seed})"
                );
            }
            for (base, order) in held.drain(..) {
                b.free(base, order);
            }
            assert_eq!(b.free_frames(), n);
        }
    }
}
