//! Remote (far-memory) slot allocators.
//!
//! When a dirty page is evicted, the system must decide *where* in far
//! memory it goes. Linux-derived systems (Hermit) allocate a swap slot
//! under the swap subsystem's global spinlock — a major eviction-path
//! bottleneck at scale (§3.3.3). DiLOS and MAGE eliminate the allocation
//! entirely with VMA-level direct mapping (§4.2.3): the remote location is
//! a fixed linear function of the virtual address.

use mage_sim::stats::Counter;
use mage_sim::sync::{LockStats, SimMutex};
use mage_sim::time::Nanos;
use mage_sim::SimHandle;

/// A Linux-swap-style slot bitmap behind a global lock.
pub struct SwapBitmap {
    sim: SimHandle,
    inner: SimMutex<SwapInner>,
    /// Lock hold time per slot allocation (bitmap scan + bookkeeping).
    op_ns: Nanos,
    /// Successful slot allocations.
    pub allocs: Counter,
    /// Slot frees.
    pub frees: Counter,
}

struct SwapInner {
    free: Vec<u64>,
    next: u64,
    capacity: u64,
}

impl SwapBitmap {
    /// Creates a swap area with `capacity` slots and the given per-op
    /// critical-section cost.
    pub fn new(sim: SimHandle, capacity: u64, op_ns: Nanos) -> Self {
        SwapBitmap {
            inner: SimMutex::new_named(
                sim.clone(),
                "palloc.swap-bitmap",
                SwapInner {
                    free: Vec::new(),
                    next: 0,
                    capacity,
                },
            ),
            sim,
            op_ns,
            allocs: Counter::new(),
            frees: Counter::new(),
        }
    }

    /// Synchronously allocates a slot during setup (no virtual time, no
    /// statistics).
    pub fn seed_alloc(&self) -> Option<u64> {
        self.inner.with_sync(|inner| {
            inner.free.pop().or_else(|| {
                if inner.next < inner.capacity {
                    inner.next += 1;
                    Some(inner.next - 1)
                } else {
                    None
                }
            })
        })
    }

    /// Allocates one swap slot, or `None` when the area is full.
    pub async fn alloc(&self) -> Option<u64> {
        let mut inner = self.inner.lock().await;
        self.sim.sleep(self.op_ns).await;
        let slot = inner.free.pop().or_else(|| {
            if inner.next < inner.capacity {
                inner.next += 1;
                Some(inner.next - 1)
            } else {
                None
            }
        });
        if slot.is_some() {
            self.allocs.inc();
        }
        slot
    }

    /// Frees a swap slot.
    pub async fn free(&self, slot: u64) {
        let mut inner = self.inner.lock().await;
        self.sim.sleep(self.op_ns).await;
        debug_assert!(slot < inner.next, "free of never-allocated slot");
        inner.free.push(slot);
        self.frees.inc();
    }

    /// Contention statistics of the swap lock.
    pub fn lock_stats(&self) -> &LockStats {
        self.inner.stats()
    }
}

/// The remote-slot allocation policy used by a system.
pub enum RemoteAllocator {
    /// VMA-level direct mapping: no allocation, no synchronization
    /// (DiLOS, MAGE). The slot is `vma.remote_page(vpn)`.
    DirectMap,
    /// Global-lock swap bitmap (Hermit / Linux swap subsystem). Boxed:
    /// the bitmap dwarfs the data-free `DirectMap` variant.
    Swap(Box<SwapBitmap>),
}

impl RemoteAllocator {
    /// Resolves the remote page for an eviction of `vpn`, whose VMA
    /// direct-maps it to `direct_rpn`. For `Swap`, allocates a slot and
    /// pays the lock cost; returns `None` only if swap is exhausted.
    pub async fn alloc_for(&self, direct_rpn: u64) -> Option<u64> {
        match self {
            RemoteAllocator::DirectMap => Some(direct_rpn),
            RemoteAllocator::Swap(bitmap) => bitmap.alloc().await,
        }
    }

    /// Releases a remote page when it is faulted back in. Direct mapping
    /// keeps the remote page reserved (it is address-derived), so only
    /// swap areas do work here.
    pub async fn release(&self, rpn: u64) {
        if let RemoteAllocator::Swap(bitmap) = self {
            bitmap.free(rpn).await;
        }
    }

    /// Whether this policy pays a synchronized allocation per eviction.
    pub fn is_synchronized(&self) -> bool {
        matches!(self, RemoteAllocator::Swap(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;
    use std::rc::Rc;

    #[test]
    fn swap_slots_are_unique_and_recycled() {
        let sim = Simulation::new();
        let swap = Rc::new(SwapBitmap::new(sim.handle(), 8, 100));
        let s = Rc::clone(&swap);
        sim.block_on(async move {
            let mut slots = Vec::new();
            for _ in 0..8 {
                slots.push(s.alloc().await.expect("capacity"));
            }
            let uniq: std::collections::BTreeSet<_> = slots.iter().collect();
            assert_eq!(uniq.len(), 8);
            assert!(s.alloc().await.is_none(), "exhausted");
            s.free(slots[3]).await;
            assert_eq!(s.alloc().await, Some(slots[3]), "LIFO recycling");
        });
    }

    #[test]
    fn swap_lock_serializes_contenders() {
        let sim = Simulation::new();
        let swap = Rc::new(SwapBitmap::new(sim.handle(), 1_000, 100));
        for _ in 0..10 {
            let s = Rc::clone(&swap);
            sim.spawn(async move {
                s.alloc().await.unwrap();
            });
        }
        let end = sim.run();
        // 10 allocations serialized at 100 ns each.
        assert_eq!(end.as_nanos(), 1_000);
        assert_eq!(swap.lock_stats().contended(), 9);
    }

    #[test]
    fn direct_map_is_free_of_synchronization() {
        let sim = Simulation::new();
        let ra = Rc::new(RemoteAllocator::DirectMap);
        let r = Rc::clone(&ra);
        sim.block_on(async move {
            assert_eq!(r.alloc_for(1234).await, Some(1234));
            r.release(1234).await;
        });
        assert_eq!(sim.run().as_nanos(), 0, "no virtual time consumed");
        assert!(!ra.is_synchronized());
    }

    #[test]
    fn swap_allocator_uses_allocated_slot_not_direct() {
        let sim = Simulation::new();
        let ra = Rc::new(RemoteAllocator::Swap(Box::new(SwapBitmap::new(sim.handle(), 16, 50))));
        let r = Rc::clone(&ra);
        sim.block_on(async move {
            let slot = r.alloc_for(999).await.expect("capacity");
            assert_eq!(slot, 0, "bitmap slot, not the direct rpn");
            r.release(slot).await;
        });
        assert!(ra.is_synchronized());
    }
}
