//! Local frame-allocator stacks: global buddy, per-CPU caches, and MAGE's
//! three-level hierarchy.
//!
//! All three designs share the same underlying [`BuddyAllocator`]; they
//! differ in the concurrency structure in front of it, which is exactly
//! the paper's Challenge 3 (§3.3.3): the *placement of work under locks*
//! determines how allocation latency scales with thread count.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use mage_sim::race::ShadowRegion;
use mage_sim::stats::{Counter, Histogram};
use mage_sim::sync::{LockStats, SimMutex};
use mage_sim::time::Nanos;
use mage_sim::SimHandle;

use crate::buddy::BuddyAllocator;

/// Which allocator stack fronts the buddy allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalAllocatorKind {
    /// Every operation goes through the global buddy lock (DiLOS §3.2).
    GlobalBuddy,
    /// Linux-style per-CPU page caches refilled in batches (Hermit).
    PcpuCache,
    /// MAGE's hierarchy: per-core cache → shared concurrent queue →
    /// buddy fallback (§5.2). Evictors free into the shared queue.
    MultiLayer,
}

/// Service-time constants for allocator operations (virtual ns).
#[derive(Clone, Debug)]
pub struct LocalAllocCosts {
    /// Per-CPU cache pop/push.
    pub cache_op_ns: Nanos,
    /// Shared-queue batch operation (lock hold time).
    pub queue_op_ns: Nanos,
    /// Buddy alloc/free of one block (lock hold time).
    pub buddy_op_ns: Nanos,
    /// Per-frame cost of a bulk buddy operation (amortized split/merge).
    pub buddy_bulk_per_frame_ns: Nanos,
    /// Frames moved per refill/drain batch.
    pub batch: usize,
}

impl Default for LocalAllocCosts {
    fn default() -> Self {
        LocalAllocCosts {
            cache_op_ns: 40,
            queue_op_ns: 200,
            buddy_op_ns: 300,
            buddy_bulk_per_frame_ns: 120,
            batch: 32,
        }
    }
}

/// Counters exposed by a [`LocalAllocator`].
#[derive(Default)]
pub struct LocalAllocStats {
    /// Allocations served from a per-core cache.
    pub cache_hits: Counter,
    /// Refills served from the shared queue (MultiLayer only).
    pub queue_refills: Counter,
    /// Refills / operations that reached the buddy allocator.
    pub buddy_ops: Counter,
    /// Allocations that found the pool globally empty.
    pub failures: Counter,
    /// Wall-clock (virtual) duration of each successful alloc, ns.
    pub alloc_latency: Histogram,
}

/// An asynchronous frame allocator with a configurable concurrency stack.
///
/// `alloc` returns `None` only when the pool is *globally* exhausted; the
/// caller (fault path or evictor) decides whether to wait or reclaim.
pub struct LocalAllocator {
    sim: SimHandle,
    kind: LocalAllocatorKind,
    costs: LocalAllocCosts,
    buddy: SimMutex<BuddyAllocator>,
    per_core: Vec<RefCell<Vec<u64>>>,
    shared_queue: SimMutex<VecDeque<u64>>,
    free_count: Cell<u64>,
    stats: LocalAllocStats,
    /// Simsan shadow over the per-core caches (index = core) and the
    /// `free_count` watermark (index = cores). Atomic class: the hermit
    /// preset overlaps evictor cores with app cores, and the watermark is
    /// a racy-by-design relaxed counter.
    shadow: ShadowRegion,
}

impl LocalAllocator {
    /// Creates an allocator over `nframes` frames for `cores` cores.
    pub fn new(
        sim: SimHandle,
        kind: LocalAllocatorKind,
        costs: LocalAllocCosts,
        nframes: u64,
        cores: usize,
    ) -> Self {
        let buddy = BuddyAllocator::new(nframes);
        LocalAllocator {
            kind,
            buddy: SimMutex::new_named(sim.clone(), "palloc.buddy", buddy),
            per_core: (0..cores).map(|_| RefCell::new(Vec::new())).collect(),
            shared_queue: SimMutex::new_named(sim.clone(), "palloc.shared-queue", VecDeque::new()),
            free_count: Cell::new(nframes),
            stats: LocalAllocStats::default(),
            costs,
            shadow: ShadowRegion::new(&sim, "palloc"),
            sim,
        }
    }

    /// Shadow index of the `free_count` watermark (one past the per-core
    /// cache indices).
    fn watermark_idx(&self) -> usize {
        self.per_core.len()
    }

    /// The stack in use.
    pub fn kind(&self) -> LocalAllocatorKind {
        self.kind
    }

    /// Frames currently free anywhere in the hierarchy.
    pub fn free_frames(&self) -> u64 {
        self.free_count.get()
    }

    /// Operation counters.
    pub fn stats(&self) -> &LocalAllocStats {
        &self.stats
    }

    /// Contention statistics of the buddy lock.
    pub fn buddy_lock_stats(&self) -> &LockStats {
        self.buddy.stats()
    }

    /// Contention statistics of the shared queue lock.
    pub fn queue_lock_stats(&self) -> &LockStats {
        self.shared_queue.stats()
    }

    /// Synchronously takes up to `n` frames for initial page placement
    /// (setup only; no virtual time passes, no statistics recorded).
    pub fn seed_take(&self, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        self.buddy.with_sync(|b| b.alloc_batch(n, &mut out));
        self.free_count
            .set(self.free_count.get() - out.len() as u64);
        out
    }

    /// Allocates one frame on behalf of `core`.
    pub async fn alloc(&self, core: usize) -> Option<u64> {
        let t0 = self.sim.now();
        let frame = match self.kind {
            LocalAllocatorKind::GlobalBuddy => self.alloc_global().await,
            LocalAllocatorKind::PcpuCache => self.alloc_cached(core, false).await,
            LocalAllocatorKind::MultiLayer => self.alloc_cached(core, true).await,
        };
        match frame {
            Some(_) => {
                mage_sim::racecheck!(self.shadow, atomic self.watermark_idx());
                self.free_count.set(self.free_count.get() - 1);
                self.stats
                    .alloc_latency
                    .record(self.sim.now().saturating_since(t0));
            }
            None => self.stats.failures.inc(),
        }
        frame
    }

    async fn alloc_global(&self) -> Option<u64> {
        let mut buddy = self.buddy.lock().await;
        self.sim.sleep(self.costs.buddy_op_ns).await;
        self.stats.buddy_ops.inc();
        buddy.alloc(0)
    }

    async fn alloc_cached(&self, core: usize, use_shared_queue: bool) -> Option<u64> {
        // Fast path: the core-local cache. Atomic class: evictors free
        // into caches they share with app threads under some presets.
        self.sim.sleep(self.costs.cache_op_ns).await;
        mage_sim::racecheck!(self.shadow, atomic core);
        if let Some(f) = self.per_core[core].borrow_mut().pop() {
            self.stats.cache_hits.inc();
            return Some(f);
        }
        // Middle layer: batch-pop from the shared concurrent queue.
        if use_shared_queue {
            let mut grabbed: Vec<u64> = Vec::new();
            {
                let mut q = self.shared_queue.lock().await;
                self.sim.sleep(self.costs.queue_op_ns).await;
                for _ in 0..self.costs.batch {
                    match q.pop_front() {
                        Some(f) => grabbed.push(f),
                        None => break,
                    }
                }
            }
            if !grabbed.is_empty() {
                self.stats.queue_refills.inc();
                let first = grabbed.pop().expect("non-empty");
                mage_sim::racecheck!(self.shadow, atomic core);
                self.per_core[core].borrow_mut().extend(grabbed);
                return Some(first);
            }
        }
        // Slow path: bulk refill from the buddy allocator.
        let mut refill = Vec::new();
        {
            let mut buddy = self.buddy.lock().await;
            let bulk = self.costs.buddy_op_ns
                + self.costs.buddy_bulk_per_frame_ns * self.costs.batch as u64;
            self.sim.sleep(bulk).await;
            self.stats.buddy_ops.inc();
            buddy.alloc_batch(self.costs.batch, &mut refill);
        }
        let first = refill.pop()?;
        mage_sim::racecheck!(self.shadow, atomic core);
        self.per_core[core].borrow_mut().extend(refill);
        Some(first)
    }

    /// Returns a batch of frames to the pool on behalf of `core`.
    ///
    /// Eviction threads call this with whole reclaimed batches; the path
    /// taken depends on the stack (buddy lock, per-CPU cache with drain,
    /// or MAGE's shared queue).
    pub async fn free_batch(&self, core: usize, frames: &[u64]) {
        if frames.is_empty() {
            return;
        }
        match self.kind {
            LocalAllocatorKind::GlobalBuddy => {
                let mut buddy = self.buddy.lock().await;
                let cost = self.costs.buddy_op_ns
                    + self.costs.buddy_bulk_per_frame_ns * frames.len() as u64;
                self.sim.sleep(cost).await;
                self.stats.buddy_ops.inc();
                buddy.free_batch(frames);
            }
            LocalAllocatorKind::PcpuCache => {
                // Free into the local cache, then drain the excess to the
                // buddy (Linux pcp high-watermark behaviour).
                self.sim.sleep(self.costs.cache_op_ns).await;
                mage_sim::racecheck!(self.shadow, atomic core);
                let drain: Vec<u64> = {
                    let mut cache = self.per_core[core].borrow_mut();
                    cache.extend_from_slice(frames);
                    let high = self.costs.batch * 2;
                    if cache.len() > high {
                        let keep = self.costs.batch;
                        cache.split_off(keep)
                    } else {
                        Vec::new()
                    }
                };
                if !drain.is_empty() {
                    let mut buddy = self.buddy.lock().await;
                    let cost = self.costs.buddy_op_ns
                        + self.costs.buddy_bulk_per_frame_ns * drain.len() as u64;
                    self.sim.sleep(cost).await;
                    self.stats.buddy_ops.inc();
                    buddy.free_batch(&drain);
                }
            }
            LocalAllocatorKind::MultiLayer => {
                // One short lock hold pushes the whole batch.
                let mut q = self.shared_queue.lock().await;
                self.sim.sleep(self.costs.queue_op_ns).await;
                q.extend(frames.iter().copied());
            }
        }
        mage_sim::racecheck!(self.shadow, atomic self.watermark_idx());
        self.free_count
            .set(self.free_count.get() + frames.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_sim::Simulation;
    use std::rc::Rc;

    fn alloc_rig(
        kind: LocalAllocatorKind,
        nframes: u64,
        cores: usize,
    ) -> (Simulation, Rc<LocalAllocator>) {
        let sim = Simulation::new();
        let a = Rc::new(LocalAllocator::new(
            sim.handle(),
            kind,
            LocalAllocCosts::default(),
            nframes,
            cores,
        ));
        (sim, a)
    }

    #[test]
    fn global_buddy_allocates_distinct_frames() {
        let (sim, a) = alloc_rig(LocalAllocatorKind::GlobalBuddy, 64, 2);
        let a2 = Rc::clone(&a);
        let frames = sim.block_on(async move {
            let mut v = Vec::new();
            for _ in 0..64 {
                v.push(a2.alloc(0).await.expect("available"));
            }
            assert!(a2.alloc(0).await.is_none(), "pool exhausted");
            v
        });
        let set: std::collections::BTreeSet<_> = frames.iter().collect();
        assert_eq!(set.len(), 64);
        assert_eq!(a.free_frames(), 0);
        assert_eq!(a.stats().failures.get(), 1);
    }

    #[test]
    fn pcpu_cache_hits_after_refill() {
        let (sim, a) = alloc_rig(LocalAllocatorKind::PcpuCache, 256, 2);
        let a2 = Rc::clone(&a);
        sim.block_on(async move {
            // First alloc refills the cache from the buddy.
            a2.alloc(0).await.unwrap();
            assert_eq!(a2.stats().buddy_ops.get(), 1);
            // The next (batch-1) allocs hit the cache.
            for _ in 0..31 {
                a2.alloc(0).await.unwrap();
            }
            assert_eq!(a2.stats().buddy_ops.get(), 1);
            assert_eq!(a2.stats().cache_hits.get(), 31);
            a2.alloc(0).await.unwrap();
            assert_eq!(a2.stats().buddy_ops.get(), 2, "second refill");
        });
    }

    #[test]
    fn multilayer_evictor_free_feeds_app_alloc() {
        let (sim, a) = alloc_rig(LocalAllocatorKind::MultiLayer, 64, 4);
        let a2 = Rc::clone(&a);
        sim.block_on(async move {
            // Drain the pool completely.
            let mut held = Vec::new();
            while let Some(f) = a2.alloc(1).await {
                held.push(f);
            }
            assert_eq!(held.len(), 64);
            // Evictor on core 3 returns a batch through the shared queue.
            let batch: Vec<u64> = held.drain(..16).collect();
            a2.free_batch(3, &batch).await;
            assert_eq!(a2.free_frames(), 16);
            // App thread on core 0 can allocate again via the queue.
            assert!(a2.alloc(0).await.is_some());
            assert!(a2.stats().queue_refills.get() >= 1);
        });
    }

    #[test]
    fn conservation_across_stacks() {
        for kind in [
            LocalAllocatorKind::GlobalBuddy,
            LocalAllocatorKind::PcpuCache,
            LocalAllocatorKind::MultiLayer,
        ] {
            let (sim, a) = alloc_rig(kind, 128, 2);
            let a2 = Rc::clone(&a);
            sim.block_on(async move {
                let mut held = Vec::new();
                for i in 0..100 {
                    if let Some(f) = a2.alloc(i % 2).await {
                        held.push(f);
                    }
                }
                assert_eq!(a2.free_frames(), 128 - held.len() as u64);
                a2.free_batch(0, &held).await;
                assert_eq!(a2.free_frames(), 128, "kind {kind:?}");
            });
        }
    }

    #[test]
    fn multilayer_is_cheaper_than_global_under_contention() {
        // 16 faulting threads + 1 evictor recycling frames: the
        // multi-layer stack must finish sooner than the global-lock buddy.
        fn run(kind: LocalAllocatorKind) -> u64 {
            let (sim, a) = alloc_rig(kind, 512, 17);
            let h = sim.handle();
            for core in 0..16usize {
                let (a, h) = (Rc::clone(&a), h.clone());
                sim.spawn(async move {
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Some(f) = a.alloc(core).await {
                            held.push(f);
                        }
                        h.sleep(50).await;
                        if held.len() >= 20 {
                            a.free_batch(core, &held).await;
                            held.clear();
                        }
                    }
                });
            }
            sim.run().as_nanos()
        }
        let global = run(LocalAllocatorKind::GlobalBuddy);
        let multi = run(LocalAllocatorKind::MultiLayer);
        assert!(
            multi < global,
            "multi-layer {multi} not faster than global {global}"
        );
    }
}
