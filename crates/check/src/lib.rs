//! mage-check: deterministic schedule exploration with a reference-model
//! oracle and failing-case shrinking.
//!
//! The deterministic simulator makes every run reproducible, but one
//! seed exercises one schedule. This crate turns the simulator into a
//! model checker on a budget (DESIGN.md §9):
//!
//! 1. **Schedule exploration** — each [`Cell`] names one point of the
//!    search space `(seed, fault plan, ops, threads, policy)`; the
//!    executor's pluggable [`ExplorationPolicy`] perturbs which ready
//!    task runs next, so different seeds visit genuinely different
//!    interleavings of the same workload.
//! 2. **Oracles** — at every quiescent point the
//!    [`InvariantRegistry`] checks whole-machine safety properties, and
//!    the differential [`RefModel`] (fed the engine's own page-lifecycle
//!    event stream) cross-checks its abstract per-page state machine
//!    against the concrete PTE bits.
//! 3. **Shrinking** — when a cell fails, [`shrink()`] minimizes every
//!    dimension to a fixpoint and the result's [`Cell::repro_line`] is a
//!    single shell command (`MAGE_CHECK_SEED=… cargo test …`) that
//!    replays the minimal reproducer exactly.
//!
//! Runs are bounded by a poll budget (`Simulation::block_on_bounded`), so
//! a schedule that wedges the engine surfaces as a [`Violation::Runaway`]
//! instead of hanging the suite.

use std::rc::Rc;

use mage::{
    EventSink, EvictionPolicyKind, FarMemory, MachineParams, ReplicationConfig, RetryPolicy,
    SystemConfig,
};
use mage_fabric::FaultPlan;
use mage_mmu::{CoreId, Topology};
use mage_sim::rng;
use mage_sim::{ExplorationPolicy, Simulation};

pub mod invariants;
pub mod model;
pub mod shrink;

pub use invariants::{CheckCtx, InvariantRegistry};
pub use model::{PageState, RefModel};
pub use shrink::{shrink, shrink_with, ShrinkResult};

/// Which exploration policy a cell drives the executor with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The default FIFO schedule (bit-for-bit the golden schedule).
    Fifo,
    /// Uniform seeded pick among the ready tasks.
    SeededRandom,
    /// Seeded per-task priorities, argmax pick.
    PriorityFuzz,
}

impl PolicyKind {
    /// Stable name, used in repro lines and env-var replay.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::SeededRandom => "seeded-random",
            PolicyKind::PriorityFuzz => "priority-fuzz",
        }
    }

    /// Parses a [`name`](PolicyKind::name) back into the kind.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "fifo" => Some(PolicyKind::Fifo),
            "seeded-random" => Some(PolicyKind::SeededRandom),
            "priority-fuzz" => Some(PolicyKind::PriorityFuzz),
            _ => None,
        }
    }
}

/// One point of the exploration space. Everything a run depends on is
/// in the cell, so a cell replays bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Seed for the schedule, the workload streams and the fault plan.
    pub seed: u64,
    /// Fault-plan family index (see `FaultPlan::enumerate`).
    pub plan: usize,
    /// Accesses per thread per phase.
    pub ops: u64,
    /// Application threads.
    pub threads: usize,
    /// Exploration policy driving the executor's ready-queue pick.
    pub policy: PolicyKind,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            seed: 1,
            plan: 0,
            ops: 256,
            threads: 4,
            policy: PolicyKind::SeededRandom,
        }
    }
}

impl Cell {
    /// The executor policy this cell runs under, seeded from the cell.
    pub fn exploration_policy(&self) -> ExplorationPolicy {
        match self.policy {
            PolicyKind::Fifo => ExplorationPolicy::Fifo,
            PolicyKind::SeededRandom => ExplorationPolicy::SeededRandom { seed: self.seed },
            PolicyKind::PriorityFuzz => ExplorationPolicy::PriorityFuzz { seed: self.seed },
        }
    }

    /// A standard sweep of `cells` cells across the first `plans`
    /// fault-plan families, rotating through the exploration policies.
    pub fn sweep(cells: usize, plans: usize) -> Vec<Cell> {
        (0..cells)
            .map(|i| {
                let policy = match i % 3 {
                    0 => PolicyKind::SeededRandom,
                    1 => PolicyKind::PriorityFuzz,
                    _ => PolicyKind::Fifo,
                };
                Cell {
                    seed: i as u64 + 1,
                    plan: i % plans.max(1),
                    policy,
                    ..Cell::default()
                }
            })
            .collect()
    }

    /// The one-line shell command that replays this cell exactly.
    pub fn repro_line(&self) -> String {
        format!(
            "MAGE_CHECK_SEED={} MAGE_CHECK_PLAN={} MAGE_CHECK_OPS={} \
             MAGE_CHECK_THREADS={} MAGE_CHECK_POLICY={} \
             cargo test -q --test check_explore -- replay_cell --nocapture",
            self.seed,
            self.plan,
            self.ops,
            self.threads,
            self.policy.name()
        )
    }

    /// Builds a cell from `MAGE_CHECK_*` environment variables; `None`
    /// if `MAGE_CHECK_SEED` is unset. Unset optional variables keep the
    /// [`Cell::default`] value.
    pub fn from_env() -> Option<Cell> {
        Cell::from_vars(|name| std::env::var(name).ok())
    }

    /// Env-var parsing with an injectable source (for tests).
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Option<Cell> {
        let mut cell = Cell {
            seed: get("MAGE_CHECK_SEED")?.parse().ok()?,
            ..Cell::default()
        };
        if let Some(v) = get("MAGE_CHECK_PLAN") {
            cell.plan = v.parse().ok()?;
        }
        if let Some(v) = get("MAGE_CHECK_OPS") {
            cell.ops = v.parse().ok()?;
        }
        if let Some(v) = get("MAGE_CHECK_THREADS") {
            cell.threads = v.parse().ok()?;
        }
        if let Some(v) = get("MAGE_CHECK_POLICY") {
            cell.policy = PolicyKind::parse(&v)?;
        }
        Some(cell)
    }
}

/// Harness knobs shared by every cell of a sweep: the machine shape and
/// the run budget. Small local memory against a larger working set keeps
/// fault-in and eviction under constant pressure, which is where the
/// interesting interleavings live.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Working-set size in pages (the mapped region).
    pub wss_pages: u64,
    /// Local DRAM quota in pages.
    pub local_pages: u64,
    /// Workload phases; invariants and the model are checked at the
    /// quiescent point after each phase.
    pub phases: usize,
    /// Eviction batch size (small batches → more pipeline boundaries).
    pub eviction_batch: usize,
    /// Poll budget per phase; exhausting it is a [`Violation::Runaway`].
    pub max_polls_per_phase: u64,
    /// Eviction policy the engine runs under. The whole policy zoo must
    /// uphold the same oracles; sweeping this knob checks each member
    /// under adversarial schedules, not just the default.
    pub eviction_policy: EvictionPolicyKind,
    /// Test-only: resurrect the historical settlement double-count bug
    /// (`SystemConfig::with_broken_settlement`) to prove the oracle and
    /// shrinker catch a real defect.
    pub break_settlement: bool,
    /// Test-only: plant the unlocked PTE re-publish bug
    /// (`SystemConfig::with_broken_publish`) to prove the simsan race
    /// oracle catches an ordering defect no functional check can see.
    pub break_publish: bool,
    /// Run every cell on a [`ReplicatedBackend`](mage::ReplicatedBackend)
    /// over two memory nodes with staggered per-node crash windows, and
    /// register the replica-state invariants.
    pub replicate: bool,
    /// Test-only: plant the skipped-backup-repair bug
    /// (`SystemConfig::with_broken_rereplication`) to prove the
    /// replica-coverage invariant catches a node-kill data-loss defect.
    /// Implies nothing unless `replicate` is set.
    pub break_rereplication: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            wss_pages: 512,
            local_pages: 128,
            phases: 2,
            eviction_batch: 16,
            max_polls_per_phase: 4_000_000,
            eviction_policy: EvictionPolicyKind::SecondChance,
            break_settlement: false,
            break_publish: false,
            replicate: false,
            break_rereplication: false,
        }
    }
}

/// What a clean cell run produced (for sweep accounting).
#[derive(Clone, Copy, Debug)]
pub struct CellReport {
    /// Total executor polls the run consumed.
    pub polls: u64,
    /// Major faults serviced.
    pub major_faults: u64,
    /// Pages evicted by the background evictors.
    pub evicted_pages: u64,
    /// Page-lifecycle events the reference model observed.
    pub events: u64,
}

/// A safety violation found by an oracle (or a blown run budget). Every
/// variant carries the evidence needed to read the failure without
/// re-running it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A core's TLB still translates a settled remote page.
    StaleTlb {
        /// The core with the stale entry.
        core: u32,
        /// The settled remote page.
        vpn: u64,
    },
    /// The settlement identity `evicted + sync + cancelled + requeued ≤
    /// unmapped` is broken.
    Settlement {
        /// Sum of the four settlement counters.
        settled: u64,
        /// Pages unmapped by the eviction machinery.
        unmapped: u64,
    },
    /// Resident + free frames exceed the local quota.
    FrameConservation {
        /// Pages tracked resident by accounting.
        resident: u64,
        /// Frames in the free pool.
        free: u64,
        /// The local DRAM quota.
        quota: u64,
    },
    /// A page is neither resident nor remotely reachable.
    LostPage {
        /// The lost page.
        vpn: u64,
    },
    /// The engine emitted an event illegal in the page's abstract state.
    IllegalTransition {
        /// The page the event concerned.
        vpn: u64,
        /// The model state before the event (`None` = never placed).
        state: Option<PageState>,
        /// The event's display name.
        event: &'static str,
    },
    /// The abstract state and the concrete PTE disagree at a quiescent
    /// point.
    ModelMismatch {
        /// The diverging page.
        vpn: u64,
        /// What the model believes.
        state: PageState,
        /// The raw PTE bits observed.
        pte: u64,
    },
    /// The phase's poll budget ran out before the workload completed.
    Runaway {
        /// Polls spent before the budget stopped the run.
        polls: u64,
    },
    /// The simsan happens-before detector found two unordered accesses
    /// to the same shadow-tracked word.
    DataRace {
        /// The fully rendered race report (both sites, tasks, clocks).
        report: String,
    },
    /// A settled remote page has no live replica left: every slot is
    /// `Degraded`, so the page's data survives on no reachable node.
    ReplicaUnreachable {
        /// The page whose remote copies are all gone.
        vpn: u64,
        /// Its backend slot.
        rpn: u64,
    },
    /// Replica states moved outside the legal
    /// Synced↔Degraded→Rebuilding→Synced machine.
    ReplicaTransition {
        /// Illegal transitions recorded by the backend.
        count: u64,
    },
}

impl Violation {
    /// Short stable name of the violated property.
    pub fn name(&self) -> &'static str {
        match self {
            Violation::StaleTlb { .. } => "stale-tlb",
            Violation::Settlement { .. } => "settlement",
            Violation::FrameConservation { .. } => "frame-conservation",
            Violation::LostPage { .. } => "lost-page",
            Violation::IllegalTransition { .. } => "model-transition",
            Violation::ModelMismatch { .. } => "model-mismatch",
            Violation::Runaway { .. } => "runaway",
            Violation::DataRace { .. } => "data-race",
            Violation::ReplicaUnreachable { .. } => "replica-unreachable",
            Violation::ReplicaTransition { .. } => "replica-transition",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::StaleTlb { core, vpn } => {
                write!(f, "stale TLB: core {core} still translates settled remote vpn {vpn:#x}")
            }
            Violation::Settlement { settled, unmapped } => {
                write!(f, "settlement identity broken: settled {settled} > unmapped {unmapped}")
            }
            Violation::FrameConservation {
                resident,
                free,
                quota,
            } => write!(
                f,
                "frame conservation broken: resident {resident} + free {free} > quota {quota}"
            ),
            Violation::LostPage { vpn } => {
                write!(f, "page lost: vpn {vpn:#x} neither resident nor remote")
            }
            Violation::IllegalTransition { vpn, state, event } => write!(
                f,
                "illegal transition: event '{event}' on vpn {vpn:#x} in model state {state:?}"
            ),
            Violation::ModelMismatch { vpn, state, pte } => write!(
                f,
                "model mismatch: vpn {vpn:#x} is {state:?} in the model but PTE bits are {pte:#x}"
            ),
            Violation::Runaway { polls } => {
                write!(f, "runaway schedule: poll budget exhausted after {polls} polls")
            }
            Violation::DataRace { report } => write!(f, "{report}"),
            Violation::ReplicaUnreachable { vpn, rpn } => write!(
                f,
                "replica coverage lost: vpn {vpn:#x} (slot {rpn}) has no synced or rebuilding replica"
            ),
            Violation::ReplicaTransition { count } => {
                write!(f, "replica state machine violated {count} time(s)")
            }
        }
    }
}

/// Runs one cell end to end: build the machine under the cell's fault
/// plan and exploration policy, drive `phases` rounds of seeded random
/// access from `threads` tasks, and evaluate every oracle at each
/// quiescent point. Returns the first violation found.
pub fn run_cell(cell: &Cell, opts: &CheckOptions) -> Result<CellReport, Violation> {
    assert!(cell.threads >= 1, "a cell needs at least one thread");
    let plan = FaultPlan::enumerate(cell.plan, cell.seed);
    let retry = RetryPolicy {
        max_retries: 2,
        ..RetryPolicy::default()
    };
    let mut cfg = SystemConfig::mage_lib()
        .with_eviction_policy(opts.eviction_policy)
        .with_eviction_batch(opts.eviction_batch)
        .with_faults(plan)
        .with_retry(retry);
    if opts.break_settlement {
        cfg = cfg.with_broken_settlement();
    }
    if opts.break_publish {
        cfg = cfg.with_broken_publish();
    }
    if opts.replicate {
        // Two nodes with provably disjoint 30 µs crash windows per 150 µs
        // period; the repair poll sits well under both the window and the
        // inter-outage gap, so the monitor always observes each crash and
        // finishes repairs before the *other* node blinks.
        let nodes = 2;
        let node_plans = (0..nodes)
            .map(|i| FaultPlan::staggered_node_crash(cell.seed, i, nodes, 150_000, 30_000))
            .collect();
        cfg = cfg.with_node_faults(node_plans).with_replication(ReplicationConfig {
            nodes,
            repair_poll_ns: 5_000,
        });
        if opts.break_rereplication {
            cfg = cfg.with_broken_rereplication();
        }
    }
    let cores = (cell.threads + cfg.max_evictors) as u32;

    let sim = Simulation::with_policy(cell.exploration_policy());
    // Simsan rides along as one more oracle: the detector never perturbs
    // the schedule, so the cell still replays bit-for-bit. Collect mode
    // turns the first race into a Violation instead of a panic. Enabled
    // before launch so the engine's shadow regions bind to it.
    let race = sim.enable_race_detection();
    race.set_mode(mage_sim::race::RaceMode::Collect);
    let params = MachineParams {
        topo: Topology::single_socket(cores),
        app_threads: cell.threads,
        local_pages: opts.local_pages,
        remote_pages: opts.wss_pages + opts.local_pages,
        tlb_entries: 64,
        seed: cell.seed,
    };
    let engine = FarMemory::launch(sim.handle(), cfg, params);
    let vma = engine.mmap(opts.wss_pages);
    // The model must observe the initial placements, so tap before
    // populate.
    let refmodel = Rc::new(RefModel::new());
    engine.tap_events(Rc::clone(&refmodel) as Rc<dyn EventSink>);
    engine.populate(&vma);

    let mut registry = InvariantRegistry::standard();
    if opts.replicate {
        // Registered per-run (not in `standard()`): these only mean
        // something on a replicated backend.
        registry.register("replica-unreachable", invariants::replica_coverage);
        registry.register("replica-transition", invariants::replica_transitions);
    }
    for phase in 0..opts.phases {
        let mut joins = Vec::new();
        for t in 0..cell.threads {
            let e = Rc::clone(&engine);
            let lane = (phase * cell.threads + t) as u64;
            let seed = cell.seed;
            let ops = cell.ops;
            let start = vma.start_vpn;
            let wss = vma.pages;
            joins.push(sim.spawn(async move {
                let stream = rng::stream(seed, lane);
                for _ in 0..ops {
                    let vpn = start + stream.next_below(wss);
                    let write = stream.next_below(4) == 0;
                    e.access(CoreId(t as u32), vpn, write).await;
                }
            }));
        }
        let joined = sim.block_on_bounded(
            async move {
                for j in joins {
                    j.await;
                }
            },
            opts.max_polls_per_phase,
        );
        if let Err(progress) = joined {
            return Err(Violation::Runaway {
                polls: progress.polls,
            });
        }
        // Quiescent point: the race oracle first (a race is the most
        // specific evidence), then whole-machine invariants, then the
        // differential model (its own transition log first, then the
        // PTE crosscheck).
        if let Some(report) = race.take_reports().into_iter().next() {
            return Err(Violation::DataRace {
                report: report.to_string(),
            });
        }
        let ctx = CheckCtx {
            engine: &engine,
            vma: &vma,
            local_pages: opts.local_pages,
        };
        registry.check_all(&ctx)?;
        refmodel.crosscheck(&engine, &vma)?;
    }
    engine.shutdown();

    let s = engine.stats();
    Ok(CellReport {
        polls: sim.polls(),
        major_faults: s.major_faults.get(),
        evicted_pages: s.evicted_pages.get(),
        events: refmodel.events_seen(),
    })
}

/// Outcome of an exploration sweep.
#[derive(Clone, Debug)]
pub enum ExploreOutcome {
    /// Every cell passed every oracle.
    Clean {
        /// Cells run.
        cells: usize,
        /// Total executor polls across the sweep.
        polls: u64,
        /// Total major faults exercised.
        major_faults: u64,
    },
    /// A cell failed; it was shrunk to a minimal reproducer.
    Failed {
        /// The original failing cell.
        original: Cell,
        /// The minimized cell, its violation and the shrink cost.
        shrunk: ShrinkResult,
    },
}

/// Runs a sweep of cells; on the first failure, shrinks it (spending at
/// most `shrink_budget` extra runs) and reports the minimal reproducer.
pub fn explore(cells: &[Cell], opts: &CheckOptions, shrink_budget: usize) -> ExploreOutcome {
    let mut polls = 0u64;
    let mut major_faults = 0u64;
    for cell in cells {
        match run_cell(cell, opts) {
            Ok(report) => {
                polls += report.polls;
                major_faults += report.major_faults;
            }
            Err(_) => {
                let shrunk = shrink(cell, opts, shrink_budget);
                return ExploreOutcome::Failed {
                    original: cell.clone(),
                    shrunk,
                };
            }
        }
    }
    ExploreOutcome::Clean {
        cells: cells.len(),
        polls,
        major_faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> CheckOptions {
        CheckOptions {
            wss_pages: 192,
            local_pages: 96,
            phases: 1,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn repro_line_is_one_line_and_round_trips() {
        let cell = Cell {
            seed: 77,
            plan: 3,
            ops: 12,
            threads: 2,
            policy: PolicyKind::PriorityFuzz,
        };
        let line = cell.repro_line();
        assert_eq!(line.lines().count(), 1, "repro must be a single line");
        // Parse the env assignments back out of the line.
        let get = |name: &str| {
            line.split_whitespace().find_map(|tok| {
                tok.strip_prefix(&format!("{name}="))
                    .map(|v| v.to_string())
            })
        };
        assert_eq!(Cell::from_vars(get), Some(cell));
    }

    #[test]
    fn from_vars_defaults_and_rejects_garbage() {
        assert_eq!(Cell::from_vars(|_| None), None, "no seed, no cell");
        let only_seed = Cell::from_vars(|n| (n == "MAGE_CHECK_SEED").then(|| "9".into()));
        assert_eq!(
            only_seed,
            Some(Cell {
                seed: 9,
                ..Cell::default()
            })
        );
        let bad_policy = Cell::from_vars(|n| match n {
            "MAGE_CHECK_SEED" => Some("1".into()),
            "MAGE_CHECK_POLICY" => Some("chaotic-evil".into()),
            _ => None,
        });
        assert_eq!(bad_policy, None);
    }

    #[test]
    fn sweep_covers_policies_and_plans() {
        let cells = Cell::sweep(12, 2);
        assert_eq!(cells.len(), 12);
        assert!(cells.iter().any(|c| c.policy == PolicyKind::Fifo));
        assert!(cells.iter().any(|c| c.policy == PolicyKind::SeededRandom));
        assert!(cells.iter().any(|c| c.policy == PolicyKind::PriorityFuzz));
        assert!(cells.iter().any(|c| c.plan == 0));
        assert!(cells.iter().any(|c| c.plan == 1));
        // Seeds are distinct, so every cell is a different schedule.
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn default_cell_runs_clean() {
        let report = run_cell(&Cell::default(), &quick_opts()).expect("default cell must pass");
        assert!(report.major_faults > 0, "the cell must exercise faults");
        assert!(report.events > 0, "the model must observe events");
        assert!(report.polls > 0);
    }

    #[test]
    fn broken_settlement_is_caught() {
        let opts = CheckOptions {
            break_settlement: true,
            ..quick_opts()
        };
        let err = run_cell(&Cell::default(), &opts).unwrap_err();
        assert_eq!(err.name(), "settlement", "got {err}");
    }

    #[test]
    fn replicated_cell_runs_clean() {
        let opts = CheckOptions {
            replicate: true,
            ..quick_opts()
        };
        let report = run_cell(&Cell::default(), &opts).expect("replicated cell must pass");
        assert!(report.major_faults > 0, "the cell must exercise faults");
    }

    #[test]
    fn broken_rereplication_is_caught() {
        let opts = CheckOptions {
            replicate: true,
            break_rereplication: true,
            phases: 2,
            ..quick_opts()
        };
        let err = run_cell(&Cell::default(), &opts).unwrap_err();
        assert_eq!(err.name(), "replica-unreachable", "got {err}");
    }

    #[test]
    fn broken_publish_is_caught_as_a_data_race() {
        let opts = CheckOptions {
            break_publish: true,
            ..quick_opts()
        };
        let err = run_cell(&Cell::default(), &opts).unwrap_err();
        assert_eq!(err.name(), "data-race", "got {err}");
        let text = err.to_string();
        assert!(text.contains("data race on pte["), "{text}");
    }
}
