//! The invariant registry: named whole-machine safety checks evaluated
//! at quiescent points.
//!
//! Each invariant is a pure inspection function over a [`CheckCtx`]
//! (engine + region + quota); it returns the first [`Violation`] it
//! finds or `None`. The [`standard`](InvariantRegistry::standard)
//! registry carries the four safety properties the engine must uphold
//! under every schedule and fault plan (DESIGN.md §8/§9):
//!
//! 1. **no-stale-tlb** — a settled remote page is translated by no
//!    core's TLB (a stale entry would let the app read a reclaimed
//!    frame);
//! 2. **settlement** — `evicted + sync + cancelled + requeued ≤
//!    unmapped`: every unmapped page settles at most once;
//! 3. **frame-conservation** — resident + free frames never exceed the
//!    local quota (frames mid-circulation are owned by exactly one
//!    path);
//! 4. **no-lost-page** — every page of the region is resident or
//!    remotely reachable, never neither.
//!
//! The registry is open: `register` adds project- or test-specific
//! invariants without touching the harness.

use mage::FarMemory;
use mage_mmu::{CoreId, Vma};

use crate::Violation;

/// Everything an invariant may inspect at a quiescent point.
pub struct CheckCtx<'a> {
    /// The engine under check (read-only inspection).
    pub engine: &'a FarMemory,
    /// The mapped region the workload runs over.
    pub vma: &'a Vma,
    /// The machine's local DRAM quota in pages.
    pub local_pages: u64,
}

/// One named invariant check.
type CheckFn = fn(&CheckCtx) -> Option<Violation>;

/// An ordered collection of named invariants.
#[derive(Default)]
pub struct InvariantRegistry {
    checks: Vec<(&'static str, CheckFn)>,
}

impl InvariantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        InvariantRegistry::default()
    }

    /// The standard four-invariant registry described in the module
    /// docs.
    pub fn standard() -> Self {
        let mut r = InvariantRegistry::new();
        r.register("no-stale-tlb", no_stale_tlb);
        r.register("settlement", settlement);
        r.register("frame-conservation", frame_conservation);
        r.register("no-lost-page", no_lost_page);
        r
    }

    /// Appends a named invariant; checks run in registration order.
    pub fn register(&mut self, name: &'static str, check: CheckFn) {
        self.checks.push((name, check));
    }

    /// Names of the registered invariants, in evaluation order.
    pub fn names(&self) -> Vec<&'static str> {
        self.checks.iter().map(|(n, _)| *n).collect()
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True if no invariant is registered.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Runs every invariant; fails on the first violation.
    pub fn check_all(&self, ctx: &CheckCtx) -> Result<(), Violation> {
        for (_, check) in &self.checks {
            if let Some(v) = check(ctx) {
                return Err(v);
            }
        }
        Ok(())
    }
}

/// Settled remote page ⇒ no core still translates it. A page that is
/// remote *and locked* is mid-eviction: its frame is not reclaimed until
/// the shootdown acks arrive, so a TLB entry there is not yet stale.
fn no_stale_tlb(ctx: &CheckCtx) -> Option<Violation> {
    let cores = ctx.engine.topology().total_cores();
    for i in 0..ctx.vma.pages {
        let vpn = ctx.vma.start_vpn + i;
        let pte = ctx.engine.page_table().get(vpn);
        if pte.is_remote() && !pte.locked() {
            for core in 0..cores {
                if ctx.engine.interrupts().tlb(CoreId(core)).translates(vpn) {
                    return Some(Violation::StaleTlb { core, vpn });
                }
            }
        }
    }
    None
}

/// Settlement identity: every unmapped page settles as at most one of
/// evicted / sync-evicted / cancelled / requeued.
fn settlement(ctx: &CheckCtx) -> Option<Violation> {
    let s = ctx.engine.stats();
    let settled = s.evicted_pages.get()
        + s.sync_evicted_pages.get()
        + s.evict_cancelled_pages.get()
        + s.requeued_victims.get();
    let unmapped = s.unmapped_pages.get();
    if settled > unmapped {
        return Some(Violation::Settlement { settled, unmapped });
    }
    None
}

/// Resident + free frames never exceed the local quota.
fn frame_conservation(ctx: &CheckCtx) -> Option<Violation> {
    let resident = ctx.engine.accounting().resident_pages();
    let free = ctx.engine.allocator().free_frames();
    if resident + free > ctx.local_pages {
        return Some(Violation::FrameConservation {
            resident,
            free,
            quota: ctx.local_pages,
        });
    }
    None
}

/// Replica coverage (replicated backends): a settled remote page must
/// keep at least one replica that is `Synced` or actively `Rebuilding` —
/// all-`Degraded` means the page's data survives on no node, which a
/// correct repair loop makes impossible as long as node outages never
/// overlap. Pages the backend does not track (or unreplicated backends,
/// where `replica_states` is `None` everywhere) are skipped.
pub fn replica_coverage(ctx: &CheckCtx) -> Option<Violation> {
    use mage::ReplicaState;
    let backend = ctx.engine.backend();
    for i in 0..ctx.vma.pages {
        let vpn = ctx.vma.start_vpn + i;
        let pte = ctx.engine.page_table().get(vpn);
        if !pte.is_remote() || pte.locked() {
            continue;
        }
        let rpn = pte.payload();
        if let Some(states) = backend.replica_states(rpn) {
            let alive = states
                .iter()
                .any(|s| matches!(s, ReplicaState::Synced | ReplicaState::Rebuilding));
            if !alive {
                return Some(Violation::ReplicaUnreachable { vpn, rpn });
            }
        }
    }
    None
}

/// Replica states only ever move along the legal
/// Synced↔Degraded→Rebuilding→Synced machine; the backend counts every
/// violation at the single funnel all state writes pass through.
pub fn replica_transitions(ctx: &CheckCtx) -> Option<Violation> {
    let count = ctx
        .engine
        .backend()
        .replication_stats()
        .map(|s| s.illegal_transitions.get())
        .unwrap_or(0);
    if count > 0 {
        return Some(Violation::ReplicaTransition { count });
    }
    None
}

/// Every page of the region is resident or remotely reachable.
fn no_lost_page(ctx: &CheckCtx) -> Option<Violation> {
    for i in 0..ctx.vma.pages {
        let vpn = ctx.vma.start_vpn + i;
        let pte = ctx.engine.page_table().get(vpn);
        if !pte.is_present() && !pte.is_remote() {
            return Some(Violation::LostPage { vpn });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage::{MachineParams, SystemConfig};
    use mage_mmu::Topology;
    use mage_sim::Simulation;

    #[test]
    fn standard_registry_carries_the_four_invariants() {
        let r = InvariantRegistry::standard();
        assert_eq!(
            r.names(),
            [
                "no-stale-tlb",
                "settlement",
                "frame-conservation",
                "no-lost-page"
            ]
        );
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn registry_is_open_for_extension() {
        let mut r = InvariantRegistry::new();
        assert!(r.is_empty());
        r.register("always-fails", |_| Some(Violation::LostPage { vpn: 0 }));
        assert_eq!(r.names(), ["always-fails"]);
    }

    #[test]
    fn freshly_populated_machine_upholds_every_invariant() {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 4,
            local_pages: 128,
            remote_pages: 1_024,
            tlb_entries: 64,
            seed: 3,
        };
        let engine = mage::FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
        let vma = engine.mmap(256);
        engine.populate(&vma);
        let ctx = CheckCtx {
            engine: &engine,
            vma: &vma,
            local_pages: 128,
        };
        InvariantRegistry::standard()
            .check_all(&ctx)
            .expect("fresh machine must be invariant-clean");
    }

    #[test]
    fn custom_violation_stops_the_sweep() {
        let sim = Simulation::new();
        let params = MachineParams {
            topo: Topology::single_socket(8),
            app_threads: 2,
            local_pages: 64,
            remote_pages: 512,
            tlb_entries: 32,
            seed: 1,
        };
        let engine = mage::FarMemory::launch(sim.handle(), SystemConfig::mage_lib(), params);
        let vma = engine.mmap(64);
        engine.populate(&vma);
        let ctx = CheckCtx {
            engine: &engine,
            vma: &vma,
            local_pages: 64,
        };
        let mut r = InvariantRegistry::standard();
        r.register("tripwire", |_| Some(Violation::LostPage { vpn: 7 }));
        let err = r.check_all(&ctx).unwrap_err();
        assert_eq!(err, Violation::LostPage { vpn: 7 });
    }
}
