//! Failing-case shrinking: reduce a failing cell to a minimal
//! reproducer.
//!
//! Given a [`Cell`] whose run violates an invariant, the shrinker
//! minimizes each dimension greedily, to a fixpoint, under a total run
//! budget (delta-debugging style, one dimension at a time):
//!
//! - **plan** — the smallest fault-plan family index that still fails
//!   (ideally 0, the clean link: schedule-only bugs need no faults);
//! - **threads** — the smallest thread count that still fails (a
//!   1-thread reproducer rules out interleaving entirely);
//! - **ops** — halved while the failure persists;
//! - **seed** — the smallest canonical seed (0..8) that still fails.
//!
//! Every accepted step strictly decreases a dimension, so the fixpoint
//! terminates even without the budget. The result's
//! [`repro_line`](Cell::repro_line) is a one-line shell command that
//! replays the shrunk cell exactly.

use crate::{run_cell, Cell, CheckOptions, Violation};

/// Outcome of a shrink: the minimal failing cell, the violation it
/// produces, and how many candidate runs were spent.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized failing cell.
    pub cell: Cell,
    /// The violation the minimized cell produces.
    pub violation: Violation,
    /// Candidate runs performed (including the initial confirmation).
    pub runs: usize,
}

/// Shrinks `failing` against the real harness ([`run_cell`] under
/// `opts`), spending at most `budget` candidate runs.
///
/// # Panics
///
/// Panics if `failing` does not actually fail under `opts`.
pub fn shrink(failing: &Cell, opts: &CheckOptions, budget: usize) -> ShrinkResult {
    shrink_with(failing, budget, &mut |c| run_cell(c, opts).err())
}

/// Shrinks `failing` against an arbitrary oracle: `oracle(cell)` returns
/// the violation if the cell fails, `None` if it passes. Factored out so
/// the minimization logic is testable without running simulations.
///
/// # Panics
///
/// Panics if the oracle passes on `failing` itself.
pub fn shrink_with(
    failing: &Cell,
    budget: usize,
    oracle: &mut dyn FnMut(&Cell) -> Option<Violation>,
) -> ShrinkResult {
    let mut runs = 1usize;
    let mut best = failing.clone();
    let mut violation = oracle(&best).expect("shrink called on a passing cell");

    loop {
        let before = best.clone();

        // Dimension 1: fault-plan family, smallest index first.
        for plan in 0..best.plan {
            if runs >= budget {
                break;
            }
            let cand = Cell { plan, ..best.clone() };
            runs += 1;
            if let Some(v) = oracle(&cand) {
                best = cand;
                violation = v;
                break;
            }
        }

        // Dimension 2: thread count, from one up.
        for threads in 1..best.threads {
            if runs >= budget {
                break;
            }
            let cand = Cell {
                threads,
                ..best.clone()
            };
            runs += 1;
            if let Some(v) = oracle(&cand) {
                best = cand;
                violation = v;
                break;
            }
        }

        // Dimension 3: per-thread ops, halved while it keeps failing.
        while best.ops > 1 && runs < budget {
            let cand = Cell {
                ops: best.ops / 2,
                ..best.clone()
            };
            runs += 1;
            match oracle(&cand) {
                Some(v) => {
                    best = cand;
                    violation = v;
                }
                None => break,
            }
        }

        // Dimension 4: canonical seed, smallest of 0..8 that fails.
        for seed in 0..8u64 {
            if seed >= best.seed || runs >= budget {
                break;
            }
            let cand = Cell { seed, ..best.clone() };
            runs += 1;
            if let Some(v) = oracle(&cand) {
                best = cand;
                violation = v;
                break;
            }
        }

        if best == before || runs >= budget {
            break;
        }
    }

    ShrinkResult {
        cell: best,
        violation,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;

    fn cell(seed: u64, plan: usize, ops: u64, threads: usize) -> Cell {
        Cell {
            seed,
            plan,
            ops,
            threads,
            policy: PolicyKind::SeededRandom,
        }
    }

    /// Synthetic bug: fails whenever ops ≥ 7, regardless of the rest.
    fn ops_oracle(c: &Cell) -> Option<Violation> {
        (c.ops >= 7).then_some(Violation::LostPage { vpn: c.ops })
    }

    #[test]
    fn shrinks_every_dimension_to_a_fixpoint() {
        let start = cell(41, 3, 512, 4);
        let r = shrink_with(&start, 256, &mut ops_oracle);
        // Halving from 512 lands on 8 (the smallest power of two ≥ 7);
        // every other dimension collapses to its floor.
        assert_eq!(r.cell.ops, 8);
        assert_eq!(r.cell.plan, 0);
        assert_eq!(r.cell.threads, 1);
        assert_eq!(r.cell.seed, 0);
        assert!(ops_oracle(&r.cell).is_some(), "shrunk cell must still fail");
        assert!(r.runs <= 256);
    }

    #[test]
    fn respects_the_run_budget() {
        let start = cell(99, 4, 1 << 20, 8);
        let r = shrink_with(&start, 5, &mut ops_oracle);
        assert!(r.runs <= 5);
        assert!(ops_oracle(&r.cell).is_some(), "result must still fail");
    }

    #[test]
    fn keeps_dimensions_the_bug_depends_on() {
        // Fails only with ≥ 2 threads and the error-heavy plan family.
        let mut oracle = |c: &Cell| {
            (c.threads >= 2 && c.plan == 2).then_some(Violation::LostPage { vpn: 0 })
        };
        let r = shrink_with(&cell(7, 2, 64, 6), 128, &mut oracle);
        assert_eq!(r.cell.threads, 2);
        assert_eq!(r.cell.plan, 2);
        assert_eq!(r.cell.ops, 1, "ops is irrelevant to this bug");
        assert_eq!(r.cell.seed, 0);
    }

    #[test]
    #[should_panic(expected = "passing cell")]
    fn refuses_a_passing_cell() {
        shrink_with(&cell(1, 0, 1, 1), 16, &mut |_| None);
    }
}
