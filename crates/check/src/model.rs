//! The differential reference model: an abstract per-page state machine.
//!
//! The engine's page-lifecycle event stream (see `mage::events`) drives a
//! four-state abstraction of each page — [`PageState::Local`],
//! [`PageState::Remote`], [`PageState::InFlight`] (fetch in progress) and
//! [`PageState::Evicting`] (unmapped, not yet settled). Each event is a
//! legal transition from exactly one set of predecessor states; anything
//! else (a double install, a reclaim of a page never unmapped, a cancel
//! of an eviction that was not in flight) is a protocol violation the
//! concrete engine must never produce.
//!
//! At quiescent points [`RefModel::crosscheck`] compares the abstract
//! state against the concrete PTE bits: `Local` pages must be present,
//! `Remote` pages must be remote and unlocked, and the two transient
//! states must still hold the PTE lock. Because events are delivered
//! synchronously with the PTE mutation, any divergence means the engine
//! and its own event stream disagree — a real bug, not a race of the
//! observer.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use mage::{EventSink, FarMemory, PageEvent};
use mage_mmu::Vma;

use crate::Violation;

/// Abstract state of one page in the reference model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Mapped to a local frame.
    Local,
    /// Only the far-memory copy exists; no operation in flight.
    Remote,
    /// A fault or prefetch holds the PTE lock and is fetching the page.
    InFlight,
    /// Eviction unmapped the page; settlement (reclaim, cancel or
    /// requeue) has not happened yet.
    Evicting,
}

/// Display name of a [`PageEvent`] variant, for violation reports.
pub fn event_name(event: &PageEvent) -> &'static str {
    match event {
        PageEvent::Placed { .. } => "placed",
        PageEvent::FetchStart { .. } => "fetch-start",
        PageEvent::Installed { .. } => "installed",
        PageEvent::FetchAborted { .. } => "fetch-aborted",
        PageEvent::Unmapped { .. } => "unmapped",
        PageEvent::EvictCancelled { .. } => "evict-cancelled",
        PageEvent::Requeued { .. } => "requeued",
        PageEvent::Reclaimed { .. } => "reclaimed",
    }
}

/// The reference model: registered on the engine's event tap, replays
/// every page-lifecycle event through the abstract state machine and
/// records the first illegal transition.
#[derive(Default)]
pub struct RefModel {
    pages: RefCell<BTreeMap<u64, PageState>>,
    violation: RefCell<Option<Violation>>,
    events: Cell<u64>,
}

impl RefModel {
    /// An empty model (no pages placed yet). Register it with
    /// [`FarMemory::tap_events`] *before* `populate` so it observes the
    /// initial placements.
    pub fn new() -> Self {
        RefModel::default()
    }

    /// Total events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events.get()
    }

    /// The model's state for `vpn`, if the page was ever placed.
    pub fn state(&self, vpn: u64) -> Option<PageState> {
        self.pages.borrow().get(&vpn).copied()
    }

    /// The first recorded protocol violation, if any.
    pub fn violation(&self) -> Option<Violation> {
        self.violation.borrow().clone()
    }

    fn apply(&self, event: PageEvent) {
        // After the first violation the abstract state is unreliable;
        // keep the original evidence instead of piling up corruption.
        if self.violation.borrow().is_some() {
            return;
        }
        self.events.set(self.events.get() + 1);
        let vpn = event.vpn();
        let mut pages = self.pages.borrow_mut();
        let state = pages.get(&vpn).copied();
        let next = match (event, state) {
            (PageEvent::Placed { local: true, .. }, None) => PageState::Local,
            (PageEvent::Placed { local: false, .. }, None) => PageState::Remote,
            // `None` admits a first-touch fault on a never-placed page.
            (PageEvent::FetchStart { .. }, Some(PageState::Remote) | None) => PageState::InFlight,
            (PageEvent::Installed { .. }, Some(PageState::InFlight)) => PageState::Local,
            (PageEvent::FetchAborted { .. }, Some(PageState::InFlight)) => PageState::Remote,
            (PageEvent::Unmapped { .. }, Some(PageState::Local)) => PageState::Evicting,
            (PageEvent::EvictCancelled { .. }, Some(PageState::Evicting)) => PageState::Local,
            (PageEvent::Requeued { .. }, Some(PageState::Evicting)) => PageState::Local,
            (PageEvent::Reclaimed { .. }, Some(PageState::Evicting)) => PageState::Remote,
            _ => {
                *self.violation.borrow_mut() = Some(Violation::IllegalTransition {
                    vpn,
                    state,
                    event: event_name(&event),
                });
                return;
            }
        };
        pages.insert(vpn, next);
    }

    /// Compares the abstract state of every page in `vma` against the
    /// concrete PTE bits. Call only at quiescent points (no app thread
    /// running); in-flight fetches and unsettled evictions are expected
    /// and checked for lock consistency rather than flagged.
    pub fn crosscheck(&self, engine: &FarMemory, vma: &Vma) -> Result<(), Violation> {
        if let Some(v) = self.violation.borrow().clone() {
            return Err(v);
        }
        let pages = self.pages.borrow();
        for i in 0..vma.pages {
            let vpn = vma.start_vpn + i;
            let pte = engine.page_table().get(vpn);
            let Some(state) = pages.get(&vpn).copied() else {
                return Err(Violation::IllegalTransition {
                    vpn,
                    state: None,
                    event: "never-placed",
                });
            };
            let consistent = match state {
                // A present page may be lock-held by an eviction scan
                // that has not unmapped it yet.
                PageState::Local => pte.is_present(),
                PageState::Remote => pte.is_remote() && !pte.locked(),
                // Both transient states own the PTE lock until they
                // settle; settling emits the event synchronously.
                PageState::InFlight | PageState::Evicting => pte.locked(),
            };
            if !consistent {
                return Err(Violation::ModelMismatch {
                    vpn,
                    state,
                    pte: pte.0,
                });
            }
        }
        Ok(())
    }
}

impl EventSink for RefModel {
    fn on_event(&self, event: PageEvent) {
        self.apply(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_lifecycle_is_accepted() {
        let m = RefModel::new();
        let vpn = 42;
        for e in [
            PageEvent::Placed { vpn, local: true },
            PageEvent::Unmapped { vpn, frame: 3 },
            PageEvent::Reclaimed { vpn, frame: 3 },
            PageEvent::FetchStart { vpn },
            PageEvent::Installed { vpn, frame: 5 },
            PageEvent::Unmapped { vpn, frame: 5 },
            PageEvent::EvictCancelled { vpn, frame: 5 },
        ] {
            m.on_event(e);
        }
        assert_eq!(m.violation(), None);
        assert_eq!(m.state(vpn), Some(PageState::Local));
        assert_eq!(m.events_seen(), 7);
    }

    #[test]
    fn aborted_fetch_returns_to_remote() {
        let m = RefModel::new();
        m.on_event(PageEvent::Placed { vpn: 1, local: false });
        m.on_event(PageEvent::FetchStart { vpn: 1 });
        assert_eq!(m.state(1), Some(PageState::InFlight));
        m.on_event(PageEvent::FetchAborted { vpn: 1 });
        assert_eq!(m.state(1), Some(PageState::Remote));
        assert_eq!(m.violation(), None);
    }

    #[test]
    fn illegal_transition_is_flagged_and_first_wins() {
        let m = RefModel::new();
        m.on_event(PageEvent::Placed { vpn: 9, local: false });
        // Install without a fetch: illegal.
        m.on_event(PageEvent::Installed { vpn: 9, frame: 1 });
        let first = m.violation().expect("violation recorded");
        assert!(matches!(
            first,
            Violation::IllegalTransition {
                vpn: 9,
                state: Some(PageState::Remote),
                event: "installed"
            }
        ));
        // Later garbage must not replace the original evidence.
        m.on_event(PageEvent::Reclaimed { vpn: 9, frame: 1 });
        assert_eq!(m.violation(), Some(first));
    }

    #[test]
    fn double_placement_is_illegal() {
        let m = RefModel::new();
        m.on_event(PageEvent::Placed { vpn: 2, local: true });
        m.on_event(PageEvent::Placed { vpn: 2, local: false });
        assert!(m.violation().is_some());
    }
}
