//! Seeded violation fixture for simlint's own tests and for CI sanity:
//! `cargo run -p simlint crates/simlint/fixtures` must exit non-zero.
//!
//! This file is NOT compiled into any crate (it lives outside src/); it
//! exists purely as lint input. One violation per rule, plus a bare
//! allow directive.

use std::collections::HashMap; // hash-collection
use std::sync::Mutex; // std-sync
use std::thread; // host-thread
use std::time::Instant; // wall-clock

fn entropy() -> u64 {
    let r = rand::thread_rng(); // external-rng
    r.gen()
}

struct PacketRng {
    state: u64,
}

impl PacketRng {
    // unseeded-rng: constructor of an RNG type with no seed parameter.
    pub fn new() -> Self {
        PacketRng { state: 4 }
    }
}

// bare-allow: directive with no justification after the parenthesis.
// simlint: allow(hash-collection)
fn scratch() -> HashMap<u64, u64> {
    HashMap::new()
}

// stats-registration: the orphan counter below is declared but never
// referenced by the registry snapshot that follows.
pub struct EngineStats {
    pub accesses: Counter,
    pub orphan_counter: Counter,
}

pub struct MetricsRegistry {
    engine: EngineStats,
}

impl MetricsRegistry {
    pub fn snapshot(&self) -> &Counter {
        &self.engine.accesses
    }
}
