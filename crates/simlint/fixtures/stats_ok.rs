//! stats-registration fixture, clean half: every stat field of the
//! monitored struct is captured by the registry snapshot. Not compiled —
//! pure lint input, paired with stats_missing.rs.

pub struct NicStats {
    pub reads: Counter,
    pub read_latency: Histogram,
}

pub struct MetricsRegistry {
    nic: NicStats,
}

impl MetricsRegistry {
    pub fn snapshot(&self) -> (u64, u64) {
        (self.nic.reads.get(), self.nic.read_latency.count())
    }
}
