//! stats-registration fixture, tripping half: `lost_counter` is declared
//! but never captured by the snapshot — the bug class where a counter
//! silently escapes the measurement windows. Not compiled — pure lint
//! input, paired with stats_ok.rs.

pub struct NicStats {
    pub reads: Counter,
    pub lost_counter: Counter,
}

pub struct MetricsRegistry {
    nic: NicStats,
}

impl MetricsRegistry {
    pub fn snapshot(&self) -> u64 {
        self.nic.reads.get()
    }
}
