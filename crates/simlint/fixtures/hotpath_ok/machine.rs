//! Hot-path fixture, clean half: the escape hatch. A hot-path file may
//! keep an ordered map only with a justified `allow(hot-path)` — the
//! justification is part of the source contract.

// simlint: allow(hot-path): shutdown-only bookkeeping, touched once per run, never per event
use std::collections::BTreeMap;

pub struct Machine {
    // simlint: allow(hot-path): shutdown-only bookkeeping, touched once per run, never per event
    drain_order: BTreeMap<u64, usize>,
}
