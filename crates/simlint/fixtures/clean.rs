//! Clean fixture: idiomatic simulator code that must produce zero
//! simlint violations, including a justified allow.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc; // Arc is sharing, not blocking: allowed.

// simlint: allow(std-sync): fixture demonstrating a justified exception
use std::sync::Mutex;

struct SeededRng {
    state: u64,
}

impl SeededRng {
    pub fn new(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    pub fn from_seed_bytes(seed_bytes: [u8; 8]) -> Self {
        SeededRng {
            state: u64::from_le_bytes(seed_bytes),
        }
    }
}

fn ordered() -> BTreeMap<u64, &'static str> {
    // Strings and comments mentioning HashMap or std::thread are fine.
    let mut m = BTreeMap::new();
    m.insert(1, "not a HashMap");
    m
}
