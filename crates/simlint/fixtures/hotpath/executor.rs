//! Hot-path fixture, violating half: an ordered map sneaking back into a
//! file named like the executor hot loop. `simlint` must reject this —
//! the slab refactor (DESIGN.md §11) removed exactly this structure from
//! the per-poll path, and ci.sh asserts this fixture still fails.

use std::collections::BTreeMap;

pub struct Executor {
    timers: BTreeMap<u64, usize>,
}
