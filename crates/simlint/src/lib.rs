//! `simlint` — a static-analysis pass enforcing the simulator's
//! determinism and lock-safety source rules (DESIGN.md "Determinism
//! rules").
//!
//! The whole reproduction rests on bit-for-bit reproducibility: the
//! executor is single-threaded over virtual time, every random choice is
//! seeded, and every iteration order is defined. Those properties are
//! trivially destroyed by an innocent-looking `HashMap` iteration or a
//! `std::time::Instant` — and nothing in the type system stops one from
//! creeping in. `simlint` closes that gap mechanically: it lexes every
//! source file of the simulation crates with its own lightweight Rust
//! lexer (no external dependencies, no syn/proc-macro machinery) and
//! rejects the constructs below.
//!
//! ## Rules
//!
//! | rule | rejects | why |
//! |------|---------|-----|
//! | `wall-clock` | `std::time::Instant` / `SystemTime` | host time is nondeterministic; use `SimHandle::now()` |
//! | `host-thread` | `std::thread` | host threads race; the executor is the only scheduler |
//! | `external-rng` | `rand::`, `thread_rng`, `from_entropy`, … | unseeded entropy breaks replay; use `mage_sim::rng::SplitMix64` |
//! | `hash-collection` | `HashMap` / `HashSet` | iteration order varies per process (random SipHash keys); use `BTreeMap`/`BTreeSet` or sorted iteration |
//! | `std-sync` | `std::sync::{Mutex, RwLock, …}`, atomics | host-level blocking invisible to virtual time; use `SimMutex`/`SimRwLock` |
//! | `unseeded-rng` | RNG constructors without a `seed` parameter | every stochastic component must be replayable from its seed |
//!
//! ## Escape hatch
//!
//! A violation can be admitted deliberately with a justified allow
//! comment on the same line or the line above:
//!
//! ```text
//! // simlint: allow(std-sync): the Waker contract requires Sync
//! use std::sync::Mutex;
//! ```
//!
//! The justification is mandatory — `// simlint: allow(std-sync)` with
//! nothing after the closing parenthesis is itself reported
//! (`bare-allow`), so every exception carries its reasoning in the
//! source.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

mod lexer;
mod rules;

pub use lexer::{lex, Token};

/// A lint rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::time::{Instant, SystemTime}` — host wall-clock.
    WallClock,
    /// `std::thread` — host threads.
    HostThread,
    /// External / unseedable randomness (`rand::`, `thread_rng`, …).
    ExternalRng,
    /// `HashMap` / `HashSet` — nondeterministic iteration order.
    HashCollection,
    /// `std::sync` blocking primitives and atomics.
    StdSync,
    /// Public RNG constructor without an explicit seed parameter.
    UnseededRng,
    /// An `allow` directive without a justification.
    BareAllow,
}

impl Rule {
    /// The rule's name as written in `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::HostThread => "host-thread",
            Rule::ExternalRng => "external-rng",
            Rule::HashCollection => "hash-collection",
            Rule::StdSync => "std-sync",
            Rule::UnseededRng => "unseeded-rng",
            Rule::BareAllow => "bare-allow",
        }
    }

    /// One-line rationale, shown with each violation.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "host wall-clock time is nondeterministic; use SimHandle::now() virtual time"
            }
            Rule::HostThread => {
                "host threads introduce scheduling races; spawn tasks on the deterministic executor"
            }
            Rule::ExternalRng => {
                "external or entropy-seeded RNGs break bit-for-bit replay; use mage_sim::rng::SplitMix64"
            }
            Rule::HashCollection => {
                "HashMap/HashSet iteration order is randomized per process; use BTreeMap/BTreeSet or sort before iterating"
            }
            Rule::StdSync => {
                "std::sync primitives block the host thread invisibly to virtual time; use SimMutex/SimRwLock/Semaphore"
            }
            Rule::UnseededRng => {
                "RNG constructors must take an explicit seed so every stochastic component is replayable"
            }
            Rule::BareAllow => "simlint allow directives must carry a justification after a colon",
        }
    }

    /// Every rule, in reporting order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::WallClock,
            Rule::HostThread,
            Rule::ExternalRng,
            Rule::HashCollection,
            Rule::StdSync,
            Rule::UnseededRng,
            Rule::BareAllow,
        ]
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File the violation was found in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What exactly was matched.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    rule: {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message,
            self.rule.rationale(),
        )
    }
}

/// A justified (or bare) `// simlint: allow(rule): why` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Rule name inside the parentheses (not validated against `Rule`).
    pub rule: String,
    /// Whether a non-empty justification follows the closing parenthesis.
    pub justified: bool,
}

/// Lints one source string; `file` is used only for reporting.
pub fn lint_source(file: &Path, src: &str) -> Vec<Violation> {
    let lexed = lexer::lex(src);
    rules::check(file, &lexed)
}

/// Lints one `.rs` file.
pub fn lint_file(path: &Path) -> io::Result<Vec<Violation>> {
    let src = fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively lints every `.rs` file under `root` (or `root` itself if
/// it is a file). Files are visited in sorted order so reports are
/// stable.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        out.extend(lint_file(f)?);
    }
    Ok(out)
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        collect_rs_files(&entry.path(), out)?;
    }
    Ok(())
}

/// The default scan set: every `crates/*/src` tree in the workspace,
/// excluding simlint itself (the linter names the constructs it bans).
pub fn default_scan_roots(workspace_root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = workspace_root.join("crates");
    let mut roots = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_dir() || path.file_name().is_some_and(|n| n == "simlint") {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    roots.sort();
    Ok(roots)
}

/// Lints the whole workspace's simulation crates.
pub fn lint_workspace(workspace_root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for root in default_scan_roots(workspace_root)? {
        out.extend(lint_tree(&root)?);
    }
    Ok(out)
}
