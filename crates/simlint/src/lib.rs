//! `simlint` — a static-analysis pass enforcing the simulator's
//! determinism and lock-safety source rules (DESIGN.md "Determinism
//! rules").
//!
//! The whole reproduction rests on bit-for-bit reproducibility: the
//! executor is single-threaded over virtual time, every random choice is
//! seeded, and every iteration order is defined. Those properties are
//! trivially destroyed by an innocent-looking `HashMap` iteration or a
//! `std::time::Instant` — and nothing in the type system stops one from
//! creeping in. `simlint` closes that gap mechanically: it lexes every
//! source file of the simulation crates with its own lightweight Rust
//! lexer (no external dependencies, no syn/proc-macro machinery) and
//! rejects the constructs below.
//!
//! ## Rules
//!
//! | rule | rejects | why |
//! |------|---------|-----|
//! | `wall-clock` | `std::time::Instant` / `SystemTime` | host time is nondeterministic; use `SimHandle::now()` |
//! | `host-thread` | `std::thread` | host threads race; the executor is the only scheduler |
//! | `external-rng` | `rand::`, `thread_rng`, `from_entropy`, … | unseeded entropy breaks replay; use `mage_sim::rng::SplitMix64` |
//! | `hash-collection` | `HashMap` / `HashSet` | iteration order varies per process (random SipHash keys); use `BTreeMap`/`BTreeSet` or sorted iteration |
//! | `std-sync` | `std::sync::{Mutex, RwLock, …}`, atomics | host-level blocking invisible to virtual time; use `SimMutex`/`SimRwLock` |
//! | `unseeded-rng` | RNG constructors without a `seed` parameter | every stochastic component must be replayable from its seed |
//! | `stats-registration` | stat fields missing from `MetricsRegistry::snapshot` | an unregistered counter escapes measurement windows and silently keeps warmup samples |
//! | `hot-path` | `BTreeMap` / `BTreeSet` in `executor.rs`, `tlb.rs`, `machine.rs` | ordered maps on the per-poll/per-access/per-page paths cost pointer chases the slab refactor removed (DESIGN.md §11); use `Slab`/`PageMap`/`TimerWheel` |
//!
//! All rules except `stats-registration` are per-file token passes.
//! `stats-registration` is a cross-file pass over the whole scanned set:
//! every `Counter`/`TimeStat`/`Histogram` field declared in the
//! monitored stats structs (`EngineStats`, `FaultBreakdown`, `NicStats`,
//! `IpiStats`, `AccountingStats`) must be referenced in a *registry
//! anchor* — a scanned file that mentions both `MetricsRegistry` and
//! `snapshot`. When the scanned set contains no anchor at all (a single
//! crate without the metrics façade) the rule is silent rather than
//! flagging every field.
//!
//! ## Escape hatch
//!
//! A violation can be admitted deliberately with a justified allow
//! comment on the same line or the line above:
//!
//! ```text
//! // simlint: allow(std-sync): the Waker contract requires Sync
//! use std::sync::Mutex;
//! ```
//!
//! The justification is mandatory — `// simlint: allow(std-sync)` with
//! nothing after the closing parenthesis is itself reported
//! (`bare-allow`), so every exception carries its reasoning in the
//! source.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

mod lexer;
mod rules;

pub use lexer::{lex, Token};

/// A lint rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `std::time::{Instant, SystemTime}` — host wall-clock.
    WallClock,
    /// `std::thread` — host threads.
    HostThread,
    /// External / unseedable randomness (`rand::`, `thread_rng`, …).
    ExternalRng,
    /// `HashMap` / `HashSet` — nondeterministic iteration order.
    HashCollection,
    /// `std::sync` blocking primitives and atomics.
    StdSync,
    /// Public RNG constructor without an explicit seed parameter.
    UnseededRng,
    /// A stat field not captured by `MetricsRegistry::snapshot`.
    StatsRegistration,
    /// `BTreeMap` / `BTreeSet` in a designated hot-path file.
    HotPath,
    /// An `allow` directive without a justification.
    BareAllow,
}

impl Rule {
    /// The rule's name as written in `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::HostThread => "host-thread",
            Rule::ExternalRng => "external-rng",
            Rule::HashCollection => "hash-collection",
            Rule::StdSync => "std-sync",
            Rule::UnseededRng => "unseeded-rng",
            Rule::StatsRegistration => "stats-registration",
            Rule::HotPath => "hot-path",
            Rule::BareAllow => "bare-allow",
        }
    }

    /// One-line rationale, shown with each violation.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "host wall-clock time is nondeterministic; use SimHandle::now() virtual time"
            }
            Rule::HostThread => {
                "host threads introduce scheduling races; spawn tasks on the deterministic executor"
            }
            Rule::ExternalRng => {
                "external or entropy-seeded RNGs break bit-for-bit replay; use mage_sim::rng::SplitMix64"
            }
            Rule::HashCollection => {
                "HashMap/HashSet iteration order is randomized per process; use BTreeMap/BTreeSet or sort before iterating"
            }
            Rule::StdSync => {
                "std::sync primitives block the host thread invisibly to virtual time; use SimMutex/SimRwLock/Semaphore"
            }
            Rule::UnseededRng => {
                "RNG constructors must take an explicit seed so every stochastic component is replayable"
            }
            Rule::StatsRegistration => {
                "stat fields outside MetricsRegistry::snapshot escape measurement windows and keep warmup samples"
            }
            Rule::HotPath => {
                "ordered maps on the simulator's hot paths regressed events/sec; use the slab/PageMap/TimerWheel indexes (DESIGN.md §11)"
            }
            Rule::BareAllow => "simlint allow directives must carry a justification after a colon",
        }
    }

    /// Every rule, in reporting order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::WallClock,
            Rule::HostThread,
            Rule::ExternalRng,
            Rule::HashCollection,
            Rule::StdSync,
            Rule::UnseededRng,
            Rule::StatsRegistration,
            Rule::HotPath,
            Rule::BareAllow,
        ]
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File the violation was found in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What exactly was matched.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    rule: {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message,
            self.rule.rationale(),
        )
    }
}

/// A justified (or bare) `// simlint: allow(rule): why` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Rule name inside the parentheses (not validated against `Rule`).
    pub rule: String,
    /// Whether a non-empty justification follows the closing parenthesis.
    pub justified: bool,
}

/// Lints a batch of lexed files together: the per-file rules on each,
/// then the cross-file `stats-registration` pass over the whole set.
fn lint_batch(files: &[(PathBuf, lexer::Lexed)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (path, lexed) in files {
        out.extend(rules::check(path, lexed));
    }
    out.extend(rules::stats_registration(files));
    out
}

/// Lints one source string; `file` is used only for reporting. The
/// cross-file `stats-registration` pass sees only this file, so an
/// anchor-less source skips it.
pub fn lint_source(file: &Path, src: &str) -> Vec<Violation> {
    lint_batch(&[(file.to_path_buf(), lexer::lex(src))])
}

/// Lints one `.rs` file.
pub fn lint_file(path: &Path) -> io::Result<Vec<Violation>> {
    let src = fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively lints every `.rs` file under `root` (or `root` itself if
/// it is a file), as one batch: files are visited in sorted order so
/// reports are stable, and the cross-file pass sees the whole tree.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut lexed = Vec::new();
    for f in files {
        let src = fs::read_to_string(&f)?;
        lexed.push((f, lexer::lex(&src)));
    }
    Ok(lint_batch(&lexed))
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        collect_rs_files(&entry.path(), out)?;
    }
    Ok(())
}

/// The default scan set: every `crates/*/src` tree in the workspace,
/// excluding simlint itself (the linter names the constructs it bans).
pub fn default_scan_roots(workspace_root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = workspace_root.join("crates");
    let mut roots = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_dir() || path.file_name().is_some_and(|n| n == "simlint") {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    roots.sort();
    Ok(roots)
}

/// Lints the whole workspace's simulation crates as ONE batch, so the
/// cross-file `stats-registration` pass sees the stats structs of every
/// crate against the registry anchor in `crates/core`.
pub fn lint_workspace(workspace_root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for root in default_scan_roots(workspace_root)? {
        collect_rs_files(&root, &mut files)?;
    }
    files.sort();
    let mut lexed = Vec::new();
    for f in files {
        let src = fs::read_to_string(&f)?;
        lexed.push((f, lexer::lex(&src)));
    }
    Ok(lint_batch(&lexed))
}
