//! CLI for simlint: `cargo run -p simlint [paths...]`.
//!
//! With no arguments, lints every `crates/*/src` tree of the workspace
//! this binary was built from as ONE batch, so the cross-file
//! `stats-registration` pass sees every crate's stats structs against
//! the registry anchor in `crates/core`. With arguments, lints exactly
//! those files or directories (used by the fixture tests), each as its
//! own batch. Exits non-zero iff any violation is found.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut violations = Vec::new();
    let scanned;
    if args.is_empty() {
        let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("simlint lives at <workspace>/crates/simlint")
            .to_path_buf();
        match simlint::lint_workspace(&workspace_root) {
            Ok(v) => violations = v,
            Err(e) => {
                eprintln!("simlint: cannot scan {}: {e}", workspace_root.display());
                return ExitCode::from(2);
            }
        }
        scanned = "workspace".to_string();
    } else {
        let roots: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
        for root in &roots {
            match simlint::lint_tree(root) {
                Ok(v) => violations.extend(v),
                Err(e) => {
                    eprintln!("simlint: cannot read {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            }
        }
        scanned = format!("{} tree(s)", roots.len());
    }

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!("simlint: clean ({scanned} scanned)");
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
