//! CLI for simlint: `cargo run -p simlint [paths...]`.
//!
//! With no arguments, lints every `crates/*/src` tree of the workspace
//! this binary was built from. With arguments, lints exactly those files
//! or directories (used by the fixture tests). Exits non-zero iff any
//! violation is found.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let roots: Vec<PathBuf> = if args.is_empty() {
        let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("simlint lives at <workspace>/crates/simlint")
            .to_path_buf();
        match simlint::default_scan_roots(&workspace_root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simlint: cannot enumerate {}: {e}", workspace_root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut violations = Vec::new();
    for root in &roots {
        match simlint::lint_tree(root) {
            Ok(v) => violations.extend(v),
            Err(e) => {
                eprintln!("simlint: cannot read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        eprintln!("simlint: clean ({} tree(s) scanned)", roots.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
