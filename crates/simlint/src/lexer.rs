//! A lightweight Rust lexer: just enough to token-scan source for the
//! lint rules without external dependencies.
//!
//! The lexer understands line/block comments (nested), string/char/byte
//! literals, raw strings, lifetimes, numbers and identifiers. Everything
//! that is not an identifier is either skipped or emitted as a
//! single-character symbol (with `::` merged into one token, the only
//! multi-character symbol the rules care about).

use crate::AllowDirective;

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token text (`identifier`, `::`, or a single punctuation char).
    pub text: String,
    /// Whether this is an identifier (vs punctuation).
    pub is_ident: bool,
    /// 1-based source line.
    pub line: u32,
}

/// Result of lexing a file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream (comments, literals and whitespace removed).
    pub tokens: Vec<Token>,
    /// `simlint: allow(...)` directives found in line comments.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src` into tokens and allow directives.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.bytes().filter(|&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |p| i + p);
                parse_allow(&src[i..end], line, &mut out.allows);
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let consumed = skip_string(&src[i..]);
                bump_lines!(&src[i..i + consumed]);
                i += consumed;
            }
            '\'' => {
                i += skip_char_or_lifetime(&src[i..]);
            }
            ':' if bytes.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    text: "::".into(),
                    is_ident: false,
                    line,
                });
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let ident = &src[start..i];
                // Raw string prefixes (r"", r#""#, br"", cr#""#): no
                // escapes, delimited by the hash count.
                if matches!(ident, "r" | "br" | "rb" | "cr")
                    && matches!(bytes.get(i), Some(b'"') | Some(b'#'))
                {
                    let consumed = skip_raw_string(&src[i..]);
                    if consumed > 0 {
                        bump_lines!(&src[i..i + consumed]);
                        i += consumed;
                        continue;
                    }
                }
                // Byte / C string prefixes (b"", c""): ordinary strings
                // with escapes — routing them through the raw scanner
                // would stop at an escaped quote and leak the tail of the
                // literal as tokens.
                if matches!(ident, "b" | "c") && bytes.get(i) == Some(&b'"') {
                    let consumed = skip_string(&src[i..]);
                    bump_lines!(&src[i..i + consumed]);
                    i += consumed;
                    continue;
                }
                out.tokens.push(Token {
                    text: ident.to_string(),
                    is_ident: true,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers (with suffixes/underscores); no tokens emitted.
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '.' {
                        // Avoid swallowing a range `0..n` or a method
                        // call `0.max(…)` (whose name must stay a
                        // token).
                        if b == '.'
                            && bytes.get(i + 1).is_some_and(|&n| {
                                n == b'.' || n == b'_' || (n as char).is_ascii_alphabetic()
                            })
                        {
                            break;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            c => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    is_ident: false,
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"..."` string starting at a quote; returns bytes consumed.
fn skip_string(s: &str) -> usize {
    let bytes = s.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Consumes `#*"..."#*` (already past the r/b prefix). Returns 0 if this
/// is not actually a raw string start.
fn skip_raw_string(s: &str) -> usize {
    let bytes = s.as_bytes();
    let mut hashes = 0usize;
    while hashes < bytes.len() && bytes[hashes] == b'#' {
        hashes += 1;
    }
    if bytes.get(hashes) != Some(&b'"') {
        return 0;
    }
    let mut i = hashes + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' && bytes[i + 1..].len() >= hashes
            && bytes[i + 1..i + 1 + hashes].iter().all(|&b| b == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    bytes.len()
}

/// Consumes a char literal or lifetime starting at `'`.
fn skip_char_or_lifetime(s: &str) -> usize {
    let bytes = s.as_bytes();
    match bytes.get(1) {
        Some(b'\\') => {
            // Escaped char literal: find the closing quote.
            let mut i = 2;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'\'' {
                    return i + 1;
                } else {
                    i += 1;
                }
            }
            bytes.len()
        }
        Some(&b) if (b as char).is_alphanumeric() || b == b'_' => {
            // `'a'` is a char; `'a` (no closing quote after the ident run)
            // is a lifetime.
            let mut i = 2;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if bytes.get(i) == Some(&b'\'') {
                i + 1
            } else {
                i // lifetime: leave the following token to the main loop
            }
        }
        // Some other char literal like '(' or ' '.
        Some(_) if bytes.get(2) == Some(&b'\'') => 3,
        Some(_) | None => 1,
    }
}

/// Parses `simlint: allow(rule)[: justification]` out of a line comment.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("simlint:") {
        rest = &rest[pos + "simlint:".len()..];
        let trimmed = rest.trim_start();
        let Some(after_allow) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = after_allow.find(')') else {
            continue;
        };
        let rule = after_allow[..close].trim().to_string();
        let tail = after_allow[close + 1..].trim_start();
        let justified = tail
            .strip_prefix(':')
            .is_some_and(|j| !j.trim().is_empty());
        out.push(AllowDirective {
            line,
            rule,
            justified,
        });
        rest = &after_allow[close + 1..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_are_skipped() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* nested */ block */
            fn f<'a>(x: &'a str) -> char {
                let _s = "std::thread in a string";
                let _r = r#"SystemTime "raw" too"#;
                'x'
            }
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"fn".to_string()));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(!ids.iter().any(|i| i == "thread"));
        // The lifetime 'a must not eat the following token.
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::time::Instant");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "time", "::", "Instant"]);
    }

    #[test]
    fn lines_are_tracked_through_literals() {
        let src = "let a = \"x\ny\";\nlet b = Foo;";
        let lexed = lex(src);
        let foo = lexed.tokens.iter().find(|t| t.text == "Foo").unwrap();
        assert_eq!(foo.line, 3);
    }

    #[test]
    fn allow_directives_parse() {
        let src = "\n// simlint: allow(hash-collection): scratch set, order irrelevant\n// simlint: allow(std-sync)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "hash-collection");
        assert!(lexed.allows[0].justified);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[1].rule, "std-sync");
        assert!(!lexed.allows[1].justified);
    }

    #[test]
    fn char_literals_do_not_derail() {
        let ids = idents("let c = ':'; let d = '\\n'; let e = Map;");
        assert!(ids.contains(&"Map".to_string()));
    }

    #[test]
    fn raw_strings_hide_nothing_and_fabricate_nothing() {
        // Hashed raw strings may contain quotes; the banned name inside
        // must not leak, and the ident after the literal must survive.
        let ids = idents(r####"let x = r##"quote " then HashMap"##; let y = Real;"####);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.contains(&"Real".to_string()));
        // A raw string whose closing quote has too few hashes keeps
        // scanning (the `"#` inside r##"…"## does not terminate it).
        let ids = idents(r####"let x = r##"inner "# HashMap "##; After"####);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.contains(&"After".to_string()));
    }

    #[test]
    fn byte_strings_honor_escapes() {
        // b"…" is NOT a raw string: \" does not close it. Lexed naively
        // the tail of the literal leaks out as a HashMap token.
        let ids = idents(r#"let x = b"say \"HashMap\" loud"; let y = Real;"#);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.contains(&"Real".to_string()));
        let ids = idents(r#"let x = c"esc \"Instant\""; Next"#);
        assert!(!ids.iter().any(|i| i == "Instant"), "{ids:?}");
        assert!(ids.contains(&"Next".to_string()));
    }

    #[test]
    fn nested_block_comments_track_depth_and_lines() {
        let src = "/* outer /* inner */ still comment HashMap */\nlet a = Tok;";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text.clone())
            .collect();
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        let tok = lexed.tokens.iter().find(|t| t.text == "Tok").unwrap();
        assert_eq!(tok.line, 2, "lines counted through the comment");
    }

    #[test]
    fn method_calls_on_number_literals_stay_tokens() {
        // `0.max` must not swallow `max` into the number literal —
        // otherwise a banned name in method position would be hidden.
        let lexed = lex("let a = 0.max(1); let b = 1_000.thread_rng();");
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text.as_str().to_string())
            .collect();
        assert!(ids.contains(&"max".to_string()), "{ids:?}");
        assert!(ids.contains(&"thread_rng".to_string()), "{ids:?}");
        // Floats and ranges still lex as before.
        let ids = idents("let c = 1.5e3; for i in 0..n {}");
        assert!(ids.contains(&"n".to_string()));
        assert!(!ids.iter().any(|i| i == "e3"), "{ids:?}");
    }
}
